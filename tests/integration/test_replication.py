"""Primary/replica convergence over real HTTP (`repro.api.replication`).

A replica that bootstraps from ``/v1/replica/bootstrap`` and tails
``/v1/deltas`` must end up with *semantically identical* maintained views —
the :func:`view_signature` digests on both sides agree after every round,
whether the deltas came from the primary's in-memory log, from its WAL
fallback, or from a full snapshot re-sync after a 410 gap.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import ExplanationService, create_server
from repro.api.replication import ReplicaService, view_signature
from repro.core import Configuration
from repro.graphs import Graph, GraphDatabase


def copy_graph(graph, graph_id) -> Graph:
    payload = graph.to_dict()
    payload["graph_id"] = graph_id
    return Graph.from_dict(payload)


def primary_signatures(service) -> dict[int, str]:
    with service._lock:
        return {view.label: view_signature(view) for view in service.live_views()}


@pytest.fixture()
def primary(mut_database, trained_mut_model, tmp_path):
    """A live durable primary over a private copy of the tier-1 database."""
    database = GraphDatabase("primary")
    for graph, label in zip(mut_database.graphs[:10], mut_database.labels[:10]):
        database.add_graph(graph.copy(), label)
    service = ExplanationService(
        "MUT",
        database=database,
        model=trained_mut_model,
        config=Configuration(theta=0.08).with_default_bound(0, 6),
        live_views=True,
        wal_dir=tmp_path / "wal",
    )
    server = create_server(service, port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", service, mut_database
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    service.close()


class TestReplicaConvergence:
    def test_bootstrap_mirrors_the_primary(self, primary):
        base, service, _ = primary
        replica = ReplicaService(base)
        try:
            assert replica.version == service.database.version
            assert len(replica.service.database) == len(service.database)
            assert replica.view_signatures() == primary_signatures(service)
            assert replica.lag() == 0
        finally:
            replica.close()

    def test_tailing_applies_every_mutation_kind(self, primary):
        base, service, source = primary
        replica = ReplicaService(base)
        try:
            service.ingest(copy_graph(source.graphs[10], 700), label=1)
            service.ingest(copy_graph(source.graphs[11], 701), label=0)
            service.relabel(700, 0)
            service.remove(701)

            round_summary = replica.sync_once()
            assert round_summary["applied"] == 4
            assert round_summary["resynced"] is False
            assert round_summary["source"] == "memory"
            assert replica.version == service.database.version
            assert replica.service.database.has_graph(700)
            assert not replica.service.database.has_graph(701)
            assert replica.view_signatures() == primary_signatures(service)
        finally:
            replica.close()

    def test_wal_fallback_keeps_the_replica_convergent(self, primary):
        base, service, source = primary
        replica = ReplicaService(base)
        try:
            service.database.DELTA_LOG_CAPACITY = 1  # memory log now useless
            service.ingest(copy_graph(source.graphs[12], 702), label=1)
            service.ingest(copy_graph(source.graphs[13], 703), label=0)

            round_summary = replica.sync_once()
            assert round_summary["applied"] == 2
            assert round_summary["source"] == "wal"
            assert replica.view_signatures() == primary_signatures(service)
        finally:
            replica.close()

    def test_idle_round_applies_nothing(self, primary):
        base, service, _ = primary
        replica = ReplicaService(base)
        try:
            assert replica.sync_once()["applied"] == 0
            assert replica.deltas_applied == 0
        finally:
            replica.close()


@pytest.fixture()
def forgetful_primary(mut_database, trained_mut_model):
    """A primary with *no* WAL and a tiny delta log — gaps are guaranteed."""
    database = GraphDatabase("forgetful")
    for graph, label in zip(mut_database.graphs[:8], mut_database.labels[:8]):
        database.add_graph(graph.copy(), label)
    service = ExplanationService(
        "MUT",
        database=database,
        model=trained_mut_model,
        config=Configuration(theta=0.08).with_default_bound(0, 6),
        live_views=True,
    )
    service.database.DELTA_LOG_CAPACITY = 1
    server = create_server(service, port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", service, mut_database
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    service.close()


class TestGapResync:
    def test_gap_triggers_a_snapshot_resync(self, forgetful_primary):
        base, service, source = forgetful_primary
        replica = ReplicaService(base)
        try:
            service.ingest(copy_graph(source.graphs[8], 710), label=1)
            service.ingest(copy_graph(source.graphs[9], 711), label=0)

            round_summary = replica.sync_once()
            assert round_summary["resynced"] is True
            assert round_summary["source"] == "bootstrap"
            assert replica.resyncs == 1
            assert replica.version == service.database.version
            assert replica.view_signatures() == primary_signatures(service)
        finally:
            replica.close()


class TestReplicateCLI:
    def test_replicate_once_emits_matching_signatures(self, primary, capsys):
        import json

        from repro.cli import main

        base, service, _ = primary
        assert main(["replicate", "--primary", base, "--once", "--json"]) == 0
        state = json.loads(capsys.readouterr().out)
        assert state["stats"]["version"] == service.database.version
        expected = {
            str(label): digest for label, digest in primary_signatures(service).items()
        }
        assert state["signatures"] == expected

    def test_replicate_against_a_dead_primary_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["replicate", "--primary", "http://127.0.0.1:9", "--once"]) == 1
        assert "error" in capsys.readouterr().out
