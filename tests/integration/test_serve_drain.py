"""`repro serve` drains gracefully on SIGTERM/SIGINT and exits 0.

Real subprocesses: the CLI entrypoint (`python -m repro serve`) is spawned,
the test waits for the listening banner, proves the server answers over
HTTP, sends the signal, and asserts a clean exit with the drain message —
the contract a process supervisor (systemd, Kubernetes) relies on for
zero-error rollouts.  The sharded variant additionally proves every worker
process is reaped (no orphans left holding WAL handles).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def spawn_serve(*extra_args: str) -> subprocess.Popen:
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", "MUT", "--epochs", "5", "--port", "0",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


def wait_for_banner(proc: subprocess.Popen) -> str:
    """Block until the listening banner prints; return the base URL."""
    while True:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"serve exited (rc={proc.poll()}) before listening"
            )
        if "listening on" in line:
            return line.rsplit(" ", 1)[-1].strip()


def drain_and_collect(proc: subprocess.Popen, signum: int) -> str:
    proc.send_signal(signum)
    try:
        remaining = proc.communicate(timeout=120)[0]
    except subprocess.TimeoutExpired:
        proc.kill()
        raise AssertionError("serve did not drain within 120s of the signal")
    return remaining or ""


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_serve_drains_cleanly_on_signal(signum):
    proc = spawn_serve()
    try:
        base = wait_for_banner(proc)
        with urllib.request.urlopen(f"{base}/v1/health", timeout=60) as response:
            health = json.loads(response.read())
        assert health["status"] == "ok"
        output = drain_and_collect(proc, signum)
        assert proc.returncode == 0
        assert "drained in-flight requests" in output
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


def test_sharded_serve_drains_workers_on_sigterm():
    proc = spawn_serve("--shards", "2")
    try:
        base = wait_for_banner(proc)
        with urllib.request.urlopen(f"{base}/v1/health", timeout=120) as response:
            health = json.loads(response.read())
        assert health["role"] == "shard-router"
        worker_pids = [entry["pid"] for entry in health["shards"]]
        assert len(worker_pids) == 2

        output = drain_and_collect(proc, signal.SIGTERM)
        assert proc.returncode == 0
        assert "drained in-flight requests" in output
        # The drain asked every shard worker to persist and exit — no
        # orphan worker processes may outlive the router.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            alive = [pid for pid in worker_pids if _pid_alive(pid)]
            if not alive:
                break
            time.sleep(0.2)
        assert not alive, f"orphaned shard workers: {alive}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
