"""End-to-end integration tests: dataset -> training -> explanation -> queries.

These tests exercise the whole public API the way the examples and the
benchmark harness do, on small instances so the suite stays fast.
"""

import pytest

from repro import (
    Configuration,
    GNNClassifier,
    Trainer,
    load_dataset,
    verify_view,
)
from repro.core.approx import ApproxGVEX
from repro.core.streaming import StreamGVEX
from repro.core.views import ViewQueryEngine
from repro.baselines.gnnexplainer import GNNExplainerBaseline
from repro.experiments.case_studies import nitro_group_pattern
from repro.metrics import fidelity_report, sparsity


@pytest.fixture(scope="module")
def mut_pipeline():
    database = load_dataset("MUT", num_graphs=20, seed=11)
    model = GNNClassifier(feature_dim=14, num_classes=2, hidden_dim=16, num_layers=3, seed=11)
    result = Trainer(model, learning_rate=0.01, epochs=40, seed=11).fit(
        database, train_indices=list(range(len(database)))
    )
    return database, model, result


class TestTrainingPipeline:
    def test_classifier_learns_the_planted_rule(self, mut_pipeline):
        _, _, result = mut_pipeline
        assert result.train_accuracy >= 0.9

    def test_predictions_match_ground_truth_mostly(self, mut_pipeline):
        database, model, _ = mut_pipeline
        correct = sum(
            model.predict(graph) == label for graph, label in zip(database.graphs, database.labels)
        )
        assert correct / len(database) >= 0.9


class TestApproxPipeline:
    def test_views_verify_and_compress(self, mut_pipeline):
        database, model, _ = mut_pipeline
        config = Configuration(theta=0.08).with_default_bound(0, 8)
        views = ApproxGVEX(model, config).explain(database)
        for view in views:
            report = verify_view(view, model, config)
            assert report.is_graph_view
            assert report.properly_covers
            assert view.compression() > 0.5  # patterns much smaller than subgraphs

    def test_mutagen_view_contains_toxicophore(self, mut_pipeline):
        database, model, _ = mut_pipeline
        config = Configuration(theta=0.08).with_default_bound(0, 10)
        view = ApproxGVEX(model, config).explain_label(database.graphs, 1)
        nitro = nitro_group_pattern()
        from repro.matching import has_matching

        hits = sum(1 for sub in view.subgraphs if has_matching(nitro, sub.subgraph()))
        assert hits >= len(view.subgraphs) * 0.5

    def test_fidelity_and_sparsity_reasonable(self, mut_pipeline):
        database, model, _ = mut_pipeline
        config = Configuration(theta=0.08).with_default_bound(0, 10)
        view = ApproxGVEX(model, config).explain_label(database.graphs, 1)
        report = fidelity_report(model, view.subgraphs)
        assert report["consistent_fraction"] >= 0.5
        assert report["counterfactual_fraction"] >= 0.5
        assert sparsity(view.subgraphs) > 0.3

    def test_gvex_explanations_sparser_than_gnnexplainer_is_not_required_but_fidelity_tracked(
        self, mut_pipeline
    ):
        """GVEX fidelity+ should be at least as good as the mask-learning baseline."""
        database, model, _ = mut_pipeline
        config = Configuration(theta=0.08).with_default_bound(0, 10)
        view = ApproxGVEX(model, config).explain_label(database.graphs, 1)
        gvex_report = fidelity_report(model, view.subgraphs)
        baseline = GNNExplainerBaseline(model, max_nodes=10, epochs=20)
        graphs = [sub.source_graph for sub in view.subgraphs]
        base_report = fidelity_report(model, baseline.explain_many(graphs))
        assert gvex_report["fidelity_plus"] >= base_report["fidelity_plus"] - 0.05


class TestStreamingPipeline:
    def test_streaming_views_close_to_offline(self, mut_pipeline):
        database, model, _ = mut_pipeline
        config = Configuration(theta=0.08).with_default_bound(0, 8)
        approx_views = ApproxGVEX(model, config).explain(database)
        stream_views = StreamGVEX(model, config, batch_size=6).explain(database)
        for label in approx_views.labels():
            if label in stream_views:
                approx_quality = approx_views.view_for(label).explainability
                stream_quality = stream_views.view_for(label).explainability
                assert stream_quality >= 0.25 * approx_quality


class TestQueryPipeline:
    def test_query_engine_answers_case_study_questions(self, mut_pipeline):
        database, model, _ = mut_pipeline
        config = Configuration(theta=0.08).with_default_bound(0, 10)
        views = ApproxGVEX(model, config).explain(database)
        engine = ViewQueryEngine(views, database)
        nitro = nitro_group_pattern()
        # "Which classes does the toxicophore occur in?" -> only the mutagen class.
        labels = engine.labels_with_pattern(nitro)
        assert labels == [1] or labels == []
        # "Which graphs contain the toxicophore?" -> exactly the mutagens.
        hits = engine.graphs_containing_pattern(nitro)
        hit_ids = {graph.graph_id for graph in hits}
        mutagen_ids = {
            graph.graph_id for graph, label in zip(database.graphs, database.labels) if label == 1
        }
        assert hit_ids == mutagen_ids


class TestSyntheticDatasetPipeline:
    def test_ba_motif_classification_and_explanation(self):
        database = load_dataset("SYN", num_graphs=12, seed=5, base_size=18)
        model = GNNClassifier(feature_dim=8, num_classes=2, hidden_dim=16, seed=5)
        result = Trainer(model, learning_rate=0.01, epochs=30, seed=5).fit(
            database, train_indices=list(range(len(database)))
        )
        assert result.train_accuracy >= 0.8
        config = Configuration(theta=0.08).with_default_bound(0, 8)
        views = ApproxGVEX(model, config).explain(database)
        assert len(views) >= 1
        for view in views:
            assert view.patterns
