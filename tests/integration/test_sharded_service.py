"""End-to-end sharded serving on the real process backend.

The unit suite pins the router's semantics on the inline backend; this
module re-runs the load-bearing contracts across an actual process
boundary — fork workers, pipes, shared-memory arenas, SIGKILL — plus the
HTTP front (`create_server` over a :class:`ShardRouter`):

* whole-database stream answers are bit-identical to the single-process
  service at shard counts 1, 2 and 4;
* a SIGKILLed worker is respawned from its bootstrap + WAL and **no
  request fails** (one internal retry absorbs the crash);
* ``/v1/ingest`` routes to the owning shard over HTTP and the ingested
  graph shows up in subsequent explains;
* ``/v1/health`` reports per-shard worker stats (pid, size, WAL position).
"""

from __future__ import annotations

import json
import os
import threading
import urllib.request

import pytest

from repro.api import ExplanationService, create_server
from repro.api.replication import view_signature
from repro.api.sharding import ShardRouter
from repro.core import Configuration
from repro.graphs import Graph, GraphDatabase


@pytest.fixture(scope="module")
def shard_config():
    return Configuration(theta=0.08).with_default_bound(0, 8)


@pytest.fixture(scope="module")
def seed_payload(mut_database):
    database = GraphDatabase("seed")
    for graph, label in zip(mut_database.graphs[:10], mut_database.labels[:10]):
        database.add_graph(graph.copy(), label)
    return database.to_dict()


@pytest.fixture(scope="module")
def reference(seed_payload, trained_mut_model, shard_config):
    service = ExplanationService(
        "MUT",
        database=GraphDatabase.from_dict(seed_payload),
        model=trained_mut_model,
        config=shard_config,
        live_views=True,
    )
    yield service
    service.close()


def make_router(seed_payload, model, config, num_shards, **kwargs) -> ShardRouter:
    return ShardRouter(
        "MUT",
        database=GraphDatabase.from_dict(seed_payload),
        model=model,
        num_shards=num_shards,
        config=config,
        backend="process",
        **kwargs,
    )


class TestProcessBackendIdentity:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_stream_identity_across_real_workers(
        self, seed_payload, trained_mut_model, shard_config, reference, num_shards
    ):
        with make_router(
            seed_payload, trained_mut_model, shard_config, num_shards
        ) as router:
            pids = router.worker_pids()
            assert len(pids) == num_shards
            assert os.getpid() not in pids  # real child processes
            for label in (0, 1):
                assert view_signature(
                    router.explain(algorithm="stream", label=label).view
                ) == view_signature(
                    reference.explain(algorithm="stream", label=label).view
                )

    def test_shared_memory_arena_is_advertised(
        self, seed_payload, trained_mut_model, shard_config
    ):
        with make_router(seed_payload, trained_mut_model, shard_config, 2) as router:
            stats = router.stats()
            assert stats["shard_backend"] == "process"
            shared = stats.get("shared_memory")
            assert shared and shared["num_graphs"] == 10 and shared["nbytes"] > 0
            for entry in stats["shards"]:
                assert entry["alive"] is True
                assert entry["shared_views"] is True


class TestCrashRecovery:
    def test_sigkilled_worker_recovers_with_no_failed_requests(
        self, seed_payload, trained_mut_model, shard_config, reference, tmp_path
    ):
        router = make_router(
            seed_payload, trained_mut_model, shard_config, 2,
            cache_dir=tmp_path / "cache", wal_dir=tmp_path / "wal",
        )
        try:
            expected = view_signature(reference.explain(algorithm="stream", label=1).view)
            assert view_signature(router.explain(algorithm="stream", label=1).view) == expected
            victims = router.worker_pids()
            router.kill_worker(0)  # SIGKILL the real child
            router.kill_worker(1)
            router.store.clear_memory()
            router.store.discard_prefix("")  # force the recompute through workers
            # The very next request must succeed — respawn + retry is internal.
            assert view_signature(router.explain(algorithm="stream", label=1).view) == expected
            stats = router.stats()
            assert stats["respawns"] == 2
            assert all(entry["alive"] for entry in stats["shards"])
            assert set(router.worker_pids()) != set(victims)
        finally:
            router.close()

    def test_mutations_survive_a_sigkill_via_the_shard_wal(
        self, seed_payload, trained_mut_model, shard_config, mut_database, tmp_path
    ):
        router = make_router(
            seed_payload, trained_mut_model, shard_config, 2,
            cache_dir=tmp_path / "cache", wal_dir=tmp_path / "wal",
        )
        try:
            payload = mut_database.graphs[12].to_dict()
            payload["graph_id"] = None
            summary = router.ingest(Graph.from_dict(payload), 1)
            shard = summary["shard"]
            wal_files = list((tmp_path / "wal" / f"shard-{shard:02d}").glob("wal-*.jsonl"))
            assert wal_files, "the owning shard must have logged the ingest"
            router.kill_worker(shard)
            rows = router._call(shard, "stream_rows", {"label": None})["rows"]
            assert summary["graph_id"] in {row["graph_id"] for row in rows}
        finally:
            router.close()


@pytest.fixture(scope="module")
def sharded_server(seed_payload, trained_mut_model, shard_config, tmp_path_factory):
    root = tmp_path_factory.mktemp("sharded-server")
    router = make_router(
        seed_payload, trained_mut_model, shard_config, 2,
        cache_dir=root / "cache", wal_dir=root / "wal",
    )
    server = create_server(router, port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}", router
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        router.close()


def _get(base: str, path: str):
    with urllib.request.urlopen(f"{base}{path}", timeout=300) as response:
        return json.loads(response.read())


def _post(base: str, path: str, body: dict):
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=300) as response:
        return json.loads(response.read())


class TestShardedHTTP:
    def test_health_reports_per_shard_workers(self, sharded_server):
        base, router = sharded_server
        health = _get(base, "/v1/health")
        assert health["role"] == "shard-router"
        assert health["num_shards"] == 2
        assert sum(health["shard_sizes"]) == len(router.database)
        shard_entries = health["shards"]
        assert len(shard_entries) == 2
        pids = {entry["pid"] for entry in shard_entries}
        assert pids == set(router.worker_pids())
        for entry in shard_entries:
            assert entry["alive"] is True
            assert entry["shard_size"] >= 0
            assert "wal" in entry and "cache" in entry

    def test_ingest_routes_to_the_owning_shard_over_http(
        self, sharded_server, mut_database
    ):
        base, router = sharded_server
        payload = mut_database.graphs[13].to_dict()
        payload["graph_id"] = None
        before = len(router.database)
        added = _post(base, "/v1/ingest", {"graph": payload, "label": 1})
        assert added["op"] == "ingest"
        assert added["num_graphs"] == before + 1
        assert added["shard"] == router.plan.shard_of(added["graph_id"])
        # The owning worker holds it; the view served next reflects it.
        rows = router._call(added["shard"], "stream_rows", {"label": None})["rows"]
        assert added["graph_id"] in {row["graph_id"] for row in rows}
        explained = _post(base, "/v1/explain", {"algorithm": "stream", "label": 1})
        assert explained["payload"]["provenance"]["num_graphs"] == added["num_graphs"]
        removed = _post(base, "/v1/ingest", {"op": "remove", "graph_id": added["graph_id"]})
        assert removed["num_graphs"] == before

    def test_query_endpoints_fan_across_shards(self, sharded_server):
        base, _ = sharded_server
        _post(base, "/v1/explain", {"algorithm": "stream", "label": 0})
        summary = _get(base, "/v1/query/summary")["summary"]
        assert "0" in summary
        per_label = _get(base, "/v1/query/label/0")
        assert per_label["label"] == 0

    def test_replication_endpoints_answer_404_in_sharded_mode(self, sharded_server):
        base, _ = sharded_server
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/v1/deltas?since=0")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/v1/replica/bootstrap")
        assert excinfo.value.code == 404
