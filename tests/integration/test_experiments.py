"""Integration tests for the experiment runners (the benchmark harness backend).

Each runner is executed on a tiny configuration and its output rows are
checked for structural sanity — the full paper-scale parameterisations run in
``benchmarks/``.
"""

import pytest

from repro.experiments import (
    build_explainers,
    prepare_context,
    run_anytime_batches,
    run_approx_vs_stream,
    run_compression,
    run_drug_case_study,
    run_edge_loss_sweep,
    run_fidelity_sweep,
    run_gamma_ablation,
    run_gamma_sweep,
    run_greedy_vs_random,
    run_node_order_study,
    run_parallel_speedup,
    run_runtime_comparison,
    run_social_case_study,
    run_sparsity,
    run_swap_policy_ablation,
    run_table1,
    run_table3,
    run_theta_r_grid,
)
from repro.experiments.setup import dataset_settings
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def mut_context():
    return prepare_context("MUT", num_graphs=24, epochs=30, hidden_dim=16, seed=3)


class TestSetup:
    def test_context_is_cached(self):
        first = prepare_context("MUT", num_graphs=24, epochs=30, hidden_dim=16, seed=3)
        second = prepare_context("MUT", num_graphs=24, epochs=30, hidden_dim=16, seed=3)
        assert first is second

    def test_context_trains_model(self, mut_context):
        assert mut_context.train_accuracy >= 0.8
        assert mut_context.test_indices

    def test_label_group_falls_back_beyond_test_split(self, mut_context):
        graphs = mut_context.label_group(0, limit=6)
        assert len(graphs) == 6

    def test_dataset_settings_unknown(self):
        with pytest.raises(DatasetError):
            dataset_settings("IMAGENET")

    def test_build_explainers_include_filter(self, mut_context):
        zoo = build_explainers(mut_context.model, include=["ApproxGVEX", "Random"])
        assert set(zoo) == {"ApproxGVEX", "Random"}


class TestEffectivenessRunners:
    def test_fidelity_sweep_rows(self, mut_context):
        rows = run_fidelity_sweep(
            mut_context,
            max_nodes_values=[5],
            explainer_names=["ApproxGVEX", "Random"],
            graphs_per_point=3,
        )
        assert len(rows) == 2
        for row in rows:
            assert row.num_graphs == 3
            assert -1.0 <= row.fidelity_plus <= 1.0

    def test_theta_r_grid(self, mut_context):
        rows = run_theta_r_grid(mut_context, thetas=[0.08], radii=[0.25], graphs_limit=2)
        assert len(rows) == 1
        assert rows[0].theta == 0.08

    def test_gamma_sweep(self, mut_context):
        rows = run_gamma_sweep(mut_context, gammas=[0.0, 1.0], graphs_limit=2)
        assert [row.gamma for row in rows] == [0.0, 1.0]


class TestConcisenessRunners:
    def test_sparsity_rows(self, mut_context):
        rows = run_sparsity(mut_context, max_nodes=5, explainer_names=["ApproxGVEX"], graphs_limit=3)
        assert len(rows) == 1
        assert 0.0 <= rows[0].sparsity <= 1.0

    def test_compression_rows(self, mut_context):
        rows = run_compression(mut_context, max_nodes=6, graphs_limit=3)
        assert rows
        for row in rows:
            assert row.num_patterns >= 1

    def test_edge_loss_sweep(self, mut_context):
        rows = run_edge_loss_sweep(mut_context, max_nodes_values=[4, 6], graphs_limit=2)
        assert [row.max_nodes for row in rows] == [4, 6]
        assert all(0.0 <= row.edge_loss <= 1.0 for row in rows)


class TestEfficiencyRunners:
    def test_runtime_comparison(self, mut_context):
        rows = run_runtime_comparison(
            mut_context, max_nodes=5, explainer_names=["ApproxGVEX", "StreamGVEX"], graphs_limit=2
        )
        assert {row.explainer for row in rows} == {"ApproxGVEX", "StreamGVEX"}
        assert all(row.seconds >= 0 for row in rows)

    def test_parallel_speedup(self, mut_context):
        rows = run_parallel_speedup(mut_context, worker_counts=[1, 2], graphs_limit=4)
        assert rows[0].num_workers == 1
        assert rows[0].speedup == pytest.approx(1.0)

    def test_anytime_batches(self, mut_context):
        rows = run_anytime_batches(
            mut_context, batch_fractions=[0.5, 1.0], graphs_limit=2, dataset="MUT"
        )
        assert [row.batch_fraction for row in rows] == [0.5, 1.0]


class TestCaseStudyRunners:
    def test_drug_case_study(self, mut_context):
        rows = run_drug_case_study(mut_context, max_nodes=8, explainer_names=["ApproxGVEX", "Random"])
        assert {row.explainer for row in rows} == {"ApproxGVEX", "Random"}

    def test_social_case_study_runs_three_scenarios(self):
        context = prepare_context("RED", num_graphs=16, epochs=25, seed=3)
        results = run_social_case_study(context, max_nodes=6, graphs_limit=2)
        assert len(results) == 3
        assert results[-1].labels_explained == [0, 1]

    def test_node_order_study(self, mut_context):
        rows = run_node_order_study(mut_context, num_orders=2, graphs_limit=2)
        assert len(rows) == 2
        assert rows[0].pattern_similarity_to_first == 1.0
        assert 0.0 <= rows[1].pattern_similarity_to_first <= 1.0


class TestAblationRunners:
    def test_approx_vs_stream(self, mut_context):
        rows = run_approx_vs_stream(mut_context, max_nodes_values=[5], graphs_limit=3)
        assert len(rows) == 1
        assert rows[0].ratio > 0

    def test_swap_policy_ablation(self, mut_context):
        rows = run_swap_policy_ablation(mut_context, max_nodes=5, graphs_limit=2)
        assert {row.policy for row in rows} == {"paper", "always", "never"}

    def test_gamma_ablation(self, mut_context):
        rows = run_gamma_ablation(mut_context, gammas=[0.0, 1.0], graphs_limit=2)
        assert len(rows) == 2

    def test_greedy_vs_random(self, mut_context):
        result = run_greedy_vs_random(mut_context, max_nodes=5, graphs_limit=2)
        assert result["greedy"] >= result["random"] - 1e-9


class TestTables:
    def test_table1_contains_gvex_row(self):
        rows = run_table1()
        methods = {row.method for row in rows}
        assert "GVEX" in methods and "GNNExplainer" in methods

    def test_table3_lists_all_datasets(self):
        rows = run_table3()
        assert len(rows) == 7
        for row in rows:
            assert row.num_graphs > 0
            assert row.avg_nodes > 0
