"""Chaos suite: seeded fault schedules replayed against hard invariants.

Every scenario arms a deterministic :class:`~repro.core.faults.FaultPlan`
(or kills real worker processes) and asserts the serving tier's contract
under failure:

* every **acknowledged** mutation survives recovery; no **unacknowledged**
  mutation ever appears after recovery;
* recovered views are signature-identical to an unfaulted control;
* the router answers every request with correct data, a structured error
  (:class:`ShardDownError` / :class:`PoisonRequestError` / ``WALError``),
  or a degraded-flagged partial answer — never silently corrupted data;
* the supervisor respawns dead workers before requests hit them, the
  crash-loop breaker converges a flapping shard to fast structured
  failures, and a cleared fault lets the shard recover;
* a replica rides out a primary outage with counted retries and
  reconverges.

The process backend is required for kill-based scenarios (SIGKILL needs a
real process); hang/raise scenarios run on it too so the timings are real.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.api import ExplanationService
from repro.api.replication import view_signature
from repro.api.sharding import ShardRouter
from repro.core import Configuration
from repro.core import faults
from repro.exceptions import (
    ExplanationError,
    PoisonRequestError,
    ShardDownError,
    WALError,
)
from repro.graphs import Graph, GraphDatabase


@pytest.fixture(autouse=True)
def _clean_faults():
    """No chaos test may leak an armed plan into the rest of the suite."""
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def chaos_config():
    return Configuration(theta=0.08).with_default_bound(0, 8)


@pytest.fixture(scope="module")
def seed_payload(mut_database):
    database = GraphDatabase("seed")
    for graph, label in zip(mut_database.graphs[:10], mut_database.labels[:10]):
        database.add_graph(graph.copy(), label)
    return database.to_dict()


@pytest.fixture(scope="module")
def reference(seed_payload, trained_mut_model, chaos_config):
    service = ExplanationService(
        "MUT",
        database=GraphDatabase.from_dict(seed_payload),
        model=trained_mut_model,
        config=chaos_config,
        live_views=True,
    )
    yield service
    service.close()


def make_router(seed_payload, model, config, num_shards, **kwargs) -> ShardRouter:
    kwargs.setdefault("supervise", False)
    return ShardRouter(
        "MUT",
        database=GraphDatabase.from_dict(seed_payload),
        model=model,
        num_shards=num_shards,
        config=config,
        backend="process",
        **kwargs,
    )


def fresh_graph(mut_database, index: int, graph_id: int) -> Graph:
    payload = mut_database.graphs[index].to_dict()
    payload["graph_id"] = graph_id
    return Graph.from_dict(payload)


def signature_of(service_like, label: int) -> str:
    return view_signature(
        service_like.explain(algorithm="stream", label=label).view
    )


class TestWALFaults:
    """Durability invariants under injected WAL write/fsync failures."""

    def test_acked_mutations_survive_and_unacked_never_appear(
        self, seed_payload, trained_mut_model, chaos_config, mut_database, tmp_path
    ):
        def build(wal_name):
            return ExplanationService(
                "MUT",
                database=GraphDatabase.from_dict(seed_payload),
                model=trained_mut_model,
                config=chaos_config,
                live_views=True,
                wal_dir=tmp_path / wal_name,
            )

        # Control: only the mutation that will be acknowledged.
        control = build("control")
        control.ingest(fresh_graph(mut_database, 10, 800), label=1)
        control_sig = {label: signature_of(control, label) for label in (0, 1)}
        control.close()

        # Faulted run: first ingest acks, then the fsync of the second
        # ingest's WAL record fails — the append must raise (the caller
        # never gets an ack) and the record must not survive replay.
        faulted = build("faulted")
        acked = faulted.ingest(fresh_graph(mut_database, 10, 800), label=1)
        assert acked["graph_id"] == 800

        faults.activate(
            faults.FaultPlan(
                [faults.FaultRule(point="wal.fsync", action="raise", nth=1)],
                seed=7,
            )
        )
        with pytest.raises(WALError, match="failed before it was durable"):
            faulted.ingest(fresh_graph(mut_database, 11, 801), label=0)
        faults.deactivate()
        # The service and its log have diverged — model the crash that
        # follows and recover from the WAL alone.
        faulted.close()

        recovered = build("faulted")
        recovered_ids = {graph.graph_id for graph in recovered.database.graphs}
        assert 800 in recovered_ids  # acked: survived
        assert 801 not in recovered_ids  # unacked: never appears
        # Signature-identical to the unfaulted control, and still writable.
        for label in (0, 1):
            assert signature_of(recovered, label) == control_sig[label]
        recovered.ingest(fresh_graph(mut_database, 11, 801), label=0)
        recovered.close()

    def test_corrupted_wal_record_fails_loudly_on_recovery(
        self, seed_payload, trained_mut_model, chaos_config, mut_database, tmp_path
    ):
        """A bit-rotted *interior* WAL record (injected at the append
        point) must surface as a WALError at recovery — never as silent
        data loss.  (A corrupt record at the very tail is the torn-write
        case the WAL truncates by design; interior damage means an
        acknowledged write would be lost, so recovery refuses.)"""
        service = ExplanationService(
            "MUT",
            database=GraphDatabase.from_dict(seed_payload),
            model=trained_mut_model,
            config=chaos_config,
            live_views=True,
            wal_dir=tmp_path / "wal",
        )
        faults.activate(
            faults.FaultPlan(
                [faults.FaultRule(point="wal.append", action="corrupt", nth=1)]
            )
        )
        # Corrupted on disk (but acked); a later clean record makes the
        # damage interior, so the loss is detected at replay.
        service.ingest(fresh_graph(mut_database, 10, 810), label=1)
        faults.deactivate()
        service.ingest(fresh_graph(mut_database, 11, 811), label=0)
        service.close()

        with pytest.raises(WALError):
            ExplanationService(
                "MUT",
                database=GraphDatabase.from_dict(seed_payload),
                model=trained_mut_model,
                config=chaos_config,
                live_views=True,
                wal_dir=tmp_path / "wal",
            )


class TestSupervisor:
    def test_supervisor_respawns_a_dead_worker_before_any_request(
        self, seed_payload, trained_mut_model, chaos_config
    ):
        router = make_router(
            seed_payload, trained_mut_model, chaos_config, 2,
            supervise=True, heartbeat_interval=0.2, heartbeat_timeout=10.0,
        )
        try:
            victim = router.worker_pids()[0]
            router.kill_worker(0)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if router.worker_pids()[0] != victim:
                    break
                time.sleep(0.1)
            # No request was issued: the supervisor alone recovered it.
            assert router.worker_pids()[0] != victim
            stats = router.stats()
            assert stats["respawns"] >= 1
            assert stats["supervisor"]["recoveries"] >= 1
            assert all(entry["alive"] for entry in stats["shards"])
        finally:
            router.close()


class TestHungWorker:
    def test_hung_worker_is_respawned_and_repeat_offender_quarantined(
        self, seed_payload, trained_mut_model, chaos_config, reference
    ):
        """A request that hangs its worker is detected via the request
        timeout, the worker is respawned, and when the retry hangs the
        respawned worker too the request is quarantined as poison — while
        every other request keeps being served correctly."""
        config = dataclasses.replace(
            chaos_config,
            fault_plan={
                "rules": [
                    {
                        "point": "worker.handle",
                        "action": "hang",
                        "match": 'stream_rows:{"label": 1}',
                        "delay_seconds": 60.0,
                    }
                ]
            }
        )
        router = make_router(
            seed_payload, trained_mut_model, config, 1, request_timeout=3.0
        )
        try:
            with pytest.raises(PoisonRequestError, match="quarantined as poison"):
                router.explain(algorithm="stream", label=1)
            stats = router.stats()
            assert stats["respawns"] == 2
            assert stats["poisoned_requests"] == 1
            # Other requests are unaffected — and still byte-correct.
            assert signature_of(router, 0) == signature_of(reference, 0)
            # The quarantined request is answered instantly from the poison
            # list (a structured error, not another 2×3 s of timeouts).
            start = time.monotonic()
            with pytest.raises(PoisonRequestError):
                router.explain(algorithm="stream", label=1)
            assert time.monotonic() - start < 2.0
        finally:
            faults.deactivate()  # forked respawns must not re-arm
            router.close()


class TestCrashLoopBreaker:
    def test_breaker_opens_then_supervisor_recovers_after_fault_clears(
        self, seed_payload, trained_mut_model, chaos_config, reference
    ):
        """A worker SIGKILLed by every stream request crash-loops: the
        breaker opens and requests get fast structured ShardDownErrors.
        Once the fault plan is cleared, the supervisor's half-open probe
        respawns the shard and service resumes, signature-identical."""
        config = dataclasses.replace(
            chaos_config,
            fault_plan={
                "rules": [
                    {"point": "worker.handle", "action": "kill",
                     "match": "stream_rows", "times": 1000}
                ]
            }
        )
        router = make_router(
            seed_payload, trained_mut_model, config, 1,
            supervise=True, heartbeat_interval=0.25, heartbeat_timeout=10.0,
            breaker_threshold=3, breaker_base_backoff=1.5,
            breaker_max_backoff=2.0, crash_loop_window=30.0,
        )
        try:
            # Deaths 1+2: the first request kills the worker, the retry
            # kills the respawn — quarantined as poison.
            with pytest.raises(PoisonRequestError):
                router.explain(algorithm="stream", label=1)
            # Death 3 (a different request): the breaker opens; the answer
            # is a structured shard-down error carrying a retry hint.
            with pytest.raises(ShardDownError) as excinfo:
                router.explain(algorithm="stream", label=0)
            assert excinfo.value.shard == 0
            assert excinfo.value.retry_after > 0
            # While open, the breaker answers instantly — no worker touched.
            start = time.monotonic()
            with pytest.raises(ShardDownError, match="crash-loop breaker"):
                router.explain(algorithm="stream", label=0)
            assert time.monotonic() - start < 0.5
            stats = router.stats()
            assert stats["breaker_trips"] >= 1
            assert stats["breakers"][0]["rapid_deaths"] >= 3

            # Clear the fault everywhere a future worker could inherit it:
            # the process-global plan (forked respawns) and the bootstrap
            # payload (spawned respawns).
            faults.deactivate()
            router._bootstraps[0]["fault_plan"] = None

            deadline = time.monotonic() + 45.0
            recovered_sig = None
            while time.monotonic() < deadline:
                try:
                    recovered_sig = signature_of(router, 0)
                    break
                except ShardDownError:
                    time.sleep(0.25)
            assert recovered_sig is not None, "shard never recovered"
            assert recovered_sig == signature_of(reference, 0)
            # The poisoned request stays quarantined even after recovery —
            # it killed two workers; replaying it is never the router's call.
            with pytest.raises(PoisonRequestError):
                router.explain(algorithm="stream", label=1)
        finally:
            faults.deactivate()
            router.close()


class TestPoisonRequest:
    def test_poison_request_quarantined_others_unaffected(
        self, seed_payload, trained_mut_model, chaos_config, reference
    ):
        """A request whose handling SIGKILLs the worker twice is fenced
        with a structured error; the shard stays healthy for everyone else
        and the breaker does NOT open (two deaths < threshold)."""
        config = dataclasses.replace(
            chaos_config,
            fault_plan={
                "rules": [
                    # Target exactly one request: the ordered explain of
                    # graph 3 (its payload is in the worker.handle context).
                    {"point": "worker.handle", "action": "kill",
                     "match": '"graph_ids": [3]', "times": 1000}
                ]
            }
        )
        router = make_router(seed_payload, trained_mut_model, config, 1)
        try:
            with pytest.raises(PoisonRequestError) as excinfo:
                router.explain(algorithm="stream", label=1, graph_ids=[3])
            assert excinfo.value.fingerprint
            stats = router.stats()
            assert stats["poisoned_requests"] == 1
            assert stats["breaker_trips"] == 0  # two deaths, threshold is 3
            assert all(entry["alive"] for entry in stats["shards"])
            # Non-poison requests — including other ordered explains — work.
            other = router.explain(algorithm="stream", label=1, graph_ids=[5])
            assert other.view is not None
            assert signature_of(router, 1) == signature_of(reference, 1)
        finally:
            faults.deactivate()
            router.close()


class TestDegradedReads:
    def _down_shard(self, router, shard: int) -> None:
        """Force one shard unavailable: kill its worker and open its
        breaker so the next request cannot simply respawn it."""
        router.kill_worker(shard)
        with router._health_lock:
            router._death_noted[shard] = True
            router._fast_deaths[shard] = router._breaker_threshold
            router._breaker_open_until[shard] = time.monotonic() + 60.0

    def test_fail_loud_is_the_default(
        self, seed_payload, trained_mut_model, chaos_config
    ):
        router = make_router(seed_payload, trained_mut_model, chaos_config, 2)
        try:
            self._down_shard(router, 1)
            with pytest.raises(ShardDownError):
                router.explain(algorithm="stream", label=1)
        finally:
            router.close()

    def test_degraded_reads_return_partial_flagged_results(
        self, seed_payload, trained_mut_model, chaos_config, reference
    ):
        config = dataclasses.replace(
            chaos_config,
            degraded_reads=True)
        router = make_router(seed_payload, trained_mut_model, config, 2)
        try:
            # Pick a label the downed shard actually holds graphs of, so
            # the partial view provably misses data.
            target_label = next(
                label
                for graph, label in zip(
                    router.database.graphs, router.database.labels
                )
                if router.plan.shard_of(graph.graph_id) == 1
            )
            full_sig = signature_of(reference, target_label)
            self._down_shard(router, 1)
            partial = router.explain(algorithm="stream", label=target_label)
            assert partial.degraded is True
            assert partial.missing_shards == (1,)
            # The partial answer is well-formed but not the full view.
            assert view_signature(partial.view) != full_sig
            # Mutations routed to the down shard still fail loudly —
            # degradation never silently drops a write.
            owned_by_down = next(
                graph.graph_id
                for graph in router.database.graphs
                if router.plan.shard_of(graph.graph_id) == 1
            )
            with pytest.raises(ShardDownError):
                router.remove(owned_by_down)

            # Heal the shard: the degraded result was never cached, so the
            # very next read re-fans and returns the full, unflagged view.
            with router._health_lock:
                router._breaker_open_until[1] = 0.0
                router._fast_deaths[1] = 0
            healed = router.explain(algorithm="stream", label=target_label)
            assert healed.degraded is False
            assert healed.missing_shards == ()
            assert view_signature(healed.view) == full_sig
        finally:
            router.close()


class TestShmAttachFailure:
    def test_shm_attach_fault_falls_back_without_deadlocking_boot(
        self, seed_payload, trained_mut_model, chaos_config, reference
    ):
        """Workers that cannot map the shared arena (injected attach
        failure) build private views; the router boots normally and the
        answers are identical."""
        config = dataclasses.replace(
            chaos_config,
            fault_plan={
                "rules": [{"point": "shm.attach", "action": "raise", "times": 1000}]
            }
        )
        router = make_router(seed_payload, trained_mut_model, config, 2)
        try:
            stats = router.stats()
            for entry in stats["shards"]:
                assert entry["alive"] is True
                assert entry["shared_views"] is False  # fell back cleanly
            assert signature_of(router, 1) == signature_of(reference, 1)
        finally:
            faults.deactivate()
            router.close()


class TestReplicationOutage:
    def test_replica_retries_through_an_outage_and_reconverges(
        self, seed_payload, trained_mut_model, chaos_config, mut_database, tmp_path
    ):
        import threading

        from repro.api import create_server
        from repro.api.replication import ReplicaService

        primary = ExplanationService(
            "MUT",
            database=GraphDatabase.from_dict(seed_payload),
            model=trained_mut_model,
            config=chaos_config,
            live_views=True,
            wal_dir=tmp_path / "wal",
        )
        server = create_server(primary, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        replica = ReplicaService(f"http://{host}:{port}", poll_interval=0.05)
        try:
            primary.ingest(fresh_graph(mut_database, 10, 900), label=1)
            # The next fetch fails (injected outage); the loop counts the
            # retry, backs off, and the following rounds reconverge.
            faults.activate(
                faults.FaultPlan(
                    [faults.FaultRule(point="replication.fetch",
                                      action="raise", nth=1,
                                      message="injected outage")]
                )
            )
            replica.run(max_rounds=3, max_retry_backoff=0.2)
            faults.deactivate()
            stats = replica.stats()
            assert stats["retries"] == 1
            assert "injected outage" in (stats["last_error"] or "")
            primary.ingest(fresh_graph(mut_database, 11, 901), label=0)
            replica.sync_once()
            with primary._lock:
                primary_sigs = {
                    view.label: view_signature(view)
                    for view in primary.live_views()
                }
            assert replica.view_signatures() == primary_sigs
        finally:
            faults.deactivate()
            replica.close()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            primary.close()


class TestRouterWALFaults:
    def test_worker_wal_failure_surfaces_and_mutation_is_not_acked(
        self, seed_payload, trained_mut_model, chaos_config, mut_database, tmp_path
    ):
        """A WAL fsync failure inside a shard worker turns the mutation
        into a structured error at the router; after a worker crash +
        respawn the unacked mutation is gone, acked ones remain."""
        config = dataclasses.replace(
            chaos_config,
            fault_plan={
                "rules": [
                    # Every mutate op's WAL fsync fails in the worker.
                    {"point": "wal.fsync", "action": "raise", "times": 1000}
                ]
            }
        )
        router = make_router(
            seed_payload, trained_mut_model, config, 2,
            wal_dir=tmp_path / "wal",
        )
        try:
            with pytest.raises(ExplanationError, match="durable"):
                router.ingest(fresh_graph(mut_database, 10, 820), label=1)
        finally:
            faults.deactivate()
            router.close()

        # Rebuild the tier over the same WAL directories: the unacked
        # ingest must not have survived in any shard's log.
        clean = make_router(
            seed_payload, trained_mut_model, chaos_config, 2,
            wal_dir=tmp_path / "wal",
        )
        try:
            ids = {graph.graph_id for graph in clean.database.graphs}
            assert 820 not in ids
            # The tier is healthy and writable after the recovery.
            summary = clean.ingest(fresh_graph(mut_database, 10, 820), label=1)
            assert summary["graph_id"] == 820
        finally:
            clean.close()
