"""Crash recovery: SIGKILL mid-burst and torn WAL records on tier-1 MUT.

The durability contract: every mutation the service *acknowledged* (the WAL
append returned) survives `kill -9`, and a service restarted over the same
base database + ``wal_dir`` + ``cache_dir`` reaches maintained views
semantically identical to a process that never died.  The worker subprocess
re-derives the exact tier-1 fixtures (same dataset seed, same training
recipe — everything is deterministic NumPy), applies a scripted mutation
burst shorter than the snapshot amortisation window, and SIGKILLs itself —
so the on-disk maintainer snapshot is guaranteed stale and recovery *must*
replay the WAL tail.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.api import ExplanationService
from repro.api.replication import view_signature
from repro.core import Configuration
from repro.datasets import make_mutagenicity
from repro.graphs import Graph, GraphDatabase

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: The scripted burst (op, graph_index_in_extras, graph_id, label).  Six
#: mutations — fewer than the service's snapshot amortisation window, so a
#: crash mid-burst always leaves the snapshot behind the WAL.
MUTATIONS = [
    ("ingest", 0, 800, 1),
    ("ingest", 1, 801, 0),
    ("relabel", None, 800, 0),
    ("ingest", 2, 802, 1),
    ("remove", None, 801, None),
    ("ingest", 3, 803, 0),
]

#: Mutations applied before the worker SIGKILLs itself.
CRASH_AFTER = 5


def make_extras():
    """Deterministic extra graphs, disjoint from the tier-1 base by seed."""
    return list(make_mutagenicity(num_graphs=6, seed=11))


def reattribute(graph, graph_id) -> Graph:
    payload = graph.to_dict()
    payload["graph_id"] = graph_id
    return Graph.from_dict(payload)


def apply_mutations(service, extras, count) -> None:
    for op, index, graph_id, label in MUTATIONS[:count]:
        if op == "ingest":
            service.ingest(reattribute(extras[index], graph_id), label=label)
        elif op == "remove":
            service.remove(graph_id)
        else:
            service.relabel(graph_id, label)


def build_config() -> Configuration:
    return Configuration(theta=0.08).with_default_bound(0, 6)


def copy_base(mut_database) -> GraphDatabase:
    return GraphDatabase.from_dict(mut_database.to_dict())


def signatures(service) -> dict[int, str]:
    return {view.label: view_signature(view) for view in service.live_views()}


WORKER_SCRIPT = textwrap.dedent(
    """
    import os, signal, sys

    from repro.api import ExplanationService
    from repro.core import Configuration
    from repro.datasets import make_mutagenicity
    from repro.gnn import GNNClassifier, Trainer
    from repro.graphs import Graph

    wal_dir, cache_dir, crash_after = sys.argv[1], sys.argv[2], int(sys.argv[3])

    # The exact tier-1 recipe (tests/conftest.py): same dataset seed, same
    # architecture, same trainer — deterministic, so this process's state
    # matches the parent's session fixtures bit-for-bit.
    base = make_mutagenicity(num_graphs=16, seed=3)
    model = GNNClassifier(feature_dim=14, num_classes=2, hidden_dim=16, num_layers=3, seed=5)
    Trainer(model, learning_rate=0.01, epochs=40, seed=5).fit(
        base, train_indices=list(range(len(base)))
    )
    extras = list(make_mutagenicity(num_graphs=6, seed=11))

    service = ExplanationService(
        "MUT",
        database=base,
        model=model,
        config=Configuration(theta=0.08).with_default_bound(0, 6),
        cache_dir=cache_dir,
        live_views=True,
        wal_dir=wal_dir,
    )

    MUTATIONS = {mutations!r}

    def reattribute(graph, graph_id):
        payload = graph.to_dict()
        payload["graph_id"] = graph_id
        return Graph.from_dict(payload)

    for applied, (op, index, graph_id, label) in enumerate(MUTATIONS, start=1):
        if op == "ingest":
            service.ingest(reattribute(extras[index], graph_id), label=label)
        elif op == "remove":
            service.remove(graph_id)
        else:
            service.relabel(graph_id, label)
        if applied == crash_after:
            # Acknowledged writes are on disk; die without close(), without
            # a snapshot flush, without a database save.
            os.kill(os.getpid(), signal.SIGKILL)

    raise SystemExit("worker was supposed to crash")
    """
).format(mutations=MUTATIONS)


@pytest.fixture(scope="module")
def control_state(mut_database, trained_mut_model):
    """The never-crashed reference: CRASH_AFTER mutations, in-process."""
    service = ExplanationService(
        "MUT",
        database=copy_base(mut_database),
        model=trained_mut_model,
        config=build_config(),
        live_views=True,
    )
    apply_mutations(service, make_extras(), CRASH_AFTER)
    state = {
        "version": service.database.version,
        "graph_ids": [graph.graph_id for graph in service.database],
        "signatures": signatures(service),
    }
    service.close()
    return state


@pytest.fixture(scope="module")
def crashed_dirs(tmp_path_factory):
    """Run the worker to its SIGKILL; return its wal/cache directories."""
    root = tmp_path_factory.mktemp("crash")
    wal_dir, cache_dir = root / "wal", root / "cache"
    result = subprocess.run(
        [sys.executable, "-c", WORKER_SCRIPT, str(wal_dir), str(cache_dir), str(CRASH_AFTER)],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == -signal.SIGKILL, (
        f"worker should die by SIGKILL, got rc={result.returncode}\n{result.stderr}"
    )
    return wal_dir, cache_dir


class TestSigkillRecovery:
    def test_recovered_service_matches_the_uninterrupted_run(
        self, crashed_dirs, control_state, mut_database, trained_mut_model
    ):
        wal_dir, cache_dir = crashed_dirs
        recovered = ExplanationService(
            "MUT",
            database=copy_base(mut_database),
            model=trained_mut_model,
            config=build_config(),
            cache_dir=str(cache_dir),
            live_views=True,
            wal_dir=wal_dir,
        )
        try:
            assert recovered.database.version == control_state["version"]
            assert [g.graph_id for g in recovered.database] == control_state["graph_ids"]
            assert signatures(recovered) == control_state["signatures"]
        finally:
            recovered.close()

    def test_wal_tail_was_actually_replayed(
        self, crashed_dirs, mut_database, trained_mut_model
    ):
        wal_dir, _ = crashed_dirs
        # Recover *without* the snapshot cache: state still converges, and
        # the stats prove the WAL (not the snapshot) carried the history.
        recovered = ExplanationService(
            "MUT",
            database=copy_base(mut_database),
            model=trained_mut_model,
            config=build_config(),
            live_views=True,
            wal_dir=wal_dir,
        )
        try:
            stats = recovered.stats()["wal"]
            assert stats["replayed_on_open"] == CRASH_AFTER
            assert stats["last_version"] == mut_database.version + CRASH_AFTER
        finally:
            recovered.close()

    def test_recovered_service_keeps_accepting_durable_writes(
        self, crashed_dirs, mut_database, trained_mut_model
    ):
        wal_dir, cache_dir = crashed_dirs
        recovered = ExplanationService(
            "MUT",
            database=copy_base(mut_database),
            model=trained_mut_model,
            config=build_config(),
            cache_dir=str(cache_dir),
            live_views=True,
            wal_dir=wal_dir,
        )
        try:
            before = recovered.database.version
            extras = make_extras()
            for op, index, graph_id, label in MUTATIONS[CRASH_AFTER:]:
                if op == "ingest":
                    recovered.ingest(reattribute(extras[index], graph_id), label=label)
                elif op == "remove":
                    recovered.remove(graph_id)
                else:
                    recovered.relabel(graph_id, label)
            # the burst's tail appends beyond the crash point
            assert recovered.stats()["wal"]["last_version"] == before + (
                len(MUTATIONS) - CRASH_AFTER
            )
        finally:
            recovered.close()


class TestTornRecordRecovery:
    def test_torn_final_record_rolls_back_exactly_one_mutation(
        self, mut_database, trained_mut_model, tmp_path
    ):
        wal_dir = tmp_path / "wal"
        durable = ExplanationService(
            "MUT",
            database=copy_base(mut_database),
            model=trained_mut_model,
            config=build_config(),
            live_views=True,
            wal_dir=wal_dir,
        )
        apply_mutations(durable, make_extras(), len(MUTATIONS))
        durable._wal.close()  # crash: no service close, WAL handle released

        # Tear the final record in half — the fsync never completed.
        [segment] = sorted(wal_dir.glob("wal-*.jsonl"))
        lines = segment.read_bytes().splitlines(keepends=True)
        segment.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])

        control = ExplanationService(
            "MUT",
            database=copy_base(mut_database),
            model=trained_mut_model,
            config=build_config(),
            live_views=True,
        )
        apply_mutations(control, make_extras(), len(MUTATIONS) - 1)

        recovered = ExplanationService(
            "MUT",
            database=copy_base(mut_database),
            model=trained_mut_model,
            config=build_config(),
            live_views=True,
            wal_dir=wal_dir,
        )
        try:
            assert recovered.database.version == control.database.version
            assert [g.graph_id for g in recovered.database] == [
                g.graph_id for g in control.database
            ]
            assert signatures(recovered) == signatures(control)
        finally:
            recovered.close()
            control.close()
