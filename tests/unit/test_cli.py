"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explain_defaults(self):
        args = build_parser().parse_args(["explain"])
        assert args.dataset == "MUT"
        assert args.algorithm == "approx"
        assert args.max_nodes == 10

    def test_compare_accepts_multiple_budgets(self):
        args = build_parser().parse_args(["compare", "--max-nodes", "4", "8"])
        assert args.max_nodes == [4, 8]

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "--algorithm", "magic"])


class TestCommands:
    def test_datasets_lists_all_seven(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "MUTAGENICITY" in output
        assert len(output.strip().splitlines()) == 7

    def test_table1_prints_gvex_row(self, capsys):
        assert main(["table1"]) == 0
        assert "GVEX" in capsys.readouterr().out

    def test_stats_command(self, capsys):
        assert main(["stats", "--dataset", "MUT"]) == 0
        output = capsys.readouterr().out
        assert "num_graphs" in output

    def test_train_command(self, capsys):
        assert main(["train", "--dataset", "MUT", "--epochs", "5", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "train accuracy" in output

    def test_explain_command_approx(self, capsys):
        assert main(["explain", "--dataset", "MUT", "--epochs", "20", "--max-nodes", "6"]) == 0
        output = capsys.readouterr().out
        assert "patterns" in output
        assert "fidelity" in output

    def test_explain_command_stream(self, capsys):
        assert (
            main(
                [
                    "explain",
                    "--dataset",
                    "MUT",
                    "--epochs",
                    "20",
                    "--algorithm",
                    "stream",
                    "--label",
                    "1",
                ]
            )
            == 0
        )
        assert "StreamGVEX" not in capsys.readouterr().err

    def test_compare_command(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "--dataset",
                    "MUT",
                    "--epochs",
                    "20",
                    "--max-nodes",
                    "5",
                    "--graphs",
                    "2",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "ApproxGVEX" in output
