"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explain_defaults(self):
        args = build_parser().parse_args(["explain"])
        assert args.dataset == "MUT"
        assert args.algorithm == "approx"
        assert args.max_nodes == 10

    def test_explain_sampled_objective_flags(self):
        args = build_parser().parse_args(
            ["explain", "--objective", "sampled", "--sample-budget", "512",
             "--epsilon", "0.05", "--delta", "0.01"]
        )
        assert args.objective == "sampled"
        assert args.sample_budget == 512
        assert args.epsilon == 0.05
        assert args.delta == 0.01

    def test_invalid_algorithm_rejected(self):
        from repro.exceptions import ExplanationError

        # Validated against the registry at execution time (before any
        # dataset/training work), not by argparse choices.
        with pytest.raises(ExplanationError, match="unknown explainer 'magic'"):
            main(["explain", "--algorithm", "magic"])


class TestCommands:
    def test_datasets_lists_the_seven_benchmarks_plus_scale_stress(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "MUTAGENICITY" in output
        assert "SCALE-STRESS" in output
        # The paper's seven benchmarks plus the scale-stress regime.
        assert len(output.strip().splitlines()) == 8

    def test_stats_command(self, capsys):
        assert main(["stats", "--dataset", "MUT"]) == 0
        output = capsys.readouterr().out
        assert "num_graphs" in output

    def test_train_command(self, capsys):
        assert main(["train", "--dataset", "MUT", "--epochs", "5", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "train accuracy" in output

    def test_explain_command_approx(self, capsys):
        assert main(["explain", "--dataset", "MUT", "--epochs", "20", "--max-nodes", "6"]) == 0
        output = capsys.readouterr().out
        assert "patterns" in output
        assert "fidelity" in output

    def test_explain_command_stream(self, capsys):
        assert (
            main(
                [
                    "explain",
                    "--dataset",
                    "MUT",
                    "--epochs",
                    "20",
                    "--algorithm",
                    "stream",
                    "--label",
                    "1",
                ]
            )
            == 0
        )
        assert "StreamGVEX" not in capsys.readouterr().err


class TestServiceCommands:
    """End-to-end coverage of the service-layer CLI surface (in-process)."""

    def test_algorithms_lists_the_registry(self, capsys):
        assert main(["algorithms"]) == 0
        names = capsys.readouterr().out.strip().splitlines()
        assert "approx" in names
        assert "stream" in names
        assert "gnnexplainer" in names

    def test_schema_command_prints_the_published_schema(self, capsys):
        import json

        from repro.api import explanation_schema

        assert main(["schema"]) == 0
        assert json.loads(capsys.readouterr().out) == json.loads(
            json.dumps(explanation_schema())
        )

    def test_explain_json_output_parses_against_the_schema(self, capsys):
        import json

        from repro.api import explanation_schema, validate_against_schema

        assert (
            main(
                [
                    "explain",
                    "--dataset",
                    "MUT",
                    "--epochs",
                    "20",
                    "--max-nodes",
                    "5",
                    "--graphs",
                    "3",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert validate_against_schema(payload, explanation_schema()) == []
        assert payload["kind"] == "explanation_result"
        assert payload["payload"]["provenance"]["dataset"] == "MUT"

    def test_explain_stream_algorithm_end_to_end(self, capsys):
        import json

        assert (
            main(
                [
                    "explain",
                    "--dataset",
                    "MUT",
                    "--epochs",
                    "20",
                    "--algorithm",
                    "stream",
                    "--max-nodes",
                    "5",
                    "--graphs",
                    "3",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["payload"]["provenance"]["algorithm"] == "stream"

    def test_explain_baseline_algorithm_via_registry(self, capsys):
        import json

        assert (
            main(
                [
                    "explain",
                    "--dataset",
                    "MUT",
                    "--epochs",
                    "20",
                    "--algorithm",
                    "random",
                    "--max-nodes",
                    "4",
                    "--graphs",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["payload"]["provenance"]["algorithm"] == "random"

    def test_explain_save_then_query(self, capsys, tmp_path):
        import json

        saved = tmp_path / "views.json"
        assert (
            main(
                [
                    "explain",
                    "--dataset",
                    "MUT",
                    "--epochs",
                    "20",
                    "--max-nodes",
                    "5",
                    "--graphs",
                    "3",
                    "--save",
                    str(saved),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert saved.is_file()

        assert main(["query", "--views", str(saved), "--summary"]) == 0
        summary = json.loads(capsys.readouterr().out)["summary"]
        assert summary

        envelope = json.loads(saved.read_text())
        graph_id = envelope["payload"]["view"]["subgraphs"][0]["source_graph_id"]
        label = envelope["payload"]["provenance"]["label"]
        assert main(["query", "--views", str(saved), "--graph-id", str(graph_id)]) == 0
        witness = json.loads(capsys.readouterr().out)["witness"]
        assert witness["label"] == label

        assert main(["query", "--views", str(saved), "--label", str(label)]) == 0
        patterns = json.loads(capsys.readouterr().out)["patterns"]
        assert isinstance(patterns, list)

    def test_query_missing_witness_fails_cleanly(self, capsys, tmp_path):
        saved = tmp_path / "views.json"
        assert (
            main(
                [
                    "explain",
                    "--dataset",
                    "MUT",
                    "--epochs",
                    "20",
                    "--graphs",
                    "2",
                    "--save",
                    str(saved),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["query", "--views", str(saved), "--graph-id", "999999"]) == 1

    def test_serve_smoke_round_trip(self, capsys):
        import json

        from repro.api import explanation_schema, validate_against_schema

        assert (
            main(
                [
                    "serve",
                    "--dataset",
                    "MUT",
                    "--epochs",
                    "20",
                    "--port",
                    "0",
                    "--smoke",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert validate_against_schema(payload, explanation_schema()) == []
        assert payload["payload"]["view"]["subgraphs"]

    def test_explain_text_output_mentions_provenance(self, capsys):
        assert (
            main(
                [
                    "explain",
                    "--dataset",
                    "MUT",
                    "--epochs",
                    "20",
                    "--max-nodes",
                    "5",
                    "--graphs",
                    "3",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "provenance" in output
        assert "cache_hit" in output


class TestIngestCommand:
    def test_ingest_requires_exactly_one_operation(self, capsys):
        assert main(["ingest", "--dataset", "MUT"]) == 2
        assert "exactly one" in capsys.readouterr().out
        assert main(["ingest", "--graph", "a.json", "--remove", "1"]) == 2
        capsys.readouterr()

    def test_relabel_requires_label(self, capsys):
        assert main(["ingest", "--relabel", "3"]) == 2
        assert "--label" in capsys.readouterr().out

    def test_ingest_add_end_to_end(self, capsys, tmp_path):
        """Full path: train, attach the maintainer, stream one arriving graph,
        print the refreshed per-label views.  Uses a dedicated epochs value so
        the mutated (cached) experiment context is not shared with other
        tests."""
        import json

        from repro.datasets import make_mutagenicity
        from repro.graphs.io import write_graph_json

        extra = make_mutagenicity(num_graphs=12, seed=9).graphs[11]
        extra.graph_id = None
        graph_path = tmp_path / "arrival.json"
        write_graph_json(extra, graph_path)

        assert (
            main(
                [
                    "ingest",
                    "--dataset",
                    "MUT",
                    "--epochs",
                    "21",
                    "--graph",
                    str(graph_path),
                    "--label",
                    "1",
                    "--cache-dir",
                    str(tmp_path / "cache"),
                    "--json",
                ]
            )
            == 0
        )
        summary = json.loads(capsys.readouterr().out)
        assert summary["op"] == "ingest"
        assert summary["maintained"] is True
        assert summary["refreshed_labels"]
        assert summary["views"]
        # The maintainer snapshot landed in the cache dir for warm restarts.
        assert list((tmp_path / "cache").glob("*.snapshot.json"))

    def test_mutations_survive_across_invocations(self, capsys, tmp_path):
        """--cache-dir persists the mutated database itself (JSONL), so a
        second invocation sees the first one's add."""
        import json

        from repro.datasets import make_mutagenicity
        from repro.graphs.io import write_graph_json

        source = make_mutagenicity(num_graphs=14, seed=9)
        cache = str(tmp_path / "cache")
        base = ["ingest", "--dataset", "MUT", "--epochs", "21", "--cache-dir", cache, "--json"]

        graph = source.graphs[12]
        graph.graph_id = None
        write_graph_json(graph, tmp_path / "first.json")
        assert main(base + ["--graph", str(tmp_path / "first.json"), "--label", "1"]) == 0
        first = json.loads(capsys.readouterr().out)

        other = source.graphs[13]
        other.graph_id = None
        write_graph_json(other, tmp_path / "second.json")
        assert main(base + ["--graph", str(tmp_path / "second.json"), "--label", "0"]) == 0
        second = json.loads(capsys.readouterr().out)
        # The second run loaded the first run's database (+1 graph) from
        # disk and warm-restarted the maintainer (only the arrival streamed).
        assert second["num_graphs"] == first["num_graphs"] + 1
        assert second["maintainer"]["graphs_streamed"] == 1

        removed_id = second["graph_id"]
        assert main(base + ["--remove", str(removed_id)]) == 0
        third = json.loads(capsys.readouterr().out)
        assert third["num_graphs"] == second["num_graphs"] - 1
