"""Multi-writer safety of the :class:`ViewStore` spill directory.

Shard workers and the router all spill into per-role directories, but the
store must also survive the hostile case: several stores (standing in for
several processes) hammering *one* directory concurrently.  The invariants
are publication-atomicity ones —

* a reader never observes a torn/partial spill file (every published file
  parses and round-trips);
* no ``.tmp`` debris is left behind, even when writers race on one key;
* snapshots (the maintainer warm-restart tier) obey the same discipline.
"""

from __future__ import annotations

import json
import threading

from repro.api.store import ViewStore
from repro.api.types import ExplanationResult, Provenance
from repro.core.explanation import ExplanationView


def make_result(label: int, tag: str) -> ExplanationResult:
    view = ExplanationView(label=label, metadata={"tag": tag})
    provenance = Provenance(
        algorithm="approx",
        label=label,
        config_fingerprint="cfg",
        request_fingerprint=f"req-{tag}",
        runtime_seconds=0.0,
        backend="test",
        num_graphs=0,
    )
    return ExplanationResult(view=view, provenance=provenance)


def run_threads(workers):
    errors = []

    def wrap(target):
        def inner():
            try:
                target()
            except Exception as error:  # noqa: BLE001 - collected for the assert
                errors.append(error)

        return inner

    threads = [threading.Thread(target=wrap(worker)) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []


class TestConcurrentSpill:
    def test_two_stores_racing_on_shared_keys_leave_clean_files(self, tmp_path):
        stores = [ViewStore(capacity=2, spill_dir=tmp_path) for _ in range(2)]
        keys = [f"mut-ctx-key{i:02d}" for i in range(12)]

        def writer(store: ViewStore):
            def work():
                for round_index in range(5):
                    for index, key in enumerate(keys):
                        store.put(key, make_result(index % 2, key))
                        store.get(keys[(index + round_index) % len(keys)])

            return work

        run_threads([writer(store) for store in stores for _ in range(3)])

        assert not list(tmp_path.glob("*.tmp")), "tmp debris left behind"
        published = sorted(path.name for path in tmp_path.glob("*.json"))
        assert published == sorted(f"{key}.json" for key in keys)
        # Every published file is complete and loadable by a fresh store.
        fresh = ViewStore(capacity=32, spill_dir=tmp_path)
        for index, key in enumerate(keys):
            result = fresh.get(key)
            assert result is not None
            assert result.view.metadata["tag"] == key
            assert result.label == index % 2

    def test_writers_and_discard_prefix_can_interleave(self, tmp_path):
        store_a = ViewStore(capacity=2, spill_dir=tmp_path)
        store_b = ViewStore(capacity=2, spill_dir=tmp_path)
        stop = threading.Event()

        def churn():
            index = 0
            while not stop.is_set():
                store_a.put(f"mut-gen-{index % 6}", make_result(1, "churn"))
                index += 1

        def discard():
            for _ in range(40):
                store_b.discard_prefix("mut-gen-")
            stop.set()

        run_threads([churn, discard])
        assert not list(tmp_path.glob("*.tmp"))
        for path in tmp_path.glob("*.json"):
            json.loads(path.read_text())  # must never be torn

    def test_snapshot_tier_shares_the_atomic_publication_path(self, tmp_path):
        stores = [ViewStore(capacity=2, spill_dir=tmp_path) for _ in range(2)]
        payloads = [{"shard": index, "rows": list(range(200))} for index in range(2)]

        def writer(store: ViewStore, payload: dict):
            def work():
                for _ in range(30):
                    store.put_snapshot("maintainer", payload)

            return work

        run_threads([writer(store, payload) for store, payload in zip(stores, payloads)])
        assert not list(tmp_path.glob("*.tmp"))
        loaded = ViewStore(capacity=2, spill_dir=tmp_path).get_snapshot("maintainer")
        # Last publication wins atomically: the payload is one writer's,
        # never an interleaving of both.
        assert loaded in payloads

    def test_tmp_names_are_writer_unique(self, tmp_path):
        path = tmp_path / "spill.json"
        names = set()
        # Hold all threads alive together: idents are only unique among
        # *live* threads, which is exactly the window the tmp name protects.
        barrier = threading.Barrier(4)

        def record():
            barrier.wait(timeout=10)
            names.add(ViewStore._tmp_path(path).name)
            barrier.wait(timeout=10)

        run_threads([record for _ in range(4)])
        assert len(names) == 4  # one per thread ident
        for name in names:
            assert name.startswith("spill.json.") and name.endswith(".tmp")
