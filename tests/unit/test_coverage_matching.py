"""Unit tests for coverage computation and the incremental matcher."""

from repro.graphs import Graph, GraphPattern
from repro.matching import (
    IncrementalMatcher,
    coverage_summary,
    covered_edges,
    covered_nodes,
    pattern_set_covered_nodes,
    pattern_set_covers_nodes,
)


def typed_graph():
    graph = Graph()
    graph.add_node(0, "A")
    graph.add_node(1, "B")
    graph.add_node(2, "A")
    graph.add_node(3, "C")
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    return graph


def single_node_pattern(node_type):
    pattern = GraphPattern()
    pattern.add_node(0, node_type)
    return pattern


def edge_pattern(type_a, type_b):
    pattern = GraphPattern()
    pattern.add_node(0, type_a)
    pattern.add_node(1, type_b)
    pattern.add_edge(0, 1)
    return pattern


class TestCoverage:
    def test_covered_nodes_by_type(self):
        assert covered_nodes(single_node_pattern("A"), typed_graph()) == {0, 2}

    def test_covered_edges(self):
        assert covered_edges(edge_pattern("A", "B"), typed_graph()) == {(0, 1), (1, 2)}

    def test_pattern_set_covered_nodes_union(self):
        graphs = [typed_graph()]
        patterns = [single_node_pattern("A"), single_node_pattern("B")]
        coverage = pattern_set_covered_nodes(patterns, graphs)
        assert coverage[0] == {0, 1, 2}

    def test_pattern_set_covers_nodes_full(self):
        graphs = [typed_graph()]
        patterns = [single_node_pattern(t) for t in ("A", "B", "C")]
        assert pattern_set_covers_nodes(patterns, graphs)

    def test_pattern_set_covers_nodes_partial(self):
        graphs = [typed_graph()]
        assert not pattern_set_covers_nodes([single_node_pattern("A")], graphs)

    def test_coverage_summary_fractions(self):
        graphs = [typed_graph()]
        summary = coverage_summary([edge_pattern("A", "B")], graphs)
        assert summary["node_coverage"] == 0.75  # nodes 0, 1, 2 of 4
        assert summary["edge_coverage"] == 2 / 3

    def test_coverage_summary_empty_patterns(self):
        summary = coverage_summary([], [typed_graph()])
        assert summary["node_coverage"] == 0.0
        assert summary["covered_edges"] == 0.0

    def test_coverage_summary_no_graphs(self):
        summary = coverage_summary([single_node_pattern("A")], [])
        assert summary["node_coverage"] == 1.0


class TestIncrementalMatcher:
    def test_cache_hit_on_unchanged_graph(self):
        matcher = IncrementalMatcher()
        graph = typed_graph()
        pattern = single_node_pattern("A")
        first = matcher.covered_nodes(pattern, graph)
        second = matcher.covered_nodes(pattern, graph)
        assert first == second
        assert matcher.stats()["cache_hits"] == 1
        assert matcher.stats()["recomputations"] == 1

    def test_recomputes_after_graph_growth(self):
        matcher = IncrementalMatcher()
        graph = typed_graph()
        pattern = single_node_pattern("A")
        matcher.covered_nodes(pattern, graph)
        graph.add_node(4, "A")
        updated = matcher.covered_nodes(pattern, graph)
        assert 4 in updated
        assert matcher.stats()["recomputations"] == 2

    def test_covered_by_set_and_covers_all(self):
        matcher = IncrementalMatcher()
        graph = typed_graph()
        patterns = [single_node_pattern(t) for t in ("A", "B", "C")]
        assert matcher.covers_all_nodes(patterns, graph)
        assert matcher.covered_by_set([single_node_pattern("A")], graph) == {0, 2}

    def test_invalidate_clears_cache(self):
        matcher = IncrementalMatcher()
        graph = typed_graph()
        matcher.covered_nodes(single_node_pattern("A"), graph)
        matcher.invalidate()
        assert matcher.stats()["entries"] == 0

    def test_forget_graph_drops_only_that_graphs_entries(self):
        matcher = IncrementalMatcher()
        first = typed_graph()
        first.graph_id = 7
        second = typed_graph()
        second.graph_id = 8
        pattern = single_node_pattern("A")
        matcher.covered_nodes(pattern, first)
        matcher.covered_nodes(pattern, second)
        assert matcher.forget_graph(first) == 1
        assert matcher.stats()["entries"] == 1
        # The survivor still hits the cache.
        matcher.covered_nodes(pattern, second)
        assert matcher.stats()["cache_hits"] == 1

    def test_forget_graph_by_stable_id_sweeps_temporaries(self):
        """Entries left by throwaway subgraph objects carrying the same
        stable graph_id are swept too (removal-safety for long-lived
        matchers over mutable databases)."""
        matcher = IncrementalMatcher()
        pattern = single_node_pattern("A")
        for _ in range(3):
            temporary = typed_graph()
            temporary.graph_id = 42
            matcher.covered_nodes(pattern, temporary)
        assert matcher.stats()["entries"] == 3
        assert matcher.forget_graph(42) == 3
        assert matcher.stats()["entries"] == 0

    def test_recycled_temporary_id_never_serves_stale_coverage(self):
        """The streaming path feeds the matcher short-lived induced
        subgraphs that all share their source's ``graph_id`` and
        construction-time version, so the mutation counter cannot tell two
        of them apart.  When the allocator hands a dead temporary's
        ``id()`` to a structurally different one, the matcher must
        recompute — serving the dead object's coverage set silently
        corrupts pattern selection (and primary/replica convergence)."""
        matcher = IncrementalMatcher()
        pattern = single_node_pattern("A")

        def temporary(node_type):
            graph = Graph()
            graph.add_node(0, node_type)
            graph.add_node(1, node_type)
            graph.add_edge(0, 1)
            graph.graph_id = 42
            return graph

        for _ in range(64):
            stale = temporary("A")
            assert matcher.covered_nodes(pattern, stale) == {0, 1}
            address = id(stale)
            del stale
            fresh = temporary("B")  # same graph_id + version, no "A" nodes
            recycled = id(fresh) == address
            assert matcher.covered_nodes(pattern, fresh) == set()
            del fresh
            if recycled:
                break

    def test_forget_graph_with_none_is_a_no_op(self):
        matcher = IncrementalMatcher()
        graph = typed_graph()
        graph.graph_id = None
        matcher.covered_nodes(single_node_pattern("A"), graph)
        assert matcher.forget_graph(None) == 0
        assert matcher.stats()["entries"] == 1
