"""Unit tests for the feature-influence estimators (paper Eqs. 3-4)."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.gnn import GNNClassifier
from repro.gnn.influence import (
    influence_matrix,
    jacobian_l1_matrix,
    normalized_influence_matrix,
)
from repro.graphs import Graph


@pytest.fixture
def small_model():
    return GNNClassifier(feature_dim=2, num_classes=2, hidden_dim=4, num_layers=2, seed=11)


class TestExactJacobian:
    def test_shape(self, small_model, path_graph):
        matrix = jacobian_l1_matrix(small_model, path_graph)
        assert matrix.shape == (5, 5)
        assert (matrix >= 0).all()

    def test_empty_graph(self, small_model):
        assert jacobian_l1_matrix(small_model, Graph()).shape == (0, 0)

    def test_far_nodes_have_zero_influence(self, small_model):
        # A path of 6 nodes with a 2-layer model: node 0 cannot influence node 5.
        graph = Graph()
        for node in range(6):
            graph.add_node(node, "P", [1.0, 0.0])
        for node in range(5):
            graph.add_edge(node, node + 1)
        matrix = jacobian_l1_matrix(small_model, graph)
        assert matrix[5, 0] == pytest.approx(0.0, abs=1e-12)
        assert matrix[1, 0] > 0.0

    def test_matches_finite_difference_jacobian(self, path_graph):
        """The exact per-pair L1 norms agree with numerically perturbed features."""
        model = GNNClassifier(feature_dim=2, num_classes=2, hidden_dim=3, num_layers=2, seed=4)
        matrix = jacobian_l1_matrix(model, path_graph)
        features = path_graph.feature_matrix(2)
        adjacency = path_graph.adjacency_matrix()
        epsilon = 1e-6
        source, target = 1, 2  # adjacent nodes
        numerical = 0.0
        for j in range(2):
            plus = features.copy()
            plus[source, j] += epsilon
            minus = features.copy()
            minus[source, j] -= epsilon
            _, cache_plus = model.forward_matrices(plus, adjacency)
            _, cache_minus = model.forward_matrices(minus, adjacency)
            diff = (cache_plus["layer_outputs"][-1][target] - cache_minus["layer_outputs"][-1][target]) / (
                2 * epsilon
            )
            numerical += np.abs(diff).sum()
        assert matrix[target, source] == pytest.approx(numerical, rel=1e-4, abs=1e-6)


class TestInfluenceMatrix:
    def test_propagation_estimator_shape(self, small_model, path_graph):
        matrix = influence_matrix(small_model, path_graph, method="propagation")
        assert matrix.shape == (5, 5)
        assert (matrix >= 0).all()

    def test_auto_uses_exact_for_small_graphs(self, small_model, path_graph):
        auto = influence_matrix(small_model, path_graph, method="auto")
        exact = influence_matrix(small_model, path_graph, method="exact")
        np.testing.assert_allclose(auto, exact)

    def test_unknown_method_rejected(self, small_model, path_graph):
        with pytest.raises(ModelError):
            influence_matrix(small_model, path_graph, method="magic")

    def test_propagation_reflects_topology(self, small_model):
        # A star: the hub reaches every leaf within 2 hops, leaves reach each
        # other only through the hub.
        graph = Graph()
        graph.add_node(0, "S", [1.0, 0.0])
        for leaf in range(1, 5):
            graph.add_node(leaf, "S", [0.0, 1.0])
            graph.add_edge(0, leaf)
        matrix = influence_matrix(small_model, graph, method="propagation")
        assert matrix[1, 0] > 0
        assert matrix[1, 2] > 0  # two-hop path through the hub with k=2 layers


class TestNormalisedInfluence:
    def test_rows_source_columns_target_sum(self, small_model, path_graph):
        matrix = normalized_influence_matrix(small_model, path_graph, method="exact")
        # For each target v, the shares over sources u sum to 1.
        np.testing.assert_allclose(matrix.sum(axis=0), np.ones(5), atol=1e-9)

    def test_values_between_zero_and_one(self, small_model, path_graph):
        matrix = normalized_influence_matrix(small_model, path_graph)
        assert (matrix >= 0).all() and (matrix <= 1 + 1e-9).all()

    def test_empty_graph(self, small_model):
        assert normalized_influence_matrix(small_model, Graph()).size == 0
