"""Batched stream swaps vs the per-node oracle (PR 7 tentpole identity).

``Configuration.stream_batching`` selects between ``StreamGVEX``'s batched
per-arriving-batch path (primed VpExtend verdicts, swap-first IncUpdateVS,
short-circuit novelty probes) and the paper-literal per-node loop.  The two
must produce *identical* views — same node sets, same patterns, same
explainability — on every input; these tests pin that across datasets,
stream seeds, backends and both ``ViewMaintainer`` label sources.
"""

from dataclasses import replace

import pytest

from repro.core import Configuration
from repro.core.maintenance import ViewMaintainer
from repro.core.streaming import StreamGVEX
from repro.graphs.database import GraphDatabase
from repro.graphs.sparse import sparse_backend


def _view_signature(view) -> tuple:
    return (
        view.label,
        [sorted(subgraph.nodes) for subgraph in view.subgraphs],
        sorted(pattern.canonical_key() for pattern in view.patterns),
        round(view.explainability, 12),
    )


def _stream_signatures(model, database, config, seed) -> list[tuple]:
    explainer = StreamGVEX(model, config, batch_size=5, seed=seed)
    labels = sorted({model.predict(graph) for graph in database.graphs})
    return [
        _view_signature(explainer.explain_label(database.graphs, label))
        for label in labels
    ]


@pytest.mark.parametrize("seed", [0, 7])
def test_batched_equals_per_node_stream(trained_mut_model, mut_database, seed):
    base = Configuration(theta=0.08).with_default_bound(0, 8)
    signatures = {
        mode: _stream_signatures(
            trained_mut_model,
            mut_database,
            replace(base, stream_batching=mode),
            seed,
        )
        for mode in ("on", "off")
    }
    assert signatures["on"] == signatures["off"]


def test_auto_matches_forced_modes_on_both_backends(trained_mut_model, mut_database):
    """``auto`` resolves to the batched path iff the sparse backend is on —
    and whichever path it resolves to, the views are the same."""
    base = Configuration(theta=0.08).with_default_bound(0, 8)
    results = {}
    for backend in (True, False):
        with sparse_backend(backend):
            for mode in ("auto", "off"):
                config = replace(base, stream_batching=mode)
                results[(backend, mode)] = _stream_signatures(
                    trained_mut_model, mut_database, config, seed=0
                )
    reference = results[(True, "auto")]
    assert all(value == reference for value in results.values())


@pytest.mark.parametrize("label_source", ["predicted", "stored"])
def test_maintainer_views_identical_across_batching(
    trained_mut_model, mut_database, label_source
):
    base = Configuration(theta=0.08).with_default_bound(0, 8)
    graphs = mut_database.graphs
    labels = mut_database.labels
    split = len(graphs) - 4
    state = {}
    for mode in ("on", "off"):
        config = replace(base, stream_batching=mode)
        database = GraphDatabase(f"mut-{mode}")
        for graph, label in zip(graphs[:split], labels[:split]):
            database.add_graph(graph.copy(), label)
        maintainer = ViewMaintainer(
            trained_mut_model, config, batch_size=5, label_source=label_source
        ).attach(database)
        for graph, label in zip(graphs[split:], labels[split:]):
            database.add_graph(graph.copy(), label)
        state[mode] = {
            label: _view_signature(maintainer.view_for(label))
            for label in maintainer.maintained_labels()
        }
        maintainer.detach()
    assert state["on"] == state["off"]
