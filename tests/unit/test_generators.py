"""Unit tests for random graph and motif generators."""

import random

import pytest

from repro.graphs.generators import (
    attach_motif,
    barabasi_albert_graph,
    clique_motif,
    cycle_motif,
    erdos_renyi_graph,
    grid_motif,
    house_motif,
    one_hot,
    star_motif,
    tree_graph,
)


class TestOneHot:
    def test_basic(self):
        vector = one_hot(2, 5)
        assert vector.tolist() == [0, 0, 1, 0, 0]

    def test_wraps_index(self):
        assert one_hot(7, 5).tolist() == [0, 0, 1, 0, 0]


class TestRandomGraphs:
    def test_barabasi_albert_size_and_connectivity(self):
        graph = barabasi_albert_graph(20, 2, random.Random(0))
        assert graph.num_nodes() == 20
        assert graph.is_connected()

    def test_barabasi_albert_rejects_tiny_sizes(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(2, 3, random.Random(0))

    def test_erdos_renyi_connected_option(self):
        graph = erdos_renyi_graph(15, 0.05, random.Random(1), ensure_connected=True)
        assert graph.is_connected()

    def test_erdos_renyi_feature_dim(self):
        graph = erdos_renyi_graph(6, 0.3, random.Random(1), feature_dim=4)
        assert graph.node_features(0).shape == (4,)

    def test_tree_graph_is_tree(self):
        graph = tree_graph(12, 3, random.Random(2))
        assert graph.num_nodes() == 12
        assert graph.num_edges() == 11
        assert graph.is_connected()


class TestMotifs:
    def test_cycle_motif(self):
        motif = cycle_motif(5)
        assert motif.num_nodes() == 5
        assert motif.num_edges() == 5
        assert all(motif.degree(node) == 2 for node in motif.nodes)

    def test_cycle_motif_rejects_short_cycles(self):
        with pytest.raises(ValueError):
            cycle_motif(2)

    def test_house_motif_shape(self):
        motif = house_motif()
        assert motif.num_nodes() == 5
        assert motif.num_edges() == 6

    def test_star_motif_degrees(self):
        motif = star_motif(4)
        assert motif.degree(0) == 4
        assert all(motif.degree(leaf) == 1 for leaf in range(1, 5))

    def test_star_motif_requires_leaf(self):
        with pytest.raises(ValueError):
            star_motif(0)

    def test_clique_motif_is_complete(self):
        motif = clique_motif(4)
        assert motif.num_edges() == 6

    def test_clique_motif_minimum_size(self):
        with pytest.raises(ValueError):
            clique_motif(1)

    def test_grid_motif_shape(self):
        motif = grid_motif(2, 3)
        assert motif.num_nodes() == 6
        assert motif.num_edges() == 7

    def test_grid_motif_rejects_zero_dims(self):
        with pytest.raises(ValueError):
            grid_motif(0, 3)


class TestAttachMotif:
    def test_attach_grows_base_and_connects(self):
        rng = random.Random(3)
        base = barabasi_albert_graph(10, 2, rng)
        motif = cycle_motif(4)
        before_nodes = base.num_nodes()
        mapping = attach_motif(base, motif, rng)
        assert base.num_nodes() == before_nodes + 4
        assert base.is_connected()
        assert set(mapping.keys()) == set(motif.nodes)

    def test_attach_preserves_motif_types(self):
        rng = random.Random(4)
        base = barabasi_albert_graph(8, 2, rng)
        attach_motif(base, house_motif(), rng)
        assert "house" in base.type_counts()

    def test_attach_to_empty_base_raises(self):
        from repro.graphs import Graph

        with pytest.raises(ValueError):
            attach_motif(Graph(), cycle_motif(3), random.Random(0))
