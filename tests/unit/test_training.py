"""Unit tests for the training loop."""

import pytest

from repro.exceptions import DatasetError
from repro.datasets import make_mutagenicity
from repro.gnn import GNNClassifier, Trainer, train_test_split
from repro.graphs import GraphDatabase


class TestTrainTestSplit:
    def test_partitions_all_indices(self, mut_database):
        train, validation, test = train_test_split(mut_database, seed=1)
        combined = sorted(train + validation + test)
        assert combined == list(range(len(mut_database)))

    def test_split_sizes_roughly_match_fractions(self, mut_database):
        train, validation, test = train_test_split(mut_database, 0.75, 0.125, seed=2)
        assert len(train) == round(0.75 * len(mut_database))
        assert len(validation) + len(test) == len(mut_database) - len(train)

    def test_split_is_seed_deterministic(self, mut_database):
        assert train_test_split(mut_database, seed=5) == train_test_split(mut_database, seed=5)

    def test_invalid_fractions_raise(self, mut_database):
        with pytest.raises(DatasetError):
            train_test_split(mut_database, train_fraction=1.2)
        with pytest.raises(DatasetError):
            train_test_split(mut_database, train_fraction=0.8, validation_fraction=0.4)


class TestTrainer:
    def test_training_reaches_high_accuracy(self, mut_database):
        model = GNNClassifier(feature_dim=14, num_classes=2, hidden_dim=16, seed=0)
        trainer = Trainer(model, learning_rate=0.01, epochs=40, seed=0)
        result = trainer.fit(mut_database, train_indices=list(range(len(mut_database))))
        assert result.train_accuracy >= 0.9
        assert model.is_trained

    def test_loss_decreases(self, mut_database):
        model = GNNClassifier(feature_dim=14, num_classes=2, hidden_dim=16, seed=1)
        trainer = Trainer(model, learning_rate=0.01, epochs=15, seed=1)
        result = trainer.fit(mut_database, train_indices=list(range(len(mut_database))))
        assert result.losses[-1] < result.losses[0]

    def test_default_split_used_when_indices_missing(self):
        database = make_mutagenicity(num_graphs=20, seed=9)
        model = GNNClassifier(feature_dim=14, num_classes=2, hidden_dim=8, seed=2)
        result = Trainer(model, epochs=3, seed=2).fit(database)
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_missing_labels_raise(self):
        database = GraphDatabase()
        source = make_mutagenicity(num_graphs=4, seed=0)
        for graph in source.graphs:
            database.add_graph(graph)  # no labels
        model = GNNClassifier(feature_dim=14, num_classes=2, seed=0)
        with pytest.raises(DatasetError):
            Trainer(model, epochs=1).fit(database, train_indices=[0, 1])

    def test_out_of_range_label_raises(self):
        database = make_mutagenicity(num_graphs=4, seed=0)
        database.set_label(0, 7)
        model = GNNClassifier(feature_dim=14, num_classes=2, seed=0)
        with pytest.raises(DatasetError):
            Trainer(model, epochs=1).fit(database, train_indices=[0, 1, 2, 3])

    def test_evaluate_on_empty_indices(self, mut_database, trained_mut_model):
        trainer = Trainer(trained_mut_model, epochs=1)
        assert trainer.evaluate(mut_database, []) == 0.0

    def test_invalid_hyperparameters_raise(self, trained_mut_model):
        with pytest.raises(ValueError):
            Trainer(trained_mut_model, epochs=0)
        with pytest.raises(ValueError):
            Trainer(trained_mut_model, batch_size=0)
