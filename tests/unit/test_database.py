"""Unit tests for the graph database container."""

import pytest

from repro.exceptions import DatasetError
from repro.graphs import Graph, GraphDatabase


def small_graph(graph_id=None, size=3):
    graph = Graph(graph_id=graph_id)
    for node in range(size):
        graph.add_node(node, "T", [1.0])
    for node in range(size - 1):
        graph.add_edge(node, node + 1)
    return graph


class TestConstruction:
    def test_add_graph_assigns_ids(self):
        database = GraphDatabase()
        index = database.add_graph(small_graph())
        assert index == 0
        assert database[0].graph_id == 0

    def test_add_graph_keeps_existing_id(self):
        database = GraphDatabase()
        database.add_graph(small_graph(graph_id=77))
        assert database[0].graph_id == 77

    def test_extend_with_labels(self):
        database = GraphDatabase()
        database.extend([small_graph(), small_graph()], labels=[0, 1])
        assert database.labels == [0, 1]

    def test_extend_with_mismatched_labels_raises(self):
        database = GraphDatabase()
        with pytest.raises(DatasetError):
            database.extend([small_graph()], labels=[0, 1])

    def test_extend_without_labels(self):
        database = GraphDatabase()
        database.extend([small_graph(), small_graph()])
        assert database.labels == [None, None]


class TestAccess:
    def test_len_and_iteration(self):
        database = GraphDatabase()
        database.extend([small_graph(), small_graph()], labels=[0, 1])
        assert len(database) == 2
        assert len(list(database)) == 2

    def test_label_helpers(self):
        database = GraphDatabase()
        database.extend([small_graph(), small_graph(), small_graph()], labels=[0, 1, 0])
        assert database.class_labels() == [0, 1]
        assert database.label_group_indices(0) == [0, 2]
        assert len(database.label_group(1)) == 1

    def test_set_label(self):
        database = GraphDatabase()
        database.add_graph(small_graph())
        database.set_label(0, 3)
        assert database.label_of(0) == 3

    def test_subset_preserves_labels(self):
        database = GraphDatabase()
        database.extend([small_graph(), small_graph(), small_graph()], labels=[0, 1, 0])
        subset = database.subset([2, 0])
        assert len(subset) == 2
        assert subset.labels == [0, 0]


class TestStatistics:
    def test_statistics_of_empty_database(self):
        stats = GraphDatabase().statistics()
        assert stats["num_graphs"] == 0
        assert stats["avg_nodes"] == 0.0

    def test_statistics_values(self):
        database = GraphDatabase()
        database.extend([small_graph(size=3), small_graph(size=5)], labels=[0, 1])
        stats = database.statistics()
        assert stats["num_graphs"] == 2
        assert stats["num_classes"] == 2
        assert stats["avg_nodes"] == pytest.approx(4.0)
        assert stats["avg_edges"] == pytest.approx(3.0)
        assert stats["feature_dim"] == 1


class TestSerialisation:
    def test_round_trip_dict(self):
        database = GraphDatabase(name="demo")
        database.extend([small_graph(), small_graph()], labels=[0, 1])
        clone = GraphDatabase.from_dict(database.to_dict())
        assert clone.name == "demo"
        assert clone.labels == [0, 1]
        assert clone[1].num_nodes() == 3

    def test_save_and_load(self, tmp_path):
        database = GraphDatabase(name="demo")
        database.add_graph(small_graph(), label=1)
        path = tmp_path / "db.json"
        database.save(path)
        clone = GraphDatabase.load(path)
        assert clone.label_of(0) == 1
        assert clone[0].edges == database[0].edges
