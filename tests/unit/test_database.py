"""Unit tests for the graph database container (and its mutation surface)."""

import pytest

from repro.exceptions import DatasetError
from repro.graphs import DatabaseDelta, Graph, GraphDatabase


def small_graph(graph_id=None, size=3):
    graph = Graph(graph_id=graph_id)
    for node in range(size):
        graph.add_node(node, "T", [1.0])
    for node in range(size - 1):
        graph.add_edge(node, node + 1)
    return graph


class TestConstruction:
    def test_add_graph_assigns_ids(self):
        database = GraphDatabase()
        index = database.add_graph(small_graph())
        assert index == 0
        assert database[0].graph_id == 0

    def test_add_graph_keeps_existing_id(self):
        database = GraphDatabase()
        database.add_graph(small_graph(graph_id=77))
        assert database[0].graph_id == 77

    def test_extend_with_labels(self):
        database = GraphDatabase()
        database.extend([small_graph(), small_graph()], labels=[0, 1])
        assert database.labels == [0, 1]

    def test_extend_with_mismatched_labels_raises(self):
        database = GraphDatabase()
        with pytest.raises(DatasetError):
            database.extend([small_graph()], labels=[0, 1])

    def test_extend_without_labels(self):
        database = GraphDatabase()
        database.extend([small_graph(), small_graph()])
        assert database.labels == [None, None]


class TestAccess:
    def test_len_and_iteration(self):
        database = GraphDatabase()
        database.extend([small_graph(), small_graph()], labels=[0, 1])
        assert len(database) == 2
        assert len(list(database)) == 2

    def test_label_helpers(self):
        database = GraphDatabase()
        database.extend([small_graph(), small_graph(), small_graph()], labels=[0, 1, 0])
        assert database.class_labels() == [0, 1]
        assert database.label_group_indices(0) == [0, 2]
        assert len(database.label_group(1)) == 1

    def test_set_label(self):
        database = GraphDatabase()
        database.add_graph(small_graph())
        database.set_label(0, 3)
        assert database.label_of(0) == 3

    def test_subset_preserves_labels(self):
        database = GraphDatabase()
        database.extend([small_graph(), small_graph(), small_graph()], labels=[0, 1, 0])
        subset = database.subset([2, 0])
        assert len(subset) == 2
        assert subset.labels == [0, 0]


class TestMutation:
    def build(self, labels=(0, 1, 0, 1)):
        database = GraphDatabase()
        database.extend([small_graph() for _ in labels], labels=list(labels))
        return database

    def test_version_bumps_on_every_mutation_kind(self):
        database = self.build()
        version = database.version
        database.set_label(0, 9)
        assert database.version == version + 1
        database.remove_graph(1)
        assert database.version == version + 2
        database.add_graph(small_graph())
        assert database.version == version + 3

    def test_unchanged_relabel_is_a_no_op(self):
        database = self.build()
        version = database.version
        database.set_label(0, 0)
        assert database.version == version
        assert database.deltas_since(version) == []

    def test_remove_graph_returns_the_graph(self):
        database = self.build()
        removed = database.remove_graph(2)
        assert removed.graph_id == 2
        assert len(database) == 3
        assert not database.has_graph(2)

    def test_remove_unknown_id_raises(self):
        database = self.build()
        with pytest.raises(DatasetError):
            database.remove_graph(99)

    def test_graph_ids_stable_under_removal(self):
        """Auto ids are never reused: a graph added after a removal gets a
        fresh id, so old ids keep denoting the removed graph forever."""
        database = self.build()
        database.remove_graph(1)
        index = database.add_graph(small_graph())
        assert database[index].graph_id == 4
        assert [graph.graph_id for graph in database] == [0, 2, 3, 4]

    def test_id_accessors(self):
        database = self.build()
        database.remove_graph(0)
        assert database.index_of(2) == 1
        assert database.graph_by_id(3).graph_id == 3

    def test_label_groups_after_interleaved_removals_and_relabels(self):
        database = self.build(labels=(0, 1, 0, 1, 0))
        database.remove_graph(0)            # labels now [1, 0, 1, 0] for ids 1..4
        database.relabel_graph(3, 0)        # ids: 1->1, 2->0, 3->0, 4->0
        database.remove_graph(2)            # ids: 1->1, 3->0, 4->0
        assert [g.graph_id for g in database.label_group(0)] == [3, 4]
        assert database.label_group_indices(0) == [1, 2]
        assert database.label_group_indices(1) == [0]
        subset = database.subset(database.label_group_indices(0))
        assert [g.graph_id for g in subset] == [3, 4]
        assert subset.labels == [0, 0]

    def test_relabel_by_id_matches_positional_set_label(self):
        database = self.build()
        database.remove_graph(0)
        database.relabel_graph(3, 7)
        assert database.label_of(database.index_of(3)) == 7


class TestDeltasAndSubscriptions:
    def test_add_delta_carries_graph_and_label(self):
        database = GraphDatabase()
        database.add_graph(small_graph(), label=4)
        (delta,) = database.deltas_since(0)
        assert delta.kind == "add"
        assert delta.label == 4
        assert delta.graph is database[0]
        assert delta.version == database.version

    def test_remove_and_relabel_deltas_record_old_labels(self):
        database = GraphDatabase()
        database.extend([small_graph(), small_graph()], labels=[0, 1])
        database.set_label(0, 5)
        database.remove_graph(1)
        relabel, removal = database.deltas_since(2)
        assert (relabel.kind, relabel.label, relabel.old_label) == ("relabel", 5, 0)
        assert (removal.kind, removal.old_label) == ("remove", 1)
        assert removal.graph is not None

    def test_deltas_since_future_version_raises(self):
        database = GraphDatabase()
        with pytest.raises(DatasetError):
            database.deltas_since(5)

    def test_truncated_delta_log_raises(self):
        database = GraphDatabase()
        database.DELTA_LOG_CAPACITY = 2
        for _ in range(4):
            database.add_graph(small_graph())
        with pytest.raises(DatasetError, match="truncated"):
            database.deltas_since(0)
        assert len(database.deltas_since(2)) == 2

    def test_subscribers_see_every_mutation_in_order(self):
        database = GraphDatabase()
        seen: list[tuple] = []
        database.subscribe(lambda delta: seen.append((delta.kind, delta.graph_id)))
        database.add_graph(small_graph(), label=0)
        database.set_label(0, 1)
        database.remove_graph(0)
        assert seen == [("add", 0), ("relabel", 0), ("remove", 0)]

    def test_unsubscribe_stops_delivery(self):
        database = GraphDatabase()
        seen: list[DatabaseDelta] = []
        handle = database.subscribe(seen.append)
        database.add_graph(small_graph())
        database.unsubscribe(handle)
        database.add_graph(small_graph())
        assert len(seen) == 1

    def test_invalid_delta_kind_rejected(self):
        with pytest.raises(DatasetError):
            DatabaseDelta(kind="replace", graph_id=0, version=1)


class TestBatchedViewCache:
    def test_batched_view_is_memoised(self):
        database = GraphDatabase()
        database.extend([small_graph(), small_graph()], labels=[0, 1])
        assert database.batched_view() is database.batched_view()

    @pytest.mark.parametrize("mutate", ["add", "remove", "relabel"])
    def test_batch_cache_is_correct_under_every_mutation_kind(self, mutate):
        """Invalidation is *precise*: mutations that change what the
        selected positions denote (add shifting the selection, removal)
        rebuild; a relabel changes neither graph contents nor the selected
        objects, so the content-identical batch is reused."""
        database = GraphDatabase()
        database.extend([small_graph(), small_graph(), small_graph()], labels=[0, 1, 0])
        before = database.batched_view([0, 1])
        if mutate == "add":
            database.add_graph(small_graph())
            # Selection [0, 1] denotes the same graph objects: reuse is safe.
            assert database.batched_view([0, 1]) is before
            assert database.batched_view([0, 3]) is not before
        elif mutate == "remove":
            database.remove_graph(0)
            # Positions shifted: [0, 1] now denotes different graphs.
            assert database.batched_view([0, 1]) is not before
        else:
            database.set_label(0, 9)
            # Labels are not part of a batch: the identical batch is reused.
            assert database.batched_view([0, 1]) is before

    def test_member_graph_mutation_invalidates_the_batch(self):
        database = GraphDatabase()
        database.extend([small_graph(), small_graph()])
        before = database.batched_view()
        database[0].add_node(99, "T", [1.0])
        assert database.batched_view() is not before

    def test_eviction_is_recency_based(self):
        """The LRU keeps the most recently *used* batches, not the oldest
        inserted (the old hand-rolled dict evicted in insertion order)."""
        database = GraphDatabase()
        database.extend([small_graph() for _ in range(4)])
        database._batch_cache_size = 2
        first = database.batched_view([0])
        second = database.batched_view([1])
        assert database.batched_view([0]) is first  # refreshes recency of [0]
        database.batched_view([2])                  # evicts [1], not [0]
        assert database.batched_view([0]) is first
        assert database.batched_view([1]) is not second

    def test_removal_then_same_indices_returns_fresh_batch(self):
        """After a removal the same positional indices denote different
        graphs; the cache must not serve the pre-removal batch."""
        database = GraphDatabase()
        database.extend([small_graph(size=3), small_graph(size=4), small_graph(size=5)])
        before = database.batched_view([0, 1])
        database.remove_graph(0)
        after = database.batched_view([0, 1])
        assert after is not before
        # Block 1 now holds the 5-node graph (positions shifted down).
        assert len(after.blocks[1][1]) == 5


class TestStatistics:
    def test_statistics_of_empty_database(self):
        stats = GraphDatabase().statistics()
        assert stats["num_graphs"] == 0
        assert stats["avg_nodes"] == 0.0

    def test_statistics_values(self):
        database = GraphDatabase()
        database.extend([small_graph(size=3), small_graph(size=5)], labels=[0, 1])
        stats = database.statistics()
        assert stats["num_graphs"] == 2
        assert stats["num_classes"] == 2
        assert stats["avg_nodes"] == pytest.approx(4.0)
        assert stats["avg_edges"] == pytest.approx(3.0)
        assert stats["feature_dim"] == 1


class TestSerialisation:
    def test_round_trip_dict(self):
        database = GraphDatabase(name="demo")
        database.extend([small_graph(), small_graph()], labels=[0, 1])
        clone = GraphDatabase.from_dict(database.to_dict())
        assert clone.name == "demo"
        assert clone.labels == [0, 1]
        assert clone[1].num_nodes() == 3

    def test_save_and_load(self, tmp_path):
        database = GraphDatabase(name="demo")
        database.add_graph(small_graph(), label=1)
        path = tmp_path / "db.json"
        database.save(path)
        clone = GraphDatabase.load(path)
        assert clone.label_of(0) == 1
        assert clone[0].edges == database[0].edges
