"""Unit tests for the indexed pattern-matching engine (repro.matching.engine)."""

import gc

import pytest

from repro.graphs import Graph, GraphPattern
from repro.graphs.sparse import sparse_backend
from repro.matching import isomorphism as reference
from repro.matching.engine import (
    MatchEngine,
    get_engine,
    has_matching,
    match_many,
    matched_node_sets,
    set_match_cache_size,
    warm_match_indices,
)


def typed_graph():
    graph = Graph()
    graph.add_node(0, "A")
    graph.add_node(1, "B")
    graph.add_node(2, "A")
    graph.add_node(3, "C")
    graph.add_edge(0, 1, "x")
    graph.add_edge(1, 2, "x")
    graph.add_edge(2, 3, "y")
    return graph


def path_pattern(types, edge_types=None):
    pattern = GraphPattern()
    for index, node_type in enumerate(types):
        pattern.add_node(index, node_type)
    for index in range(len(types) - 1):
        edge_type = edge_types[index] if edge_types else "edge"
        pattern.add_edge(index, index + 1, edge_type)
    return pattern


def indexed_engine(**kwargs):
    """An engine forced onto the indexed masked search (no small-graph
    delegation), so the unit tests exercise the prefilter + mask machinery
    even on the tiny fixtures."""
    engine = MatchEngine(**kwargs)
    engine.small_graph_cutoff = 0
    return engine


class TestEngineCorrectness:
    def test_matches_reference_on_small_cases(self):
        engine = indexed_engine()
        graph = typed_graph()
        for types, edge_types in [
            (["A"], None),
            (["A", "B"], ["x"]),
            (["A", "B", "A"], ["x", "x"]),
            (["A", "B", "A", "C"], ["x", "x", "y"]),
            (["C", "A"], ["y"]),
            (["A", "B"], ["y"]),  # wrong edge type -> no match
            (["D"], None),  # unknown node type -> no match
        ]:
            pattern = path_pattern(types, edge_types)
            assert engine.has_matching(pattern, graph) == reference.has_matching(
                pattern, graph
            )
            assert engine.count_matchings(pattern, graph) == reference.count_matchings(
                pattern, graph
            )
            assert {frozenset(s) for s in engine.matched_node_sets(pattern, graph)} == {
                frozenset(s) for s in reference.matched_node_sets(pattern, graph)
            }

    def test_capped_queries_reproduce_reference_order_exactly(self):
        # A cap truncates enumeration, so the engine must replay the
        # reference matcher's exact order — lists, not sets, must agree.
        engine = indexed_engine()
        graph = Graph()
        for node in range(8):
            graph.add_node(node, "A")
        for node in range(1, 8):
            graph.add_edge(node - 1, node)
        pattern = path_pattern(["A", "A"])
        for cap in (1, 2, 3, 5):
            assert engine.matched_node_sets(
                pattern, graph, max_matchings=cap
            ) == reference.matched_node_sets(pattern, graph, max_matchings=cap)
            assert engine.covered_nodes(pattern, graph, max_matchings=cap) == {
                node
                for mapping in reference.find_matchings(pattern, graph, max_matchings=cap)
                for node in mapping.values()
            }

    def test_covered_edges_matches_reference(self):
        engine = indexed_engine()
        graph = typed_graph()
        pattern = path_pattern(["A", "B", "A"], ["x", "x"])
        expected = set()
        for mapping in reference.find_matchings(pattern, graph):
            for u, v in pattern.edges:
                a, b = mapping[u], mapping[v]
                expected.add((a, b) if a <= b else (b, a))
        assert engine.covered_edges(pattern, graph) == expected

    def test_prefilter_rejects_type_histogram_deficit(self):
        # Three A's requested, graph has two: candidate masks are non-empty
        # but the histogram certificate alone must answer "no match".
        engine = indexed_engine()
        graph = typed_graph()
        pattern = path_pattern(["A", "A", "A"])
        assert not engine.has_matching(pattern, graph)
        assert engine.stats()["size"] >= 1  # the negative result is memoised

    def test_search_without_prefilters_agrees(self):
        engine = indexed_engine()
        engine.use_prefilters = False
        graph = typed_graph()
        pattern = path_pattern(["A", "B", "A"], ["x", "x"])
        assert engine.has_matching(pattern, graph)
        assert engine.count_matchings(pattern, graph) == reference.count_matchings(
            pattern, graph
        )

    def test_empty_and_oversized_patterns(self):
        engine = indexed_engine()
        graph = typed_graph()
        assert not engine.has_matching(GraphPattern(), graph)
        assert engine.matched_node_sets(GraphPattern(), graph) == []
        big = path_pattern(["A"] * 10)
        assert not engine.has_matching(big, graph)
        assert engine.count_matchings(big, graph) == 0


class TestEngineMemo:
    def test_repeated_query_hits_the_memo(self):
        engine = indexed_engine()
        graph = typed_graph()
        pattern = path_pattern(["A", "B"], ["x"])
        engine.has_matching(pattern, graph)
        before = engine.stats()["hits"]
        engine.has_matching(pattern, graph)
        assert engine.stats()["hits"] == before + 1

    def test_memo_invalidates_on_version_bump(self):
        engine = indexed_engine()
        graph = typed_graph()
        pattern = path_pattern(["D"])
        assert not engine.has_matching(pattern, graph)
        graph.add_node(9, "D")  # bumps graph.version
        assert engine.has_matching(pattern, graph)
        assert engine.covered_nodes(pattern, graph) == {9}

    def test_same_pattern_object_rehits_across_query_kinds(self):
        engine = indexed_engine()
        graph = typed_graph()
        pattern = path_pattern(["A", "B"], ["x"])
        engine.covered_nodes(pattern, graph)
        before = engine.stats()["hits"]
        engine.covered_nodes(pattern, graph)
        assert engine.stats()["hits"] > before

    def test_signature_collisions_never_alias_memo_entries(self):
        # structural_signature is a heuristic invariant: a triangle-with-tail
        # and a square-with-pendant (uniform types) share a canonical key but
        # are NOT isomorphic.  The memo key must include the exact pattern
        # identity so one pattern's cached result never serves the other.
        def build(edges):
            pattern = GraphPattern()
            for node in range(5):
                pattern.add_node(node, "A")
            for u, v in edges:
                pattern.add_edge(u, v)
            return pattern

        triangle_tail = build([(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
        square_pendant = build([(0, 1), (1, 2), (2, 3), (3, 0), (3, 4)])
        assert triangle_tail.canonical_key() == square_pendant.canonical_key()

        # A graph that *is* a square with a pendant: the square pattern
        # matches, the triangle pattern must not — even queried second.
        graph = Graph()
        for node in range(5):
            graph.add_node(node, "A")
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0), (3, 4)]:
            graph.add_edge(u, v)
        engine = indexed_engine()
        assert engine.has_matching(square_pendant, graph)
        assert not engine.has_matching(triangle_tail, graph)
        assert engine.covered_nodes(square_pendant, graph) == {0, 1, 2, 3, 4}
        assert engine.covered_nodes(triangle_tail, graph) == set()

    def test_dead_graph_entries_never_alias_new_graphs(self):
        engine = indexed_engine()
        pattern = path_pattern(["A"])
        graph = typed_graph()
        assert engine.has_matching(pattern, graph)
        del graph
        gc.collect()
        # A fresh graph (potentially recycling the old id) must recompute.
        other = Graph()
        other.add_node(0, "B")
        assert not engine.has_matching(pattern, other)

    def test_resize_and_zero_capacity(self):
        engine = indexed_engine(capacity=2)
        graph = typed_graph()
        for code in ("A", "B", "C"):
            engine.has_matching(path_pattern([code]), graph)
        assert engine.stats()["size"] <= 2
        engine.resize(0)
        assert engine.stats()["size"] == 0
        engine.has_matching(path_pattern(["A"]), graph)
        assert engine.stats()["size"] == 0  # storage disabled

    def test_set_match_cache_size_resizes_the_shared_engine(self):
        original = get_engine()._memo.capacity
        try:
            set_match_cache_size(17)
            assert get_engine()._memo.capacity == 17
        finally:
            set_match_cache_size(original)


class TestDispatchers:
    def test_dispatch_respects_the_backend_toggle(self):
        graph = typed_graph()
        pattern = path_pattern(["A", "B"], ["x"])
        with sparse_backend(True):
            sparse_result = has_matching(pattern, graph)
            sparse_sets = matched_node_sets(pattern, graph)
        with sparse_backend(False):
            legacy_result = has_matching(pattern, graph)
            legacy_sets = matched_node_sets(pattern, graph)
        assert sparse_result == legacy_result
        assert {frozenset(s) for s in sparse_sets} == {frozenset(s) for s in legacy_sets}

    def test_match_many_agrees_with_per_graph_calls(self):
        graphs = [typed_graph() for _ in range(3)]
        graphs[1].remove_node(1)  # drop the only B
        pattern = path_pattern(["A", "B"], ["x"])
        with sparse_backend(True):
            flags = match_many(pattern, graphs)
        assert flags == [reference.has_matching(pattern, graph) for graph in graphs]

    def test_match_many_reference_fallback(self):
        graphs = [typed_graph()]
        pattern = path_pattern(["A", "B"], ["x"])
        with sparse_backend(False):
            assert match_many(pattern, graphs) == [True]

    def test_warm_match_indices_builds_per_view_tables(self):
        # Large enough to clear the small-graph cutoff (small graphs run the
        # reference search and are skipped by the warmer).
        graph = Graph()
        for node in range(30):
            graph.add_node(node, "A" if node % 2 else "B")
        for node in range(1, 30):
            graph.add_edge(node - 1, node)
        with sparse_backend(True):
            assert warm_match_indices([graph]) == 1
            view = graph.sparse_view()
            assert view._degrees is not None
            assert view._neighbour_type_counts is not None
            assert view._row_neighbour_sets is not None
            assert view._edge_code_map is not None
            # Sub-cutoff graphs never consult the indices; not warmed.
            assert warm_match_indices([typed_graph()]) == 0
        with sparse_backend(False):
            assert warm_match_indices([graph]) == 0


class TestPatternKeyCache:
    def test_canonical_key_is_cached_until_mutation(self):
        pattern = path_pattern(["A", "B"], ["x"])
        first = pattern.canonical_key()
        assert pattern.canonical_key() is first  # same object: served from cache
        pattern.add_node(2, "C")
        second = pattern.canonical_key()
        assert second != first

    def test_eq_and_hash_follow_the_cached_key(self):
        left = path_pattern(["A", "B"], ["x"])
        right = path_pattern(["A", "B"], ["x"])
        assert left == right
        assert hash(left) == hash(right)
        right.add_node(2, "C")
        assert left != right


class TestConfigKnob:
    def test_match_cache_size_validation(self):
        from repro.core.config import Configuration
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="match_cache_size"):
            Configuration(match_cache_size=-1)
        assert Configuration(match_cache_size=0).match_cache_size == 0

    def test_explainer_construction_applies_the_knob(self, untrained_small_model):
        from repro.core.approx import ApproxGVEX
        from repro.core.config import Configuration

        original = get_engine()._memo.capacity
        try:
            ApproxGVEX(untrained_small_model, Configuration(match_cache_size=123))
            assert get_engine()._memo.capacity == 123
        finally:
            set_match_cache_size(original)

    def test_env_override_pins_the_cache_size(self, untrained_small_model, monkeypatch):
        # An operator-pinned REPRO_MATCH_CACHE_SIZE must not be silently
        # undone by constructing an explainer with some configuration.
        from repro.core.approx import ApproxGVEX
        from repro.core.config import Configuration

        original = get_engine()._memo.capacity
        try:
            monkeypatch.setenv("REPRO_MATCH_CACHE_SIZE", "777")
            set_match_cache_size(777)
            ApproxGVEX(untrained_small_model, Configuration(match_cache_size=5))
            assert get_engine()._memo.capacity == 777
        finally:
            monkeypatch.delenv("REPRO_MATCH_CACHE_SIZE", raising=False)
            set_match_cache_size(original)
