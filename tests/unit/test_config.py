"""Unit tests for the GVEX configuration."""

import pytest

from repro.core import Configuration, CoverageBound
from repro.exceptions import ConfigurationError


class TestCoverageBound:
    def test_contains(self):
        bound = CoverageBound(2, 5)
        assert bound.contains(2) and bound.contains(5)
        assert not bound.contains(1) and not bound.contains(6)

    def test_negative_lower_rejected(self):
        with pytest.raises(ConfigurationError):
            CoverageBound(-1, 5)

    def test_upper_below_lower_rejected(self):
        with pytest.raises(ConfigurationError):
            CoverageBound(5, 3)

    def test_zero_upper_rejected(self):
        with pytest.raises(ConfigurationError):
            CoverageBound(0, 0)


class TestConfiguration:
    def test_defaults_are_valid(self):
        config = Configuration()
        assert config.theta == 0.1
        assert config.default_bound.upper == 15

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"theta": -0.1},
            {"theta": 1.5},
            {"radius": -1.0},
            {"gamma": 2.0},
            {"influence_method": "quantum"},
            {"verification_mode": "maybe"},
            {"min_check_size": 0},
            {"max_pattern_size": 0},
            {"max_pattern_candidates": 0},
            {"diversity_hops": -1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            Configuration(**kwargs)

    def test_bound_for_uses_default(self):
        config = Configuration()
        assert config.bound_for(3) == config.default_bound

    def test_with_bound_overrides_one_label(self):
        config = Configuration().with_bound(1, 2, 6)
        assert config.bound_for(1) == CoverageBound(2, 6)
        assert config.bound_for(0) == config.default_bound

    def test_with_bound_returns_new_object(self):
        config = Configuration()
        updated = config.with_bound(0, 1, 4)
        assert config.coverage_bounds == {}
        assert updated is not config

    def test_with_default_bound(self):
        config = Configuration().with_default_bound(2, 9)
        assert config.bound_for(42) == CoverageBound(2, 9)

    def test_describe_round_trips_key_fields(self):
        config = Configuration(theta=0.2, gamma=0.7).with_bound(1, 0, 5)
        description = config.describe()
        assert description["theta"] == 0.2
        assert description["gamma"] == 0.7
        assert description["coverage_bounds"] == {1: (0, 5)}

    def test_configuration_is_hashable_frozen(self):
        config = Configuration()
        with pytest.raises(Exception):
            config.theta = 0.5  # type: ignore[misc]


class TestValidationMessages:
    """Out-of-range knobs are rejected with actionable messages."""

    def test_theta_out_of_range_names_the_parameter(self):
        with pytest.raises(ConfigurationError, match=r"theta.*\[0, 1\].*1\.5"):
            Configuration(theta=1.5)

    def test_gamma_out_of_range_names_the_parameter(self):
        with pytest.raises(ConfigurationError, match=r"gamma.*got -0\.1"):
            Configuration(gamma=-0.1)

    def test_radius_negative_rejected(self):
        with pytest.raises(ConfigurationError, match="radius.*non-negative"):
            Configuration(radius=-1.0)

    def test_stream_batching_validated(self):
        with pytest.raises(ConfigurationError, match="stream_batching"):
            Configuration(stream_batching="sometimes")

    def test_default_bound_type_checked(self):
        with pytest.raises(ConfigurationError, match="default_bound.*CoverageBound"):
            Configuration(default_bound=(0, 5))  # type: ignore[arg-type]

    def test_coverage_bounds_values_type_checked(self):
        with pytest.raises(ConfigurationError, match=r"coverage_bounds\[1\]"):
            Configuration(coverage_bounds={1: (0, 5)})  # type: ignore[dict-item]

    def test_coverage_bound_out_of_range_suggests_fix(self):
        with pytest.raises(ConfigurationError, match="raise the upper bound"):
            CoverageBound(5, 2)


class TestFingerprint:
    """The stable hash keying the service's result cache."""

    def test_fingerprint_is_16_hex_chars(self):
        fingerprint = Configuration().fingerprint()
        assert len(fingerprint) == 16
        assert all(ch in "0123456789abcdef" for ch in fingerprint)

    def test_identical_configurations_share_a_fingerprint(self):
        assert Configuration(theta=0.2).fingerprint() == Configuration(theta=0.2).fingerprint()

    def test_every_knob_changes_the_fingerprint(self):
        base = Configuration().fingerprint()
        variants = [
            Configuration(theta=0.2),
            Configuration(gamma=0.9),
            Configuration(radius=0.5),
            Configuration(seed=99),
            Configuration(min_check_size=4),
            Configuration(max_pattern_size=3),
            Configuration(diversity_hops=2),
            Configuration(selection_strategy="eager"),
            Configuration(stream_batching="off"),
            Configuration(match_cache_size=64),
            Configuration().with_default_bound(0, 9),
            Configuration().with_bound(1, 0, 5),
        ]
        fingerprints = {variant.fingerprint() for variant in variants}
        assert base not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_fingerprint_is_stable_across_processes(self):
        # Hard-coded reference: the fingerprint must never silently change,
        # or every persisted cache entry would be orphaned.
        import subprocess
        import sys

        code = "from repro.core.config import Configuration; print(Configuration().fingerprint())"
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        )
        assert result.stdout.strip() == Configuration().fingerprint()
