"""Unit tests for the pattern-mining substrate (PGen / IncPGen / MDL)."""

import pytest

from repro.exceptions import MiningError
from repro.graphs import Graph, GraphPattern
from repro.matching import has_matching
from repro.mining import (
    PatternGenerator,
    description_length,
    enumerate_connected_patterns,
    frequent_patterns,
    mdl_rank,
    pattern_encoding_cost,
)


def typed_triangle():
    graph = Graph()
    graph.add_node(0, "A")
    graph.add_node(1, "B")
    graph.add_node(2, "A")
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(0, 2)
    return graph


def typed_path(types):
    graph = Graph()
    for index, node_type in enumerate(types):
        graph.add_node(index, node_type)
    for index in range(len(types) - 1):
        graph.add_edge(index, index + 1)
    return graph


class TestEnumeration:
    def test_single_node_patterns_included(self):
        patterns = enumerate_connected_patterns(typed_triangle(), max_pattern_size=1)
        types = {pattern.node_type(pattern.nodes[0]) for pattern in patterns}
        assert types == {"A", "B"}

    def test_patterns_are_connected(self):
        for pattern in enumerate_connected_patterns(typed_path(["A", "B", "C", "D"]), 3):
            assert pattern.is_connected()

    def test_size_bound_respected(self):
        for pattern in enumerate_connected_patterns(typed_triangle(), 2):
            assert pattern.num_nodes() <= 2

    def test_duplicates_removed(self):
        # A path A-A-A yields only two distinct patterns of size <= 2: the
        # single node A and the edge A-A.
        patterns = enumerate_connected_patterns(typed_path(["A", "A", "A"]), 2)
        assert len(patterns) == 2

    def test_per_graph_cap(self):
        patterns = enumerate_connected_patterns(typed_triangle(), 3, max_patterns_per_graph=2)
        assert len(patterns) <= 2

    def test_invalid_size_rejected(self):
        with pytest.raises(MiningError):
            enumerate_connected_patterns(typed_triangle(), 0)


class TestFrequentPatterns:
    def test_support_counting(self):
        graphs = [typed_path(["A", "B"]), typed_path(["A", "B", "C"]), typed_path(["C", "C"])]
        results = frequent_patterns(graphs, min_support=2, max_pattern_size=2)
        supports = {tuple(sorted(fp.pattern.graph.type_counts())): fp.support for fp in results}
        assert supports[("A",)] == 2
        assert supports[("A", "B")] == 2

    def test_results_sorted_by_support(self):
        graphs = [typed_path(["A", "B"]), typed_path(["A", "C"]), typed_path(["A", "D"])]
        results = frequent_patterns(graphs, min_support=1, max_pattern_size=1)
        assert results[0].support >= results[-1].support
        assert results[0].pattern.node_type(results[0].pattern.nodes[0]) == "A"

    def test_min_support_filters(self):
        graphs = [typed_path(["A", "B"]), typed_path(["C", "D"])]
        results = frequent_patterns(graphs, min_support=2, max_pattern_size=2)
        assert results == []

    def test_invalid_support_rejected(self):
        with pytest.raises(MiningError):
            frequent_patterns([typed_triangle()], min_support=0)


class TestMDL:
    def test_encoding_cost_grows_with_size(self):
        small = GraphPattern.from_graph(typed_path(["A", "B"]))
        large = GraphPattern.from_graph(typed_path(["A", "B", "C", "D"]))
        assert pattern_encoding_cost(large) > pattern_encoding_cost(small)

    def test_empty_pattern_costs_nothing(self):
        assert pattern_encoding_cost(GraphPattern()) == 0.0

    def test_description_length_prefers_covering_patterns(self):
        subgraphs = [typed_path(["A", "B", "A", "B"])]
        covering = GraphPattern.from_graph(typed_path(["A", "B"]))
        irrelevant = GraphPattern.from_graph(typed_path(["C", "C"]))
        assert description_length(covering, subgraphs) < description_length(irrelevant, subgraphs)

    def test_mdl_rank_orders_by_description_length(self):
        subgraphs = [typed_path(["A", "B", "A", "B"])]
        covering = GraphPattern.from_graph(typed_path(["A", "B"]))
        irrelevant = GraphPattern.from_graph(typed_path(["C", "C"]))
        ranked = mdl_rank([irrelevant, covering], subgraphs)
        assert ranked[0] == covering


class TestPatternGenerator:
    def test_generate_returns_ranked_unique_candidates(self):
        generator = PatternGenerator(max_pattern_size=2, max_candidates=5)
        candidates = generator.generate([typed_triangle(), typed_path(["A", "B"])])
        assert 0 < len(candidates) <= 5
        keys = [pattern.canonical_key() for pattern in candidates]
        assert len(keys) == len(set(keys))

    def test_generated_patterns_match_their_source(self):
        generator = PatternGenerator(max_pattern_size=2)
        source = typed_triangle()
        for pattern in generator.generate([source]):
            assert has_matching(pattern, source)

    def test_generate_skips_empty_subgraphs(self):
        generator = PatternGenerator()
        assert generator.generate([Graph()]) == []

    def test_incremental_generation_excludes_known_patterns(self):
        generator = PatternGenerator(max_pattern_size=2)
        graph = typed_path(["A", "B", "C"])
        existing = generator.generate([graph])
        fresh = generator.generate_incremental(graph, 2, existing, hops=2)
        existing_keys = {pattern.canonical_key() for pattern in existing}
        assert all(pattern.canonical_key() not in existing_keys for pattern in fresh)

    def test_incremental_generation_on_missing_node(self):
        generator = PatternGenerator()
        assert generator.generate_incremental(typed_triangle(), 99, []) == []


class TestEnumerationDeterminism:
    """BFS expansion (deque, sorted boundaries) makes enumeration — and any
    ``max_patterns_per_graph`` truncation — reproducible across runs and
    identical between the incremental-key fast path and the reference path."""

    def build_graph(self, seed=11, num_nodes=12):
        from tests.conftest import build_random_typed_graph

        return build_random_typed_graph(num_nodes, seed=seed)

    def test_enumeration_order_is_deterministic(self):
        graph = self.build_graph()
        first = enumerate_connected_patterns(graph, 3, max_patterns_per_graph=20)
        second = enumerate_connected_patterns(graph, 3, max_patterns_per_graph=20)
        assert [p.canonical_key() for p in first] == [p.canonical_key() for p in second]

    def test_truncation_is_a_prefix_of_the_full_enumeration(self):
        graph = self.build_graph()
        full = enumerate_connected_patterns(graph, 3, max_patterns_per_graph=10_000)
        truncated = enumerate_connected_patterns(graph, 3, max_patterns_per_graph=7)
        assert [p.canonical_key() for p in truncated] == [
            p.canonical_key() for p in full
        ][: len(truncated)]

    def test_breadth_first_yields_small_patterns_first(self):
        # All singleton node sets are seeded before any 2-node extension, so
        # a breadth-first frontier must emit every 1-node pattern before the
        # first multi-node one — the LIFO bug emitted large patterns first.
        graph = typed_path(["A", "B", "C", "D"])
        patterns = enumerate_connected_patterns(graph, 3)
        sizes = [pattern.num_nodes() for pattern in patterns]
        num_types = len({"A", "B", "C", "D"})
        assert sizes[:num_types] == [1] * num_types
        assert sizes == sorted(sizes)

    def test_incremental_and_reference_paths_agree(self):
        from repro.graphs.sparse import sparse_backend

        for seed in (0, 3, 9):
            graph = self.build_graph(seed=seed)
            for cap in (6, 40, 10_000):
                with sparse_backend(True):
                    fast = enumerate_connected_patterns(graph, 4, max_patterns_per_graph=cap)
                with sparse_backend(False):
                    reference = enumerate_connected_patterns(
                        graph, 4, max_patterns_per_graph=cap
                    )
                assert [p.canonical_key() for p in fast] == [
                    p.canonical_key() for p in reference
                ]

    def test_frequent_patterns_identical_across_backends(self):
        from repro.graphs.sparse import sparse_backend

        graphs = [self.build_graph(seed=seed, num_nodes=8) for seed in range(4)]
        def snapshot(results):
            return [
                (fp.pattern.canonical_key(), fp.support, tuple(fp.supporting_graphs))
                for fp in results
            ]

        with sparse_backend(True):
            fast = snapshot(frequent_patterns(graphs, min_support=2, max_pattern_size=3))
        with sparse_backend(False):
            reference = snapshot(frequent_patterns(graphs, min_support=2, max_pattern_size=3))
        assert fast == reference
