"""Unit tests for induced/residual/k-hop subgraph construction."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graphs import (
    Graph,
    connected_component_subgraphs,
    induced_subgraph,
    khop_subgraph,
    remove_subgraph,
)


class TestInducedSubgraph:
    def test_keeps_only_internal_edges(self, triangle_graph):
        sub = induced_subgraph(triangle_graph, {0, 1})
        assert sub.nodes == [0, 1]
        assert sub.edges == [(0, 1)]

    def test_preserves_types_and_features(self, triangle_graph):
        sub = induced_subgraph(triangle_graph, {0, 1})
        assert sub.node_type(1) == "B"
        assert sub.node_features(0) is not None
        assert sub.edge_type(0, 1) == "x"

    def test_missing_node_raises(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            induced_subgraph(triangle_graph, {0, 99})

    def test_empty_selection_gives_empty_graph(self, triangle_graph):
        sub = induced_subgraph(triangle_graph, set())
        assert sub.num_nodes() == 0
        assert sub.num_edges() == 0

    def test_full_selection_copies_graph(self, triangle_graph):
        sub = induced_subgraph(triangle_graph, triangle_graph.nodes)
        assert sub.num_nodes() == triangle_graph.num_nodes()
        assert sub.num_edges() == triangle_graph.num_edges()

    def test_graph_id_propagates(self, triangle_graph):
        assert induced_subgraph(triangle_graph, {0}).graph_id == triangle_graph.graph_id
        assert induced_subgraph(triangle_graph, {0}, graph_id=9).graph_id == 9


class TestRemoveSubgraph:
    def test_residual_is_complement(self, path_graph):
        residual = remove_subgraph(path_graph, {0, 1})
        assert set(residual.nodes) == {2, 3, 4}

    def test_residual_drops_boundary_edges(self, triangle_graph):
        residual = remove_subgraph(triangle_graph, {0})
        assert residual.edges == [(1, 2)]

    def test_removing_everything_gives_empty_graph(self, triangle_graph):
        residual = remove_subgraph(triangle_graph, triangle_graph.nodes)
        assert residual.num_nodes() == 0

    def test_union_of_partition_covers_nodes(self, path_graph):
        kept = induced_subgraph(path_graph, {0, 1})
        residual = remove_subgraph(path_graph, {0, 1})
        assert set(kept.nodes) | set(residual.nodes) == set(path_graph.nodes)
        assert set(kept.nodes) & set(residual.nodes) == set()


class TestKhopSubgraph:
    def test_zero_hops_is_single_node(self, path_graph):
        sub = khop_subgraph(path_graph, 2, 0)
        assert sub.nodes == [2]

    def test_one_hop_includes_neighbours(self, path_graph):
        sub = khop_subgraph(path_graph, 2, 1)
        assert set(sub.nodes) == {1, 2, 3}

    def test_large_radius_covers_component(self, path_graph):
        sub = khop_subgraph(path_graph, 0, 10)
        assert set(sub.nodes) == set(path_graph.nodes)

    def test_negative_hops_rejected(self, path_graph):
        with pytest.raises(ValueError):
            khop_subgraph(path_graph, 0, -1)

    def test_missing_center_raises(self, path_graph):
        with pytest.raises(NodeNotFoundError):
            khop_subgraph(path_graph, 99, 1)


class TestConnectedComponentSubgraphs:
    def test_splits_disconnected_graph(self):
        graph = Graph()
        for node in range(5):
            graph.add_node(node)
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        parts = connected_component_subgraphs(graph)
        assert len(parts) == 3
        assert {len(part.nodes) for part in parts} == {2, 2, 1}

    def test_connected_graph_returns_single_part(self, triangle_graph):
        parts = connected_component_subgraphs(triangle_graph)
        assert len(parts) == 1
        assert parts[0].num_edges() == 3
