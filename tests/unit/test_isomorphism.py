"""Unit tests for node-induced subgraph isomorphism (PMatch)."""


from repro.graphs import Graph, GraphPattern
from repro.matching import (
    count_matchings,
    find_matchings,
    has_matching,
    iter_matchings,
    matched_node_sets,
)


def typed_path(types, edge_types=None):
    graph = Graph()
    for index, node_type in enumerate(types):
        graph.add_node(index, node_type)
    for index in range(len(types) - 1):
        edge_type = edge_types[index] if edge_types else "edge"
        graph.add_edge(index, index + 1, edge_type)
    return graph


def pattern_from_types(types, edge_types=None):
    return GraphPattern.from_graph(typed_path(types, edge_types))


class TestBasicMatching:
    def test_single_node_pattern_matches_each_typed_node(self):
        graph = typed_path(["A", "B", "A"])
        pattern = pattern_from_types(["A"])
        assert count_matchings(pattern, graph) == 2

    def test_edge_pattern_matches_both_directions(self):
        graph = typed_path(["A", "A"])
        pattern = pattern_from_types(["A", "A"])
        assert count_matchings(pattern, graph) == 2  # two orientations

    def test_node_type_mismatch_blocks_matching(self):
        graph = typed_path(["A", "B"])
        pattern = pattern_from_types(["A", "C"])
        assert not has_matching(pattern, graph)

    def test_edge_type_mismatch_blocks_matching(self):
        graph = typed_path(["A", "B"], edge_types=["single"])
        pattern = pattern_from_types(["A", "B"], edge_types=["double"])
        assert not has_matching(pattern, graph)

    def test_pattern_larger_than_graph_never_matches(self):
        graph = typed_path(["A", "A"])
        pattern = pattern_from_types(["A", "A", "A"])
        assert not has_matching(pattern, graph)

    def test_empty_pattern_has_no_matchings(self):
        assert find_matchings(GraphPattern(), typed_path(["A"])) == []


class TestInducedSemantics:
    def test_induced_matching_rejects_extra_edges(self):
        # Pattern: path A-B-A (no edge between the two A's).
        pattern = pattern_from_types(["A", "B", "A"])
        # Graph: triangle A-B-A with an extra A-A edge, so the node-induced
        # subgraph on any 3 nodes has an extra edge and cannot match the path.
        graph = typed_path(["A", "B", "A"])
        graph.add_edge(0, 2)
        assert not has_matching(pattern, graph)

    def test_triangle_pattern_matches_triangle(self):
        graph = typed_path(["A", "A", "A"])
        graph.add_edge(0, 2)
        pattern = GraphPattern.from_graph(graph)
        assert has_matching(pattern, graph)
        assert count_matchings(pattern, graph) == 6  # 3! automorphisms

    def test_matching_is_injective(self):
        graph = typed_path(["A", "B"])
        pattern = pattern_from_types(["A", "B"])
        for mapping in find_matchings(pattern, graph):
            assert len(set(mapping.values())) == len(mapping)

    def test_matching_preserves_adjacency(self):
        graph = typed_path(["A", "B", "C", "A"])
        pattern = pattern_from_types(["B", "C"])
        for mapping in find_matchings(pattern, graph):
            for u, v in pattern.edges:
                assert graph.has_edge(mapping[u], mapping[v])


class TestEnumeration:
    def test_max_matchings_caps_enumeration(self):
        graph = typed_path(["A"] * 6)
        pattern = pattern_from_types(["A", "A"])
        assert len(find_matchings(pattern, graph, max_matchings=3)) == 3

    def test_iter_matchings_is_lazy(self):
        graph = typed_path(["A"] * 6)
        pattern = pattern_from_types(["A", "A"])
        iterator = iter_matchings(pattern, graph)
        first = next(iterator)
        assert isinstance(first, dict)

    def test_matched_node_sets_deduplicates_automorphisms(self):
        graph = typed_path(["A", "A"])
        pattern = pattern_from_types(["A", "A"])
        node_sets = matched_node_sets(pattern, graph)
        assert node_sets == [{0, 1}]

    def test_pattern_from_subgraph_always_matches_source(self, mut_database):
        graph = mut_database[0]
        from repro.graphs.subgraph import induced_subgraph

        nodes = graph.nodes[:4]
        pattern = GraphPattern.from_graph(induced_subgraph(graph, nodes))
        if pattern.is_connected():
            assert has_matching(pattern, graph)
