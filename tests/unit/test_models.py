"""Unit tests for the GNN classifier."""

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.gnn import GNNClassifier
from repro.gnn.loss import cross_entropy, cross_entropy_grad
from repro.graphs import Graph


class TestConstruction:
    def test_rejects_invalid_dimensions(self):
        with pytest.raises(ModelError):
            GNNClassifier(feature_dim=0, num_classes=2)
        with pytest.raises(ModelError):
            GNNClassifier(feature_dim=2, num_classes=1)
        with pytest.raises(ModelError):
            GNNClassifier(feature_dim=2, num_classes=2, num_layers=0)
        with pytest.raises(ModelError):
            GNNClassifier(feature_dim=2, num_classes=2, conv="transformer")

    def test_layer_stack_sizes(self):
        model = GNNClassifier(feature_dim=3, num_classes=4, hidden_dim=8, num_layers=2)
        assert len(model.conv_layers) == 2
        assert model.head.out_dim == 4

    @pytest.mark.parametrize("conv", ["gcn", "gin", "sage"])
    def test_all_conv_types_forward(self, conv, triangle_graph):
        model = GNNClassifier(feature_dim=2, num_classes=2, hidden_dim=4, conv=conv, seed=0)
        logits = model.predict_logits(triangle_graph)
        assert logits.shape == (2,)

    def test_parameter_count_positive(self, untrained_small_model):
        assert untrained_small_model.parameter_count() > 0

    def test_seed_makes_weights_deterministic(self):
        first = GNNClassifier(feature_dim=2, num_classes=2, seed=42)
        second = GNNClassifier(feature_dim=2, num_classes=2, seed=42)
        np.testing.assert_allclose(
            first.conv_layers[0].params["weight"], second.conv_layers[0].params["weight"]
        )


class TestInference:
    def test_predict_returns_valid_label(self, untrained_small_model, triangle_graph):
        assert untrained_small_model.predict(triangle_graph) in (0, 1)

    def test_predict_proba_sums_to_one(self, untrained_small_model, triangle_graph):
        probs = untrained_small_model.predict_proba(triangle_graph)
        assert probs.sum() == pytest.approx(1.0)

    def test_predict_many(self, untrained_small_model, triangle_graph, path_graph):
        labels = untrained_small_model.predict_many([triangle_graph, path_graph])
        assert len(labels) == 2

    def test_empty_graph_prediction(self, untrained_small_model):
        empty = Graph()
        assert untrained_small_model.predict(empty) in (0, 1)

    def test_node_embeddings_shape(self, untrained_small_model, path_graph):
        embeddings = untrained_small_model.node_embeddings(path_graph)
        assert embeddings.shape == (5, untrained_small_model.hidden_dim)

    def test_node_embeddings_of_empty_graph(self, untrained_small_model):
        assert untrained_small_model.node_embeddings(Graph()).shape == (0, 8)

    def test_forward_matrices_matches_graph_forward(self, untrained_small_model, triangle_graph):
        logits_graph = untrained_small_model.predict_logits(triangle_graph)
        logits_matrix, _ = untrained_small_model.forward_matrices(
            triangle_graph.feature_matrix(2), triangle_graph.adjacency_matrix()
        )
        np.testing.assert_allclose(logits_graph, logits_matrix)

    def test_prediction_invariant_to_node_relabeling(self, untrained_small_model, triangle_graph):
        relabelled = triangle_graph.relabel({0: 5, 1: 6, 2: 7})
        np.testing.assert_allclose(
            untrained_small_model.predict_proba(triangle_graph),
            untrained_small_model.predict_proba(relabelled),
            atol=1e-9,
        )


class TestBackward:
    def test_backward_returns_feature_gradient(self, untrained_small_model, triangle_graph):
        logits, cache = untrained_small_model.forward(triangle_graph)
        grad = untrained_small_model.backward(cross_entropy_grad(logits, 0), cache)
        assert grad.shape == (3, 2)

    def test_end_to_end_gradient_matches_finite_differences(self, triangle_graph):
        model = GNNClassifier(feature_dim=2, num_classes=2, hidden_dim=4, num_layers=2, seed=3)
        label = 1
        logits, cache = model.forward(triangle_graph)
        model.zero_grads()
        model.backward(cross_entropy_grad(logits, label), cache)
        analytic = model.conv_layers[0].grads["weight"].copy()

        weight = model.conv_layers[0].params["weight"]
        numerical = np.zeros_like(weight)
        epsilon = 1e-5
        for index in np.ndindex(weight.shape):
            original = weight[index]
            weight[index] = original + epsilon
            plus = cross_entropy(model.predict_logits(triangle_graph), label)
            weight[index] = original - epsilon
            minus = cross_entropy(model.predict_logits(triangle_graph), label)
            weight[index] = original
            numerical[index] = (plus - minus) / (2 * epsilon)
        np.testing.assert_allclose(analytic, numerical, atol=1e-4)


class TestPersistence:
    def test_get_set_weights_round_trip(self, triangle_graph):
        model = GNNClassifier(feature_dim=2, num_classes=2, seed=0)
        other = GNNClassifier(feature_dim=2, num_classes=2, seed=99)
        other.set_weights(model.get_weights())
        np.testing.assert_allclose(
            model.predict_logits(triangle_graph), other.predict_logits(triangle_graph)
        )

    def test_set_weights_shape_mismatch_raises(self):
        model = GNNClassifier(feature_dim=2, num_classes=2, hidden_dim=8)
        other = GNNClassifier(feature_dim=2, num_classes=2, hidden_dim=4)
        with pytest.raises(ModelError):
            other.set_weights(model.get_weights())

    def test_set_weights_wrong_layer_count_raises(self):
        model = GNNClassifier(feature_dim=2, num_classes=2, num_layers=3)
        other = GNNClassifier(feature_dim=2, num_classes=2, num_layers=2)
        with pytest.raises(ModelError):
            other.set_weights(model.get_weights())

    def test_require_trained(self, untrained_small_model):
        with pytest.raises(NotFittedError):
            untrained_small_model.require_trained()


class TestBatchedInference:
    """Database-level batched inference vs the per-graph reference paths."""

    @pytest.fixture(autouse=True)
    def _force_batching(self, monkeypatch):
        """Drop the row-count gate so small fixtures hit the batched path."""
        import repro.gnn.models as models_module

        monkeypatch.setattr(models_module, "_BATCH_MIN_ROWS", 0)

    @pytest.mark.parametrize("conv", ["gcn", "gin", "sage"])
    @pytest.mark.parametrize("pooling", ["max", "mean", "sum"])
    def test_predict_batch_matches_per_graph(self, mut_database, conv, pooling):
        model = GNNClassifier(
            feature_dim=14, num_classes=2, hidden_dim=8, num_layers=2,
            conv=conv, pooling=pooling, seed=2,
        )
        graphs = mut_database.graphs[:6]
        batched = model.predict_batch(graphs)
        assert batched == [model.predict(graph) for graph in graphs]

    @pytest.mark.parametrize("conv", ["gcn", "gin", "sage"])
    def test_batch_logits_close_to_per_graph(self, mut_database, conv):
        model = GNNClassifier(
            feature_dim=14, num_classes=2, hidden_dim=8, num_layers=2, conv=conv, seed=2
        )
        graphs = mut_database.graphs[:5]
        batched = model.batch_logits(graphs)
        reference = np.stack([model.predict_logits(graph) for graph in graphs])
        np.testing.assert_allclose(batched, reference, atol=1e-9)

    def test_predict_proba_batch_rows_match(self, trained_mut_model, mut_database):
        graphs = mut_database.graphs[:5]
        batched = trained_mut_model.predict_proba_batch(graphs)
        for row, graph in enumerate(graphs):
            np.testing.assert_allclose(
                batched[row], trained_mut_model.predict_proba(graph), atol=1e-9
            )

    def test_batch_handles_empty_graph(self, trained_mut_model, mut_database):
        graphs = [mut_database[0], Graph(), mut_database[1]]
        batched = trained_mut_model.predict_batch(graphs)
        assert batched == [trained_mut_model.predict(graph) for graph in graphs]

    def test_predict_subsets_matches_per_subset(self, trained_mut_model, mut_database):
        graph = mut_database[0]
        node_sets = [
            frozenset(graph.nodes[:3]),
            frozenset(graph.nodes[2:8]),
            frozenset(graph.nodes),
        ]
        batched = trained_mut_model.predict_subsets(graph, node_sets)
        assert batched == [
            trained_mut_model.predict_node_subset(graph, nodes) for nodes in node_sets
        ]

    def test_predict_proba_subsets_close(self, trained_mut_model, mut_database):
        graph = mut_database[0]
        node_sets = [frozenset(graph.nodes[:4]), frozenset(graph.nodes[3:9])]
        batched = trained_mut_model.predict_proba_subsets(graph, node_sets)
        for row, nodes in enumerate(node_sets):
            np.testing.assert_allclose(
                batched[row], trained_mut_model.predict_proba_nodes(graph, nodes), atol=1e-9
            )

    def test_single_graph_falls_back_to_reference(self, trained_mut_model, mut_database):
        graph = mut_database[0]
        np.testing.assert_array_equal(
            trained_mut_model.batch_logits([graph]), [trained_mut_model.predict_logits(graph)]
        )
