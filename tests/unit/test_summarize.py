"""Unit tests for the Psum summarisation step."""

import pytest

from repro.core.summarize import pattern_weight, summarize_subgraphs
from repro.graphs import Graph, GraphPattern
from repro.matching import pattern_set_covers_nodes
from repro.mining import PatternGenerator


def molecule_like(repeats=2):
    """A graph with repeated N-O-O motifs hanging off a carbon chain."""
    graph = Graph()
    next_id = 0
    carbons = []
    for _ in range(repeats * 2):
        graph.add_node(next_id, "C")
        if carbons:
            graph.add_edge(carbons[-1], next_id)
        carbons.append(next_id)
        next_id += 1
    for index in range(repeats):
        carbon = carbons[index * 2]
        n, o1, o2 = next_id, next_id + 1, next_id + 2
        graph.add_node(n, "N")
        graph.add_node(o1, "O")
        graph.add_node(o2, "O")
        graph.add_edge(carbon, n)
        graph.add_edge(n, o1)
        graph.add_edge(n, o2)
        next_id += 3
    return graph


class TestPatternWeight:
    def test_zero_weight_when_pattern_covers_all_edges(self, triangle_graph):
        pattern = GraphPattern.from_graph(triangle_graph)
        assert pattern_weight(pattern, [triangle_graph]) == pytest.approx(0.0)

    def test_full_weight_when_pattern_covers_no_edges(self, triangle_graph):
        pattern = GraphPattern()
        pattern.add_node(0, "Z")
        assert pattern_weight(pattern, [triangle_graph]) == pytest.approx(1.0)

    def test_edgeless_subgraphs_have_zero_weight(self):
        graph = Graph()
        graph.add_node(0, "A")
        pattern = GraphPattern()
        pattern.add_node(0, "A")
        assert pattern_weight(pattern, [graph]) == 0.0


class TestSummarize:
    def test_covers_all_nodes(self):
        subgraphs = [molecule_like(2), molecule_like(1)]
        result = summarize_subgraphs(subgraphs)
        assert result.node_coverage == pytest.approx(1.0)
        assert pattern_set_covers_nodes(result.patterns, subgraphs)

    def test_result_counts_are_consistent(self):
        subgraphs = [molecule_like(1)]
        result = summarize_subgraphs(subgraphs)
        assert result.total_nodes == subgraphs[0].num_nodes()
        assert result.total_edges == subgraphs[0].num_edges()
        assert 0.0 <= result.edge_loss <= 1.0

    def test_patterns_are_smaller_than_subgraphs(self):
        subgraphs = [molecule_like(3)]
        result = summarize_subgraphs(subgraphs)
        pattern_size = sum(pattern.size() for pattern in result.patterns)
        subgraph_size = subgraphs[0].num_nodes() + subgraphs[0].num_edges()
        assert pattern_size < subgraph_size

    def test_empty_input(self):
        result = summarize_subgraphs([])
        assert result.patterns == []
        assert result.node_coverage == 1.0
        assert result.edge_loss == 0.0

    def test_empty_graphs_are_skipped(self):
        result = summarize_subgraphs([Graph()])
        assert result.patterns == []

    def test_fallback_singletons_guarantee_coverage(self):
        # A generator that can only produce candidates of size 1 from a graph
        # whose rare node type may be missed by the greedy cover.
        subgraphs = [molecule_like(1)]
        generator = PatternGenerator(max_pattern_size=1, max_candidates=1)
        result = summarize_subgraphs(subgraphs, pattern_generator=generator)
        assert result.node_coverage == pytest.approx(1.0)
        assert result.fallback_singletons >= 1

    def test_pattern_ids_assigned_sequentially(self):
        result = summarize_subgraphs([molecule_like(2)])
        assert [pattern.pattern_id for pattern in result.patterns] == list(
            range(len(result.patterns))
        )

    def test_pattern_weights_recorded(self):
        result = summarize_subgraphs([molecule_like(2)])
        assert set(result.pattern_weights) <= set(range(len(result.patterns)))
        assert all(0.0 <= weight <= 1.0 for weight in result.pattern_weights.values())
