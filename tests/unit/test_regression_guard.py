"""Unit tests for the benchmark regression guard's checking logic and the
benchmark harness's suite selection."""

import pytest

from benchmarks.regression_guard import GUARDED_METRICS, HOT_PATH_METRICS, check

BASELINE = {
    "influence_speedup_min": 3.0,
    "incremental_speedup_min": 5.0,
    "wal_ingest_ratio_min": 0.5,
    "views_identical": True,
    "incremental_identical": True,
    "wal_identical": True,
}


def full_report(**overrides):
    report = {
        "influence_speedup_min": 3.5,
        "incremental_speedup_min": 6.0,
        "wal_ingest_ratio_min": 1.0,
        "views_identical": True,
        "lazy_eager_identical": True,
        "stream_identical": True,
        "matching_identical": True,
        "mining_identical": True,
        "service_identical": True,
        "incremental_identical": True,
        "wal_identical": True,
        "sharded_identical": True,
        "chaos_recovery_ok": True,
        "sampled_bounds_ok": True,
        "sampled_subthreshold_identical": True,
    }
    report.update(overrides)
    return report


class TestCheck:
    def test_clean_report_passes(self):
        assert check(full_report(), BASELINE) == []

    def test_speedup_below_floor_fails(self):
        failures = check(full_report(influence_speedup_min=2.0), BASELINE)
        assert any("influence_speedup_min" in f for f in failures)

    def test_false_identity_flag_fails(self):
        failures = check(full_report(incremental_identical=False), BASELINE)
        assert any("recompute" in f for f in failures)

    def test_broken_stream_identity_fails(self):
        failures = check(full_report(stream_identical=False), BASELINE)
        assert any("StreamGVEX" in f for f in failures)

    def test_stream_suite_report_guards_its_own_flag(self):
        """`--suite stream` + `--metrics stream_explain_label_speedup_min`
        must validate stream_identical and nothing else."""
        baseline = {**BASELINE, "stream_explain_label_speedup_min": 3.0}
        partial = {
            "stream_explain_label_speedup_min": 3.4,
            "stream_identical": True,
        }
        metrics = ("stream_explain_label_speedup_min",)
        assert check(partial, baseline, metrics=metrics) == []
        del partial["stream_identical"]
        failures = check(partial, baseline, metrics=metrics)
        assert any("stream_identical" in f for f in failures)

    def test_broken_wal_replay_identity_fails(self):
        failures = check(full_report(wal_identical=False), BASELINE)
        assert any("write-ahead log" in f for f in failures)

    def test_wal_ratio_below_floor_fails(self):
        failures = check(full_report(wal_ingest_ratio_min=0.2), BASELINE)
        assert any("wal_ingest_ratio_min" in f for f in failures)

    def test_missing_identity_flag_fails_for_selected_metric(self):
        """A report that silently stops emitting a required flag must FAIL,
        not pass — the guard's whole point."""
        report = full_report()
        del report["views_identical"]
        failures = check(report, BASELINE)
        assert any("views_identical" in f for f in failures)

    def test_partial_suite_guards_only_its_metrics(self):
        partial = {
            "incremental_speedup_min": 6.0,
            "incremental_identical": True,
        }
        assert check(partial, BASELINE, metrics=("incremental_speedup_min",)) == []
        # ... but the full selection still notices everything missing.
        failures = check(partial, BASELINE, metrics=GUARDED_METRICS)
        assert any("views_identical" in f for f in failures)
        assert any("influence_speedup_min" in f for f in failures)

    def test_missing_metric_with_baseline_fails(self):
        report = full_report()
        del report["incremental_speedup_min"]
        failures = check(report, BASELINE)
        assert any("incremental_speedup_min" in f for f in failures)

    def test_hot_paths_report_passes_default_cli_selection(self):
        """The CLI default (HOT_PATH_METRICS) must not demand bench_load.py's
        metric/flag from a bench_hot_paths.py report, even though the
        committed baseline records load_scaling_min for the load job."""
        baseline = {**BASELINE, "load_scaling_min": 0.6}
        report = full_report()  # bench_hot_paths.py never emits these two:
        del report["sharded_identical"]
        assert check(report, baseline, metrics=HOT_PATH_METRICS) == []
        # ... while the full selection still insists on them.
        failures = check(report, baseline, metrics=GUARDED_METRICS)
        assert any("sharded_identical" in f for f in failures)
        assert any("load_scaling_min" in f for f in failures)

    def test_hot_path_metrics_is_guarded_minus_scoped_suites(self):
        """The default selection covers exactly what an unscoped full-suite
        bench_hot_paths.py report emits: not bench_load.py's metrics and not
        the `--suite sampled` pair."""
        assert set(HOT_PATH_METRICS) == set(GUARDED_METRICS) - {
            "load_scaling_min",
            "chaos_recovery",
            "sampled_speedup_min",
            "sampled_quality_min",
        }

    def test_chaos_recovery_is_flag_only(self):
        """chaos_recovery has no numeric side: a report with the flag true
        passes even though neither side carries a 'chaos_recovery' number."""
        baseline = {"chaos_recovery_ok": True}
        report = {"chaos_recovery_ok": True}
        assert check(report, baseline, metrics=("chaos_recovery",)) == []

    def test_failed_chaos_recovery_fails(self):
        failures = check(
            {"chaos_recovery_ok": False}, {}, metrics=("chaos_recovery",)
        )
        assert any("no longer recovers" in f for f in failures)

    def test_missing_chaos_flag_fails_when_selected(self):
        failures = check({}, {}, metrics=("chaos_recovery",))
        assert any("chaos_recovery_ok" in f for f in failures)

    def test_hot_paths_selection_ignores_chaos(self):
        """A bench_hot_paths.py report never emits chaos_recovery_ok; the
        default CLI selection must not demand it."""
        report = full_report()
        del report["chaos_recovery_ok"]
        assert check(report, BASELINE, metrics=HOT_PATH_METRICS) == []


class TestSampledSuiteGuard:
    SAMPLED_BASELINE = {
        "sampled_speedup_min": 5.0,
        "sampled_quality_min": 0.97,
    }
    SAMPLED_METRICS = ("sampled_speedup_min", "sampled_quality_min")

    def sampled_report(self, **overrides):
        report = {
            "sampled_speedup_min": 6.3,
            "sampled_quality_min": 0.98,
            "sampled_bounds_ok": True,
            "sampled_subthreshold_identical": True,
        }
        report.update(overrides)
        return report

    def test_clean_sampled_report_passes(self):
        assert (
            check(self.sampled_report(), self.SAMPLED_BASELINE, metrics=self.SAMPLED_METRICS)
            == []
        )

    def test_speedup_below_floor_fails(self):
        failures = check(
            self.sampled_report(sampled_speedup_min=2.0),
            self.SAMPLED_BASELINE,
            metrics=self.SAMPLED_METRICS,
        )
        assert any("sampled_speedup_min" in f for f in failures)

    def test_quality_below_floor_fails(self):
        failures = check(
            self.sampled_report(sampled_quality_min=0.5),
            self.SAMPLED_BASELINE,
            metrics=self.SAMPLED_METRICS,
        )
        assert any("sampled_quality_min" in f for f in failures)

    def test_bound_violation_fails(self):
        failures = check(
            self.sampled_report(sampled_bounds_ok=False),
            self.SAMPLED_BASELINE,
            metrics=self.SAMPLED_METRICS,
        )
        assert any("Hoeffding bound" in f for f in failures)

    def test_lost_subthreshold_identity_fails(self):
        failures = check(
            self.sampled_report(sampled_subthreshold_identical=False),
            self.SAMPLED_BASELINE,
            metrics=self.SAMPLED_METRICS,
        )
        assert any("route to the exact analysis" in f for f in failures)

    def test_full_suite_report_is_not_asked_for_sampled_metrics(self):
        assert check(full_report(), BASELINE, metrics=HOT_PATH_METRICS) == []


class TestSuiteSelection:
    def test_unknown_suite_raises_before_any_work(self):
        from benchmarks.bench_hot_paths import run_benchmark

        with pytest.raises(ValueError, match="unknown benchmark suite 'bogus'"):
            run_benchmark(suite="bogus")

    def test_unknown_suite_cli_exits_with_usage_error(self, capsys):
        from benchmarks.bench_hot_paths import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--suite", "bogus"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_suite_names_are_published(self):
        from benchmarks.bench_hot_paths import SUITES

        assert set(SUITES) == {"full", "incremental", "wal", "stream", "sampled"}
