"""Round-trip and schema-stability tests for `repro.api.serialize`.

The acceptance criterion is *lossless* JSON persistence: node sets, labels,
metric floats, pattern structure, and provenance must survive
``from_dict(to_dict(x))`` exactly — across tier-1 datasets, both sparse and
legacy backends, and both GVEX algorithms.  A committed golden file pins the
on-disk schema so accidental layout changes fail loudly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import (
    SCHEMA_VERSION,
    ExplanationResult,
    Provenance,
    create_explainer,
    explanation_schema,
    load_artifact,
    result_from_dict,
    result_to_dict,
    save_artifact,
    validate_against_schema,
    view_from_dict,
    view_set_from_dict,
    view_set_to_dict,
    view_to_dict,
    views_equal,
)
from repro.core import Configuration, ExplanationSubgraph, ExplanationView, ExplanationViewSet
from repro.exceptions import ExplanationError
from repro.graphs import Graph, GraphPattern
from repro.graphs.sparse import sparse_backend

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_view.json"


def build_reference_view() -> ExplanationView:
    """A deterministic, hand-built view (no model, no randomness)."""
    source = Graph(graph_id=7)
    source.add_node(0, "C", [1.0, 0.0])
    source.add_node(1, "N", [0.0, 1.0])
    source.add_node(2, "O", [0.5, 0.5])
    source.add_node(3, "C", [1.0, 0.0])
    source.add_edge(0, 1, "single")
    source.add_edge(1, 2, "double")
    source.add_edge(2, 3, "single")

    pattern = GraphPattern(pattern_id=0)
    pattern.add_node(0, "N")
    pattern.add_node(1, "O")
    pattern.add_edge(0, 1, "double")

    subgraph = ExplanationSubgraph(
        source_graph=source,
        nodes={1, 2},
        label=1,
        explainability=0.625,
        consistent=True,
        counterfactual=False,
    )
    return ExplanationView(
        label=1,
        patterns=[pattern],
        subgraphs=[subgraph],
        explainability=0.625,
        metadata={"algorithm": "reference", "runtime_seconds": 0.125},
    )


def build_reference_result() -> ExplanationResult:
    return ExplanationResult(
        view=build_reference_view(),
        provenance=Provenance(
            algorithm="reference",
            label=1,
            config_fingerprint="0" * 16,
            request_fingerprint="f" * 16,
            runtime_seconds=0.125,
            backend="sparse",
            num_graphs=1,
            dataset="GOLD",
        ),
    )


@pytest.fixture(scope="module")
def generated_views(trained_mut_model, mut_database):
    """Views from both algorithms on both backends (tier-1 MUT dataset)."""
    graphs = mut_database.graphs[:4]
    label = trained_mut_model.predict(graphs[0])
    config = Configuration().with_default_bound(0, 5)
    views = {}
    for backend in (True, False):
        with sparse_backend(backend):
            for algorithm in ("approx", "stream"):
                explainer = create_explainer(algorithm, trained_mut_model, config=config)
                views[(algorithm, backend)] = explainer.explain_label(graphs, label)
    return views


class TestRoundTrip:
    @pytest.mark.parametrize("algorithm", ["approx", "stream"])
    @pytest.mark.parametrize("backend", [True, False], ids=["sparse", "legacy"])
    def test_view_round_trip_is_lossless(self, generated_views, algorithm, backend):
        view = generated_views[(algorithm, backend)]
        restored = view_from_dict(view_to_dict(view))
        assert views_equal(view, restored)
        # Node-set and metric identity, asserted explicitly (the acceptance
        # criterion), not only through the composite equality helper.
        assert [sorted(s.nodes) for s in restored.subgraphs] == [
            sorted(s.nodes) for s in view.subgraphs
        ]
        assert restored.explainability == view.explainability
        assert [s.explainability for s in restored.subgraphs] == [
            s.explainability for s in view.subgraphs
        ]

    def test_round_trip_through_actual_json_text(self, generated_views):
        view = generated_views[("approx", True)]
        payload = json.loads(json.dumps(view_to_dict(view)))
        assert views_equal(view, view_from_dict(payload))

    def test_reference_view_round_trips(self):
        view = build_reference_view()
        assert views_equal(view, view_from_dict(view_to_dict(view)))

    def test_view_set_round_trip(self, generated_views):
        views = ExplanationViewSet([generated_views[("approx", True)]])
        restored = view_set_from_dict(view_set_to_dict(views))
        assert restored.labels() == views.labels()
        for label in views.labels():
            assert views_equal(views.view_for(label), restored.view_for(label))

    def test_result_round_trip_preserves_provenance(self):
        result = build_reference_result()
        restored = result_from_dict(result_to_dict(result))
        assert restored.provenance == result.provenance
        assert views_equal(result.view, restored.view)

    def test_source_graphs_resolve_from_a_database(self, generated_views, mut_database):
        view = generated_views[("approx", True)]
        payload = view_to_dict(view, include_source=False)
        graphs_by_id = {graph.graph_id: graph for graph in mut_database.graphs}
        restored = view_from_dict(payload, graphs_by_id=graphs_by_id)
        for original, loaded in zip(view.subgraphs, restored.subgraphs):
            assert loaded.source_graph is original.source_graph

    def test_missing_source_graph_is_an_actionable_error(self):
        payload = view_to_dict(build_reference_view(), include_source=False)
        with pytest.raises(ExplanationError, match="neither embedded nor resolvable"):
            view_from_dict(payload)


class TestArtifactFiles:
    def test_save_load_every_kind(self, tmp_path):
        view = build_reference_view()
        result = build_reference_result()
        artifacts = {
            "view.json": view,
            "set.json": ExplanationViewSet([view]),
            "result.json": result,
            "results.json": [result],
        }
        for filename, artifact in artifacts.items():
            path = save_artifact(artifact, tmp_path / filename)
            loaded = load_artifact(path)
            envelope = json.loads(path.read_text())
            assert envelope["schema_version"] == SCHEMA_VERSION
            assert not validate_against_schema(envelope, explanation_schema())
            assert type(loaded).__name__ in (
                "ExplanationView",
                "ExplanationViewSet",
                "ExplanationResult",
                "list",
            )

    def test_unknown_schema_version_rejected(self, tmp_path):
        path = save_artifact(build_reference_view(), tmp_path / "v.json")
        envelope = json.loads(path.read_text())
        envelope["schema_version"] = 999
        path.write_text(json.dumps(envelope))
        with pytest.raises(ExplanationError, match="schema version 999"):
            load_artifact(path)

    def test_unserialisable_object_rejected(self, tmp_path):
        with pytest.raises(ExplanationError, match="cannot serialise"):
            save_artifact({"not": "a view"}, tmp_path / "bad.json")  # type: ignore[arg-type]


class TestSchema:
    def test_generated_results_validate(self, generated_views):
        result = ExplanationResult(
            view=generated_views[("stream", True)],
            provenance=build_reference_result().provenance,
        )
        envelope = {
            "schema_version": SCHEMA_VERSION,
            "kind": "explanation_result",
            "payload": result_to_dict(result),
        }
        assert validate_against_schema(envelope, explanation_schema()) == []

    def test_validator_reports_missing_keys(self):
        envelope = {"schema_version": SCHEMA_VERSION, "kind": "explanation_view"}
        errors = validate_against_schema(envelope, explanation_schema())
        assert any("payload" in error for error in errors)

    def test_validator_reports_type_mismatches(self):
        envelope = {
            "schema_version": "1",
            "kind": "explanation_view",
            "payload": {"label": 0, "patterns": [], "subgraphs": []},
        }
        errors = validate_against_schema(envelope, explanation_schema())
        assert any("schema_version" in error for error in errors)


class TestGoldenFile:
    """Schema stability: the committed golden envelope must never drift."""

    def test_golden_file_matches_the_current_serialiser(self):
        envelope = {
            "schema_version": SCHEMA_VERSION,
            "kind": "explanation_result",
            "payload": result_to_dict(build_reference_result()),
        }
        committed = json.loads(GOLDEN_PATH.read_text())
        assert envelope == committed, (
            "serialised layout drifted from tests/data/golden_view.json; if the "
            "change is intentional, bump SCHEMA_VERSION, keep a loader for the "
            "old version, and regenerate the golden file"
        )

    def test_golden_file_validates_against_the_published_schema(self):
        committed = json.loads(GOLDEN_PATH.read_text())
        assert validate_against_schema(committed, explanation_schema()) == []

    def test_golden_file_still_loads(self):
        loaded = load_artifact(GOLDEN_PATH)
        assert isinstance(loaded, ExplanationResult)
        assert sorted(loaded.view.subgraphs[0].nodes) == [1, 2]
        assert loaded.view.explainability == 0.625


GOLDEN_DELTA_PATH = Path(__file__).parent.parent / "data" / "golden_delta.json"


def build_reference_delta():
    """A deterministic, hand-built add-delta (same source graph as the view)."""
    from repro.graphs.database import DatabaseDelta

    source = Graph(graph_id=7)
    source.add_node(0, "C", [1.0, 0.0])
    source.add_node(1, "N", [0.0, 1.0])
    source.add_node(2, "O", [0.5, 0.5])
    source.add_node(3, "C", [1.0, 0.0])
    source.add_edge(0, 1, "single")
    source.add_edge(1, 2, "double")
    source.add_edge(2, 3, "single")
    return DatabaseDelta(
        kind="add", graph_id=7, version=1, label=1, old_label=None, graph=source
    )


class TestDeltaCodec:
    """Lossless round-trips for the `database_delta` envelope (WAL + /v1/deltas)."""

    def test_add_delta_round_trips_losslessly(self):
        from repro.api import delta_from_dict, delta_to_dict

        delta = build_reference_delta()
        restored = delta_from_dict(json.loads(json.dumps(delta_to_dict(delta))))
        assert restored.kind == "add"
        assert restored.graph_id == 7
        assert restored.version == 1
        assert restored.label == 1
        assert restored.old_label is None
        assert restored.graph.to_dict() == delta.graph.to_dict()

    def test_remove_and_relabel_round_trip_without_a_graph(self):
        from repro.api import delta_from_dict, delta_to_dict
        from repro.graphs.database import DatabaseDelta

        for delta in (
            DatabaseDelta(kind="remove", graph_id=3, version=9, label=None, old_label=0),
            DatabaseDelta(kind="relabel", graph_id=3, version=10, label=1, old_label=0),
        ):
            restored = delta_from_dict(delta_to_dict(delta))
            assert restored.kind == delta.kind
            assert restored.graph_id == delta.graph_id
            assert restored.version == delta.version
            assert restored.label == delta.label
            assert restored.old_label == delta.old_label
            assert restored.graph is None

    def test_live_database_deltas_serialise(self, mut_database):
        from repro.api import delta_from_dict, delta_to_dict, delta_schema
        from repro.graphs import GraphDatabase

        database = GraphDatabase.from_dict(mut_database.to_dict())
        graph = Graph.from_dict(list(database)[0].to_dict())
        graph.graph_id = 900
        database.add_graph(graph, label=1)
        database.relabel_graph(900, 0)
        database.remove_graph(900)
        for delta in database.deltas_since(mut_database.version):
            envelope = delta_to_dict(delta)
            assert validate_against_schema(envelope, delta_schema()) == []
            restored = delta_from_dict(envelope)
            assert restored.version == delta.version

    def test_wrong_kind_is_refused(self):
        from repro.api import delta_from_dict, delta_to_dict

        envelope = delta_to_dict(build_reference_delta())
        envelope["kind"] = "explanation_view"
        with pytest.raises(ExplanationError, match="database_delta"):
            delta_from_dict(envelope)

    def test_wrong_schema_version_is_refused(self):
        from repro.api import delta_from_dict, delta_to_dict

        envelope = delta_to_dict(build_reference_delta())
        envelope["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ExplanationError, match="schema"):
            delta_from_dict(envelope)


class TestGoldenDeltaFile:
    """Stability of the delta envelope: the committed golden file never drifts."""

    def test_golden_delta_matches_the_current_serialiser(self):
        from repro.api import delta_to_dict

        envelope = delta_to_dict(build_reference_delta())
        committed = json.loads(GOLDEN_DELTA_PATH.read_text())
        assert envelope == committed, (
            "delta layout drifted from tests/data/golden_delta.json; the WAL and "
            "the /v1/deltas replication stream both persist this envelope — if "
            "the change is intentional, bump SCHEMA_VERSION, keep a loader for "
            "the old version, and regenerate the golden file"
        )

    def test_golden_delta_validates_against_the_published_schema(self):
        from repro.api import delta_schema

        committed = json.loads(GOLDEN_DELTA_PATH.read_text())
        assert validate_against_schema(committed, delta_schema()) == []

    def test_golden_delta_still_loads(self):
        from repro.api import delta_from_dict

        restored = delta_from_dict(json.loads(GOLDEN_DELTA_PATH.read_text()))
        assert restored.kind == "add"
        assert len(restored.graph.nodes) == 4
        assert restored.graph.graph_id == 7
