"""Unit tests for delta-driven incremental view maintenance.

The load-bearing property: a :class:`ViewMaintainer` attached to a mutable
database produces, after any sequence of adds / removals / relabels, views
*identical* to a full ``StreamGVEX`` recompute over the database's current
contents (node sets, pattern keys, explainability) — the incremental path
inherits the anytime quality bound with zero slack.
"""

import pytest

from repro.api import ViewStore
from repro.core import Configuration, ViewMaintainer
from repro.core.streaming import StreamGVEX
from repro.exceptions import ExplanationError
from repro.gnn import GNNClassifier
from repro.graphs import GraphDatabase


def view_signature(view):
    """Node sets + pattern keys + objective — what recompute identity means."""
    return (
        [sorted(subgraph.nodes) for subgraph in view.subgraphs],
        sorted(pattern.canonical_key() for pattern in view.patterns),
        round(view.explainability, 12),
    )


def assert_matches_recompute(maintainer, database, model, config, batch_size=5):
    reference = StreamGVEX(model, config, batch_size=batch_size)
    for label in maintainer.maintained_labels():
        recomputed = reference.explain_label(database.graphs, label)
        assert view_signature(maintainer.view_for(label)) == view_signature(recomputed)


@pytest.fixture
def stream_config():
    return Configuration(theta=0.08).with_default_bound(0, 8)


@pytest.fixture(scope="module")
def mut_pool(mut_database):
    """Private copies of the session graphs: these tests warm sparse caches
    and hand graphs to a mutable database, which must never leak into the
    session-scoped fixtures other test modules read."""
    return [graph.copy() for graph in mut_database.graphs]


@pytest.fixture
def live_database(mut_database, mut_pool):
    """A private mutable database over copied graphs (first 10)."""
    database = GraphDatabase("live")
    for graph, label in zip(mut_pool[:10], mut_database.labels[:10]):
        database.add_graph(graph, label)
    return database


@pytest.fixture
def maintainer(trained_mut_model, stream_config, live_database):
    return ViewMaintainer(trained_mut_model, stream_config, batch_size=5).attach(
        live_database
    )


class TestReplayEquivalence:
    def test_attach_replay_matches_recompute(
        self, maintainer, live_database, trained_mut_model, stream_config
    ):
        assert maintainer.maintained_labels()
        assert_matches_recompute(
            maintainer, live_database, trained_mut_model, stream_config
        )

    def test_adds_after_attach_match_recompute(
        self, maintainer, live_database, mut_database, mut_pool, trained_mut_model, stream_config
    ):
        for graph, label in zip(mut_pool[10:13], mut_database.labels[10:13]):
            live_database.add_graph(graph, label)
        assert len(live_database) == 13
        assert_matches_recompute(
            maintainer, live_database, trained_mut_model, stream_config
        )

    def test_removal_matches_recompute(
        self, maintainer, live_database, trained_mut_model, stream_config
    ):
        streamed_before = maintainer.graphs_streamed
        live_database.remove_graph(live_database.graphs[3].graph_id)
        live_database.remove_graph(live_database.graphs[0].graph_id)
        # Removal repair never re-streams surviving graphs.
        assert maintainer.graphs_streamed == streamed_before
        assert maintainer.rows_retracted == 2
        assert_matches_recompute(
            maintainer, live_database, trained_mut_model, stream_config
        )

    def test_remove_then_readd_matches_recompute(
        self, maintainer, live_database, trained_mut_model, stream_config
    ):
        graph = live_database.graphs[2]
        label = live_database.label_of(2)
        live_database.remove_graph(graph.graph_id)
        live_database.add_graph(graph, label)
        assert_matches_recompute(
            maintainer, live_database, trained_mut_model, stream_config
        )

    def test_streaming_cost_is_proportional_to_the_delta(
        self, maintainer, live_database, mut_database, mut_pool
    ):
        assert maintainer.graphs_streamed == 10
        live_database.add_graph(mut_pool[10], mut_database.labels[10])
        assert maintainer.graphs_streamed == 11  # one pass for one arrival


class TestRetractionRepair:
    def test_orphaned_patterns_are_dropped_from_the_view(self, maintainer, live_database):
        label = maintainer.maintained_labels()[0]
        keys_before = {
            pattern.canonical_key() for pattern in maintainer.view_for(label).patterns
        }
        # Remove every graph of the label group but one: any pattern only
        # that prefix witnessed must disappear from the reassembled view.
        rows = [
            graph.graph_id
            for graph in live_database.graphs
            if maintainer.model.predict(graph) == label
        ]
        for graph_id in rows[1:]:
            live_database.remove_graph(graph_id)
        keys_after = {
            pattern.canonical_key() for pattern in maintainer.view_for(label).patterns
        }
        assert keys_after <= keys_before
        report = maintainer.verify_label(label)
        assert report["violations"] == []

    def test_retract_reports_orphans(self, maintainer, live_database):
        graph_id = live_database.graphs[0].graph_id
        report = maintainer.retract(graph_id)
        assert report is not None
        assert report["orphaned_patterns"] >= 0
        assert maintainer.retract(graph_id) is None  # already gone

    def test_verify_label_covers_every_row(self, maintainer):
        for label in maintainer.maintained_labels():
            report = maintainer.verify_label(label)
            assert report["violations"] == []
            assert report["rows_checked"] > 0


class TestRelabel:
    def test_predicted_mode_relabel_is_bookkeeping_only(self, maintainer, live_database):
        streamed = maintainer.graphs_streamed
        view_before = view_signature(maintainer.view_for(maintainer.maintained_labels()[0]))
        live_database.set_label(0, 1 - (live_database.label_of(0) or 0))
        assert maintainer.graphs_streamed == streamed  # nothing re-streamed
        assert (
            view_signature(maintainer.view_for(maintainer.maintained_labels()[0]))
            == view_before
        )

    def test_stored_mode_relabel_moves_between_groups(
        self, trained_mut_model, stream_config, live_database
    ):
        maintainer = ViewMaintainer(
            trained_mut_model, stream_config, batch_size=5, label_source="stored"
        ).attach(live_database)
        graph = live_database.graphs[0]
        old_label = live_database.label_of(0)
        new_label = 1 - (old_label or 0)
        in_old = any(
            sub.source_graph.graph_id == graph.graph_id
            for sub in maintainer.view_for(old_label).subgraphs
        )
        live_database.relabel_graph(graph.graph_id, new_label)
        assert all(
            sub.source_graph.graph_id != graph.graph_id
            for sub in maintainer.view_for(old_label).subgraphs
        )
        moved = any(
            sub.source_graph.graph_id == graph.graph_id
            for sub in maintainer.view_for(new_label).subgraphs
        )
        # The graph left the old group; it joins the new one whenever its
        # explanation met the bound under the new label.
        assert in_old or not moved


class TestRestrictionAndLifecycle:
    def test_labels_restriction_skips_other_groups(
        self, trained_mut_model, stream_config, live_database
    ):
        label = trained_mut_model.predict(live_database.graphs[0])
        maintainer = ViewMaintainer(
            trained_mut_model, stream_config, batch_size=5, labels=(label,)
        ).attach(live_database)
        assert maintainer.maintained_labels() == [label]
        group = sum(
            1
            for graph in live_database.graphs
            if trained_mut_model.predict(graph) == label
        )
        assert maintainer.graphs_streamed == group

    def test_detach_stops_tracking(self, maintainer, live_database, mut_database, mut_pool):
        maintainer.detach()
        streamed = maintainer.graphs_streamed
        live_database.add_graph(mut_pool[12], mut_database.labels[12])
        assert maintainer.graphs_streamed == streamed

    def test_double_attach_rejected(self, maintainer, live_database):
        with pytest.raises(ExplanationError):
            maintainer.attach(live_database)

    def test_model_or_processor_required(self):
        with pytest.raises(ExplanationError):
            ViewMaintainer()

    def test_invalid_label_source_rejected(self, trained_mut_model):
        with pytest.raises(ExplanationError):
            ViewMaintainer(trained_mut_model, label_source="oracle")


class TestSnapshot:
    def test_snapshot_round_trip_through_view_store(
        self, tmp_path, maintainer, live_database, trained_mut_model, stream_config
    ):
        store = ViewStore(capacity=4, spill_dir=tmp_path)
        store.put_snapshot("maintainer", maintainer.snapshot())

        # A brand-new store over the same spill dir reloads it from disk.
        reloaded = ViewStore(capacity=4, spill_dir=tmp_path).get_snapshot("maintainer")
        assert reloaded is not None
        restored = ViewMaintainer.from_snapshot(
            reloaded, trained_mut_model, live_database, config=stream_config
        )
        assert restored.graphs_streamed == 0  # nothing re-streamed
        for label in maintainer.maintained_labels():
            assert view_signature(restored.view_for(label)) == view_signature(
                maintainer.view_for(label)
            )

    def test_snapshot_files_do_not_pollute_result_keys(self, tmp_path, maintainer):
        store = ViewStore(capacity=4, spill_dir=tmp_path)
        store.put_snapshot("maintainer", maintainer.snapshot())
        assert store.keys() == []

    def test_restore_streams_only_missing_graphs(
        self, maintainer, live_database, mut_database, mut_pool, trained_mut_model, stream_config
    ):
        payload = maintainer.snapshot()
        live_database.remove_graph(live_database.graphs[1].graph_id)
        live_database.add_graph(mut_pool[10], mut_database.labels[10])
        maintainer.detach()
        restored = ViewMaintainer.from_snapshot(
            payload, trained_mut_model, live_database, config=stream_config
        )
        assert restored.graphs_streamed == 1  # only the new arrival
        assert_matches_recompute(
            restored, live_database, trained_mut_model, stream_config
        )

    def test_config_mismatch_refuses_restore(
        self, maintainer, live_database, trained_mut_model
    ):
        payload = maintainer.snapshot()
        other = Configuration(theta=0.3).with_default_bound(0, 4)
        with pytest.raises(ExplanationError, match="configuration"):
            ViewMaintainer.from_snapshot(
                payload, trained_mut_model, live_database, config=other
            )

    def test_snapshot_is_json_serialisable(self, maintainer):
        import json

        payload = json.loads(json.dumps(maintainer.snapshot()))
        assert payload["kind"] == "view_maintainer_snapshot"
        assert len(payload["rows"]) == maintainer.stats()["rows"]


class TestEquivalenceOnSecondDataset:
    def test_red_database_equivalence(self, red_database):
        """Tier-1 RED dataset: maintained views == recompute (an untrained
        model's predictions are arbitrary but deterministic, which is all
        equivalence needs)."""
        stats = red_database.statistics()
        model = GNNClassifier(
            feature_dim=max(1, int(stats["feature_dim"])),
            num_classes=2,
            hidden_dim=8,
            num_layers=2,
            seed=11,
        )
        config = Configuration(theta=0.1).with_default_bound(0, 6)
        pool = [graph.copy() for graph in red_database.graphs]  # keep session graphs cold
        database = GraphDatabase("red-live")
        for graph, label in zip(pool[:6], red_database.labels[:6]):
            database.add_graph(graph, label)
        maintainer = ViewMaintainer(model, config, batch_size=4).attach(database)
        for graph, label in zip(pool[6:9], red_database.labels[6:9]):
            database.add_graph(graph, label)
        database.remove_graph(database.graphs[2].graph_id)
        assert_matches_recompute(maintainer, database, model, config, batch_size=4)
