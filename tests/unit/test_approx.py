"""Unit tests for ApproxGVEX (Algorithm 1)."""

import pytest

from repro.core import Configuration, verify_view
from repro.core.approx import ApproxGVEX
from repro.exceptions import ExplanationError
from repro.graphs import Graph


@pytest.fixture
def explainer(trained_mut_model):
    config = Configuration(theta=0.08).with_default_bound(0, 8)
    return ApproxGVEX(trained_mut_model, config)


class TestExplainGraph:
    def test_respects_upper_bound(self, explainer, mut_database):
        graph = mut_database[1]
        explanation = explainer.explain_graph(graph)
        assert explanation is not None
        assert len(explanation.nodes) <= 8

    def test_respects_lower_bound(self, trained_mut_model, mut_database):
        config = Configuration().with_default_bound(5, 8)
        explainer = ApproxGVEX(trained_mut_model, config)
        explanation = explainer.explain_graph(mut_database[1])
        if explanation is not None:
            assert len(explanation.nodes) >= 5

    def test_nodes_belong_to_source_graph(self, explainer, mut_database):
        graph = mut_database[2]
        explanation = explainer.explain_graph(graph)
        assert explanation.nodes <= set(graph.nodes)

    def test_empty_graph_returns_none(self, explainer):
        assert explainer.explain_graph(Graph()) is None

    def test_label_defaults_to_model_prediction(self, explainer, trained_mut_model, mut_database):
        graph = mut_database[3]
        explanation = explainer.explain_graph(graph)
        assert explanation.label == trained_mut_model.predict(graph)

    def test_explainability_recorded_positive(self, explainer, mut_database):
        explanation = explainer.explain_graph(mut_database[1])
        assert explanation.explainability > 0.0

    def test_unsatisfiable_lower_bound_returns_none(self, trained_mut_model, mut_database):
        graph = mut_database[0]
        config = Configuration().with_default_bound(graph.num_nodes() + 5, graph.num_nodes() + 10)
        explainer = ApproxGVEX(trained_mut_model, config)
        assert explainer.explain_graph(graph) is None

    def test_verification_mode_none_skips_model_checks(self, trained_mut_model, mut_database):
        config = Configuration(verification_mode="none").with_default_bound(0, 6)
        explainer = ApproxGVEX(trained_mut_model, config)
        explanation = explainer.explain_graph(mut_database[1])
        assert explanation is not None
        assert len(explanation.nodes) == 6

    def test_strict_mode_runs(self, trained_mut_model, mut_database):
        config = Configuration(verification_mode="strict").with_default_bound(0, 6)
        explainer = ApproxGVEX(trained_mut_model, config)
        # Strict verification may legitimately fail to find an explanation;
        # the call must still terminate and return either None or a valid set.
        explanation = explainer.explain_graph(mut_database[1])
        assert explanation is None or explanation.nodes


class TestExplainLabel:
    def test_view_structure(self, explainer, mut_database, trained_mut_model):
        label = 1
        view = explainer.explain_label(mut_database.graphs, label)
        assert view.label == label
        predicted = {
            graph.graph_id
            for graph in mut_database.graphs
            if trained_mut_model.predict(graph) == label
        }
        assert {sub.source_graph.graph_id for sub in view.subgraphs} <= predicted
        assert view.patterns

    def test_patterns_cover_subgraph_nodes(self, explainer, mut_database, trained_mut_model):
        view = explainer.explain_label(mut_database.graphs, 1)
        config = explainer.config
        report = verify_view(view, trained_mut_model, config)
        assert report.is_graph_view
        assert report.properly_covers

    def test_metadata_recorded(self, explainer, mut_database):
        view = explainer.explain_label(mut_database.graphs, 0)
        assert view.metadata["algorithm"] == "ApproxGVEX"
        assert "edge_loss" in view.metadata
        assert view.metadata["runtime_seconds"] >= 0.0

    def test_graphs_of_other_label_ignored(self, explainer, mut_database, trained_mut_model):
        view = explainer.explain_label(mut_database.graphs, 0)
        for subgraph in view.subgraphs:
            assert trained_mut_model.predict(subgraph.source_graph) == 0


class TestExplainAll:
    def test_views_for_all_labels(self, explainer, mut_database):
        views = explainer.explain(mut_database)
        assert set(views.labels()) <= {0, 1}
        assert len(views) >= 1

    def test_total_explainability_is_sum(self, explainer, mut_database):
        views = explainer.explain(mut_database)
        assert views.total_explainability() == pytest.approx(
            sum(view.explainability for view in views)
        )

    def test_empty_collection_rejected(self, explainer):
        with pytest.raises(ExplanationError):
            explainer.explain([])

    def test_explain_instance_always_returns_subgraph(self, explainer, mut_database):
        explanation = explainer.explain_instance(mut_database[0])
        assert explanation.nodes
        assert explanation.consistent is not None
