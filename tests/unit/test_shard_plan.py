"""Deterministic placement (`repro.api.sharding.plan`).

The whole sharded tier hangs off placement being a pure function of the
stable graph id: the router, every worker, and every respawn must re-derive
the same graph→shard mapping with zero coordination.
"""

from __future__ import annotations

import pytest

from repro.api.sharding import ShardPlan
from repro.exceptions import ExplanationError
from repro.graphs import GraphDatabase


class TestShardPlan:
    def test_rejects_non_positive_shard_counts(self):
        for bad in (0, -1):
            with pytest.raises(ExplanationError):
                ShardPlan(bad)

    def test_placement_is_deterministic_and_total(self):
        plan = ShardPlan(4)
        first = [plan.shard_of(graph_id) for graph_id in range(200)]
        second = [plan.shard_of(graph_id) for graph_id in range(200)]
        assert first == second
        assert set(first) == {0, 1, 2, 3}  # every shard receives graphs

    def test_single_shard_owns_everything(self):
        plan = ShardPlan(1)
        assert {plan.shard_of(graph_id) for graph_id in range(50)} == {0}

    def test_unplaceable_without_an_id(self):
        with pytest.raises(ExplanationError, match="without a stable id"):
            ShardPlan(2).shard_of(None)

    def test_plans_compare_by_shard_count(self):
        assert ShardPlan(3) == ShardPlan(3)
        assert ShardPlan(3) != ShardPlan(4)
        assert hash(ShardPlan(3)) == hash(ShardPlan(3))

    def test_shard_name_is_stable_and_range_checked(self):
        plan = ShardPlan(3)
        assert plan.shard_name("mut", 2) == "mut-shard02"
        with pytest.raises(ExplanationError):
            plan.shard_name("mut", 3)

    def test_split_preserves_global_order_within_each_shard(self, mut_database):
        plan = ShardPlan(3)
        shards = plan.split(mut_database)
        assert len(shards) == 3
        positions = {
            graph.graph_id: index for index, graph in enumerate(mut_database.graphs)
        }
        for shard_database in shards:
            ranks = [positions[graph.graph_id] for graph in shard_database.graphs]
            assert ranks == sorted(ranks)
        # Partition: every graph lands on exactly one shard, labels aligned.
        seen = {}
        for shard_database in shards:
            for graph, label in zip(shard_database.graphs, shard_database.labels):
                assert graph.graph_id not in seen
                seen[graph.graph_id] = label
        assert seen == {
            graph.graph_id: label
            for graph, label in zip(mut_database.graphs, mut_database.labels)
        }

    def test_split_shares_graph_objects(self, mut_database):
        shards = ShardPlan(2).split(mut_database)
        originals = {id(graph) for graph in mut_database.graphs}
        for shard_database in shards:
            for graph in shard_database.graphs:
                assert id(graph) in originals

    def test_assignments_and_sizes_agree(self, mut_database):
        plan = ShardPlan(4)
        assignments = plan.assignments(mut_database)
        sizes = plan.shard_sizes(mut_database)
        assert sum(sizes) == len(mut_database)
        for shard in range(4):
            assert sizes[shard] == sum(
                1 for owner in assignments.values() if owner == shard
            )

    def test_split_names_embed_the_database_name(self):
        database = GraphDatabase("seed")
        shards = ShardPlan(2).split(database)
        assert [shard.name for shard in shards] == ["seed-shard00", "seed-shard01"]
