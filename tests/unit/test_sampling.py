"""Unit tests for the sampled objective layer (:mod:`repro.core.sampling`).

Covers the Hoeffding sample sizing, the :func:`build_analysis` scope rules
(sub-threshold graphs must stay exact no matter the objective knob), seeded
determinism, estimator provenance, configuration validation and the service
stats surface.  The statistical guarantees themselves (estimates inside the
declared bounds, sub-threshold node-set identity) live in
``tests/property/test_sampled_estimators.py``.
"""

from __future__ import annotations

import math
import random
from dataclasses import replace

import numpy as np
import pytest

from repro.api.types import Provenance
from repro.core import Configuration
from repro.core.quality import GraphAnalysis
from repro.core.sampling import (
    SampledGraphAnalysis,
    achieved_epsilon,
    auto_sample_size,
    build_analysis,
    estimator_summary,
    reset_sampling_stats,
    sampling_stats,
)
from repro.exceptions import ConfigurationError
from repro.gnn import GNNClassifier
from repro.graphs.generators import barabasi_albert_graph

SAMPLED_CONFIG = Configuration(
    objective="sampled", sample_budget=64, epsilon=0.3, delta=0.2
)


@pytest.fixture(scope="module")
def model():
    return GNNClassifier(feature_dim=8, num_classes=2, hidden_dim=16, num_layers=2, seed=3)


@pytest.fixture(scope="module")
def big_graph():
    graph = barabasi_albert_graph(400, 2, random.Random(5), node_type="base", feature_dim=8)
    graph.graph_id = 17
    return graph


@pytest.fixture(scope="module")
def small_graph():
    graph = barabasi_albert_graph(60, 2, random.Random(6), node_type="base", feature_dim=8)
    graph.graph_id = 18
    return graph


class TestSampleSizing:
    def test_matches_the_hoeffding_formula(self):
        population, epsilon, delta = 10_000, 0.1, 0.05
        expected = math.ceil(math.log(2 * population / delta) / (2 * epsilon**2))
        assert auto_sample_size(population, epsilon, delta, budget=10**9) == expected

    def test_budget_caps_the_sample(self):
        assert auto_sample_size(10_000, 0.01, 0.05, budget=500) == 500

    def test_population_caps_the_sample(self):
        assert auto_sample_size(50, 0.01, 0.05, budget=10**9) == 50

    def test_empty_population(self):
        assert auto_sample_size(0, 0.1, 0.05, budget=100) == 0

    def test_achieved_epsilon_inverts_the_sizing(self):
        population, epsilon, delta = 5_000, 0.1, 0.05
        size = auto_sample_size(population, epsilon, delta, budget=10**9)
        # Uncapped: the achieved bound honours (is at least as tight as)
        # the requested one.
        assert achieved_epsilon(size, delta, population) <= epsilon
        # Budget-capped: the achieved bound is honestly wider.
        assert achieved_epsilon(100, delta, population) > epsilon

    def test_achieved_epsilon_tightens_with_more_samples(self):
        widths = [achieved_epsilon(m, 0.05, 5_000) for m in (50, 200, 1_000)]
        assert widths == sorted(widths, reverse=True)


class TestScopeRules:
    def test_exact_objective_always_builds_exact(self, model, big_graph):
        analysis = build_analysis(model, big_graph, Configuration())
        assert type(analysis) is GraphAnalysis

    def test_large_graph_builds_sampled(self, model, big_graph):
        analysis = build_analysis(model, big_graph, SAMPLED_CONFIG)
        assert isinstance(analysis, SampledGraphAnalysis)
        assert analysis.sample_size < analysis.population

    def test_sub_threshold_graph_falls_back_to_exact(self, model, small_graph):
        analysis = build_analysis(model, small_graph, SAMPLED_CONFIG)
        assert type(analysis) is GraphAnalysis

    def test_saturating_budget_falls_back_to_exact(self, model, big_graph):
        # epsilon so tight the Hoeffding size reaches the population: the
        # "sample" would be the whole graph, so the exact analysis is built.
        config = replace(
            SAMPLED_CONFIG, epsilon=0.01, sample_budget=10**6, sample_threshold=10
        )
        analysis = build_analysis(model, big_graph, config)
        assert type(analysis) is GraphAnalysis

    def test_fallbacks_are_counted(self, model, small_graph):
        reset_sampling_stats()
        build_analysis(model, small_graph, SAMPLED_CONFIG)
        assert sampling_stats()["exact_fallbacks"] == 1


class TestDeterminism:
    def test_two_builds_are_identical(self, model, big_graph):
        first = build_analysis(model, big_graph, SAMPLED_CONFIG)
        second = build_analysis(model, big_graph, SAMPLED_CONFIG)
        np.testing.assert_array_equal(first.sample_positions, second.sample_positions)
        np.testing.assert_array_equal(first.diversity_positions, second.diversity_positions)
        subset = list(big_graph.nodes[:7])
        assert first.explainability(subset) == second.explainability(subset)
        gains_a = first.marginal_gains(set(), big_graph.nodes[:20])
        gains_b = second.marginal_gains(set(), big_graph.nodes[:20])
        np.testing.assert_array_equal(gains_a, gains_b)

    def test_seed_changes_the_sample(self, model, big_graph):
        base = build_analysis(model, big_graph, SAMPLED_CONFIG)
        reseeded = build_analysis(model, big_graph, replace(SAMPLED_CONFIG, seed=99))
        assert not np.array_equal(base.sample_positions, reseeded.sample_positions)

    def test_estimator_info_shape(self, model, big_graph):
        analysis = build_analysis(model, big_graph, SAMPLED_CONFIG)
        info = analysis.estimator_info()
        assert info["objective"] == "sampled"
        assert info["population"] == big_graph.num_nodes()
        assert 2 <= info["sample_size"] <= SAMPLED_CONFIG.sample_budget
        assert info["achieved_epsilon"] == round(
            achieved_epsilon(info["sample_size"], SAMPLED_CONFIG.delta, info["population"]),
            6,
        )


class TestEstimatorSummary:
    def test_none_for_exact_configs(self, big_graph):
        assert estimator_summary(Configuration(), [big_graph]) is None

    def test_counts_sampled_and_exact_graphs(self, big_graph, small_graph):
        summary = estimator_summary(SAMPLED_CONFIG, [big_graph, small_graph])
        assert summary["sampled_graphs"] == 1
        assert summary["exact_graphs"] == 1
        assert summary["sample_budget"] == SAMPLED_CONFIG.sample_budget
        assert 0.0 < summary["achieved_epsilon"] <= 1.0

    def test_deterministic_without_running_anything(self, big_graph, small_graph):
        graphs = [big_graph, small_graph]
        assert estimator_summary(SAMPLED_CONFIG, graphs) == estimator_summary(
            SAMPLED_CONFIG, graphs
        )


class TestFingerprints:
    def test_sampled_config_gets_a_distinct_fingerprint(self):
        assert Configuration().fingerprint() != Configuration(objective="sampled").fingerprint()

    def test_every_estimator_knob_splits_the_fingerprint(self):
        base = Configuration(objective="sampled")
        assert base.fingerprint() != replace(base, sample_budget=512).fingerprint()
        assert base.fingerprint() != replace(base, epsilon=0.2).fingerprint()
        assert base.fingerprint() != replace(base, delta=0.01).fingerprint()
        assert base.fingerprint() != replace(base, sample_threshold=128).fingerprint()

    def test_exact_fingerprint_ignores_the_sampling_knobs(self):
        # The knobs are serialized additively: under objective="exact" they
        # cannot matter, so they must not split caches or golden artifacts.
        assert (
            Configuration().fingerprint()
            == Configuration(sample_budget=512, epsilon=0.2, delta=0.01).fingerprint()
        )

    def test_exact_canonical_dict_is_knob_free(self):
        payload = Configuration().canonical_dict()
        assert "objective" not in payload
        assert "sample_budget" not in payload
        sampled = Configuration(objective="sampled").canonical_dict()
        assert sampled["objective"] == "sampled"


class TestProvenanceEstimator:
    PROVENANCE_KWARGS = dict(
        algorithm="approx",
        label=1,
        config_fingerprint="a" * 16,
        request_fingerprint="b" * 16,
        runtime_seconds=0.5,
        backend="sparse",
        num_graphs=3,
        dataset="SCALE-STRESS",
    )

    def test_estimator_round_trips(self):
        estimator = {"objective": "sampled", "sample_budget": 64, "achieved_epsilon": 0.21}
        provenance = Provenance(estimator=estimator, **self.PROVENANCE_KWARGS)
        restored = Provenance.from_dict(provenance.to_dict())
        assert restored.estimator == estimator

    def test_exact_provenance_payload_has_no_estimator_key(self):
        provenance = Provenance(**self.PROVENANCE_KWARGS)
        payload = provenance.to_dict()
        assert "estimator" not in payload
        assert Provenance.from_dict(payload).estimator is None


class TestConfigurationValidation:
    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError, match="objective must be one of"):
            Configuration(objective="montecarlo")

    def test_tiny_sample_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="sample_budget"):
            Configuration(sample_budget=1)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.1])
    def test_epsilon_must_be_a_fraction(self, epsilon):
        with pytest.raises(ConfigurationError, match="epsilon"):
            Configuration(epsilon=epsilon)

    @pytest.mark.parametrize("delta", [0.0, 1.0, 2.0])
    def test_delta_must_be_a_probability(self, delta):
        with pytest.raises(ConfigurationError, match="delta"):
            Configuration(delta=delta)


class TestSamplingStats:
    def test_sampled_builds_are_counted(self, model, big_graph):
        reset_sampling_stats()
        analysis = build_analysis(model, big_graph, SAMPLED_CONFIG)
        stats = sampling_stats()
        assert stats["sampled_analyses"] == 1
        assert stats["last_sample_size"] == analysis.sample_size
        assert stats["max_achieved_epsilon"] == analysis.achieved_epsilon

    def test_service_stats_surface_the_counters(self, mut_database, trained_mut_model):
        from repro.api import ExplanationService

        service = ExplanationService(
            "MUT",
            database=mut_database,
            model=trained_mut_model,
            config=Configuration().with_default_bound(0, 5),
        )
        sampling = service.stats()["sampling"]
        assert sampling["objective"] == "exact"
        assert set(sampling) >= {
            "objective",
            "sampled_analyses",
            "exact_fallbacks",
            "last_sample_size",
            "max_achieved_epsilon",
        }
