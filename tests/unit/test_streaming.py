"""Unit tests for StreamGVEX (Algorithm 3)."""

import pytest

from repro.core import Configuration
from repro.core.approx import ApproxGVEX
from repro.core.streaming import StreamGVEX
from repro.exceptions import ExplanationError
from repro.graphs import Graph
from repro.matching import pattern_set_covers_nodes


@pytest.fixture
def stream_explainer(trained_mut_model):
    config = Configuration(theta=0.08).with_default_bound(0, 8)
    return StreamGVEX(trained_mut_model, config, batch_size=5, seed=0)


class TestExplainGraph:
    def test_respects_upper_bound(self, stream_explainer, mut_database):
        subgraph, patterns, _ = stream_explainer.explain_graph(mut_database[1])
        assert subgraph is not None
        assert len(subgraph.nodes) <= 8
        assert patterns

    def test_patterns_cover_selected_nodes(self, stream_explainer, mut_database):
        subgraph, patterns, _ = stream_explainer.explain_graph(mut_database[1])
        assert pattern_set_covers_nodes(patterns, [subgraph.subgraph()])

    def test_empty_graph(self, stream_explainer):
        subgraph, patterns, history = stream_explainer.explain_graph(Graph())
        assert subgraph is None
        assert patterns == []
        assert history == []

    def test_history_recorded_per_batch(self, stream_explainer, mut_database):
        graph = mut_database[1]
        _, _, history = stream_explainer.explain_graph(graph, record_history=True)
        expected_batches = -(-graph.num_nodes() // stream_explainer.batch_size)
        assert len(history) == expected_batches
        assert history[-1]["seen_fraction"] == pytest.approx(1.0)
        fractions = [entry["seen_fraction"] for entry in history]
        assert fractions == sorted(fractions)

    def test_custom_node_order_controls_stream(self, stream_explainer, mut_database):
        graph = mut_database[1]
        order = list(reversed(graph.nodes))
        subgraph, _, _ = stream_explainer.explain_graph(graph, node_order=order)
        assert subgraph is not None
        assert subgraph.nodes <= set(graph.nodes)

    def test_truncated_stream_limits_selection(self, stream_explainer, mut_database):
        graph = mut_database[1]
        prefix = graph.nodes[:4]
        subgraph, _, _ = stream_explainer.explain_graph(graph, node_order=prefix)
        if subgraph is not None:
            assert subgraph.nodes <= set(prefix)

    def test_lower_bound_enforced(self, trained_mut_model, mut_database):
        config = Configuration().with_default_bound(6, 8)
        stream = StreamGVEX(trained_mut_model, config, batch_size=4)
        subgraph, _, _ = stream.explain_graph(mut_database[1])
        if subgraph is not None:
            assert len(subgraph.nodes) >= 6

    def test_invalid_batch_size_rejected(self, trained_mut_model):
        with pytest.raises(ExplanationError):
            StreamGVEX(trained_mut_model, batch_size=0)


class TestSeededNodeOrder:
    def test_seed_defaults_to_configuration(self, trained_mut_model):
        config = Configuration(seed=11)
        assert StreamGVEX(trained_mut_model, config).seed == 11

    def test_explicit_seed_overrides_configuration(self, trained_mut_model):
        config = Configuration(seed=11)
        assert StreamGVEX(trained_mut_model, config, seed=3).seed == 3

    def test_default_configuration_seed_is_zero(self, trained_mut_model):
        assert Configuration().seed == 0
        assert StreamGVEX(trained_mut_model).seed == 0

    def test_shuffled_runs_reproducible(self, trained_mut_model, mut_database):
        """Two explainers built from the same Configuration must consume the
        same shuffled node stream and select identical explanations (Fig. 12
        requires reproducible shuffled-order runs)."""
        config = Configuration(theta=0.08, seed=23).with_default_bound(0, 8)
        graph = mut_database[1]
        first, _, _ = StreamGVEX(trained_mut_model, config, batch_size=5).explain_graph(graph)
        second, _, _ = StreamGVEX(trained_mut_model, config, batch_size=5).explain_graph(graph)
        assert first is not None and second is not None
        assert first.nodes == second.nodes
        assert first.explainability == second.explainability

    def test_different_seeds_can_change_stream(self, trained_mut_model, mut_database):
        graph = mut_database[1]
        orders = set()
        for seed in range(4):
            explainer = StreamGVEX(trained_mut_model, Configuration(seed=seed), batch_size=5)
            import random as _random

            order = list(graph.nodes)
            _random.Random(explainer.seed).shuffle(order)
            orders.add(tuple(order))
        assert len(orders) > 1


class TestApproximationBehaviour:
    def test_stream_quality_close_to_approx(self, trained_mut_model, mut_database):
        """Anytime guarantee: streaming quality stays within a constant factor
        of the offline greedy on the same graphs (paper: 1/4 vs 1/2)."""
        config = Configuration(theta=0.08).with_default_bound(0, 6)
        label = 1
        graphs = [g for g in mut_database.graphs if trained_mut_model.predict(g) == label][:4]
        approx_view = ApproxGVEX(trained_mut_model, config).explain_label(graphs, label)
        stream_view = StreamGVEX(trained_mut_model, config, batch_size=5).explain_label(graphs, label)
        assert stream_view.explainability >= 0.25 * approx_view.explainability

    def test_swapping_never_exceeds_cache_size(self, trained_mut_model, mut_database):
        config = Configuration().with_default_bound(0, 4)
        stream = StreamGVEX(trained_mut_model, config, batch_size=3)
        subgraph, _, _ = stream.explain_graph(mut_database[1])
        assert subgraph is None or len(subgraph.nodes) <= 4


class TestExplainLabelAndAll:
    def test_view_metadata(self, stream_explainer, mut_database):
        view = stream_explainer.explain_label(mut_database.graphs, 1)
        assert view.metadata["algorithm"] == "StreamGVEX"
        assert view.metadata["batch_size"] == 5
        assert view.subgraphs

    def test_patterns_deduplicated_across_graphs(self, stream_explainer, mut_database):
        view = stream_explainer.explain_label(mut_database.graphs, 1)
        keys = [pattern.canonical_key() for pattern in view.patterns]
        assert len(keys) == len(set(keys))

    def test_explain_all_labels(self, stream_explainer, mut_database):
        views = stream_explainer.explain(mut_database)
        assert len(views) >= 1

    def test_empty_collection_rejected(self, stream_explainer):
        with pytest.raises(ExplanationError):
            stream_explainer.explain([])

    def test_explain_instance_fallback(self, stream_explainer, mut_database):
        explanation = stream_explainer.explain_instance(mut_database[0])
        assert explanation.nodes


class TestDuplicateGraphIds:
    def test_explain_label_keeps_every_graph_despite_id_collisions(
        self, trained_mut_model, mut_database
    ):
        """Caller-supplied graph lists may mix sources whose graph ids
        collide (ids are only unique per database); the maintainer-replay
        path must process every graph, like the pre-refactor loop did."""
        config = Configuration(theta=0.08).with_default_bound(0, 8)
        first = mut_database[1].copy()
        second = mut_database[3].copy()
        second.graph_id = first.graph_id  # forced collision
        label = trained_mut_model.predict(first)
        graphs = [g for g in (first, second) if trained_mut_model.predict(g) == label]
        view = StreamGVEX(trained_mut_model, config, batch_size=5).explain_label(
            graphs, label
        )
        assert len(view.subgraphs) == len(graphs)
