"""Shared-memory CSR arenas (`repro.api.sharding.shm`).

The arena is a zero-copy transport for :class:`SparseGraphView` snapshots:
attached views must be *contentwise identical* to locally built ones, must
refuse writes, and must degrade gracefully (a graph missing from the
manifest just builds its own private view).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.sharding.shm import attach_arena, create_arena


@pytest.fixture()
def arena_and_graphs(mut_database):
    graphs = [graph.copy() for graph in mut_database.graphs[:6]]
    arena = create_arena(graphs)
    yield arena, graphs
    arena.close()


class TestArenaRoundTrip:
    def test_manifest_covers_every_graph(self, arena_and_graphs):
        arena, graphs = arena_and_graphs
        assert arena.num_graphs == len(graphs)
        assert arena.nbytes > 0
        ids = {entry["graph_id"] for entry in arena.manifest["graphs"]}
        assert ids == {graph.graph_id for graph in graphs}

    def test_attached_views_match_local_builds(self, arena_and_graphs):
        arena, graphs = arena_and_graphs
        attached = attach_arena(arena.name, arena.manifest)
        try:
            by_id = {graph.graph_id: graph for graph in graphs}
            for entry in attached.manifest["graphs"]:
                local = by_id[entry["graph_id"]].sparse_view()
                shared = attached.view_for(entry)
                assert shared.node_ids == local.node_ids
                assert shared.num_edges == local.num_edges
                np.testing.assert_array_equal(shared.indptr, local.indptr)
                np.testing.assert_array_equal(shared.indices, local.indices)
                np.testing.assert_array_equal(shared.edge_u, local.edge_u)
                np.testing.assert_array_equal(shared.edge_v, local.edge_v)
                np.testing.assert_array_equal(
                    shared.node_type_codes, local.node_type_codes
                )
                assert shared.node_type_vocab == local.node_type_vocab
                assert shared.edge_type_vocab == local.edge_type_vocab
                if local._feature_block is not None:
                    np.testing.assert_array_equal(
                        shared._feature_block, local._feature_block
                    )
        finally:
            attached.close()

    def test_attached_arrays_are_read_only(self, arena_and_graphs):
        arena, _ = arena_and_graphs
        attached = attach_arena(arena.name, arena.manifest)
        try:
            view = attached.view_for(attached.manifest["graphs"][0])
            with pytest.raises(ValueError):
                view.indptr[0] = 99
        finally:
            attached.close()

    def test_install_adopts_the_local_graph_version(self, arena_and_graphs, mut_database):
        arena, _ = arena_and_graphs
        # A freshly deserialised copy has different mutation counters but
        # identical content — install must take and pin the local version.
        clones = [
            graph.copy() for graph in mut_database.graphs[:6]
        ]
        attached = attach_arena(arena.name, arena.manifest)
        try:
            installed = attached.install(clones)
            assert installed == len(clones)
            for graph in clones:
                shared_view = graph._sparse_view
                assert shared_view is not None
                assert shared_view.version == graph.version
                # Current version → sparse_view serves it instead of rebuilding.
                assert graph.sparse_view() is shared_view
        finally:
            attached.close()

    def test_install_skips_unknown_graphs(self, arena_and_graphs, mut_database):
        arena, _ = arena_and_graphs
        stranger = mut_database.graphs[7].copy()  # not among the packed six
        attached = attach_arena(arena.name, arena.manifest)
        try:
            assert attached.install([stranger]) == 0
        finally:
            attached.close()

    def test_close_is_idempotent_and_unlinks(self, mut_database):
        graphs = [graph.copy() for graph in mut_database.graphs[:2]]
        arena = create_arena(graphs)
        name = arena.name
        arena.close()
        arena.close()  # second close must be a no-op
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)
