"""Unit tests for graph patterns."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import Graph, GraphPattern


def make_edge_pattern() -> GraphPattern:
    pattern = GraphPattern(pattern_id=1)
    pattern.add_node(0, "A")
    pattern.add_node(1, "B")
    pattern.add_edge(0, 1, "x")
    return pattern


class TestConstruction:
    def test_basic_sizes(self):
        pattern = make_edge_pattern()
        assert pattern.num_nodes() == 2
        assert pattern.num_edges() == 1
        assert pattern.size() == 3

    def test_node_and_edge_types(self):
        pattern = make_edge_pattern()
        assert pattern.node_type(1) == "B"
        assert pattern.edge_type(0, 1) == "x"

    def test_from_graph_drops_features_and_relabels(self, triangle_graph):
        pattern = GraphPattern.from_graph(triangle_graph)
        assert pattern.nodes == [0, 1, 2]
        assert pattern.num_edges() == 3
        assert pattern.node_type(0) == "A"

    def test_validate_rejects_empty(self):
        with pytest.raises(GraphError):
            GraphPattern().validate()

    def test_validate_rejects_disconnected(self):
        pattern = GraphPattern()
        pattern.add_node(0, "A")
        pattern.add_node(1, "A")
        with pytest.raises(GraphError):
            pattern.validate()

    def test_validate_accepts_connected(self):
        make_edge_pattern().validate()


class TestEquality:
    def test_isomorphic_patterns_compare_equal(self):
        first = make_edge_pattern()
        second = GraphPattern()
        second.add_node(5, "B")
        second.add_node(9, "A")
        second.add_edge(5, 9, "x")
        assert first == second
        assert hash(first) == hash(second)

    def test_different_types_not_equal(self):
        first = make_edge_pattern()
        second = GraphPattern()
        second.add_node(0, "A")
        second.add_node(1, "A")
        second.add_edge(0, 1, "x")
        assert first != second

    def test_canonical_key_matches_source_graph_signature(self, triangle_graph):
        pattern = GraphPattern.from_graph(triangle_graph)
        relabelled = GraphPattern.from_graph(triangle_graph.relabel({0: 3, 1: 4, 2: 5}))
        assert pattern.canonical_key() == relabelled.canonical_key()

    def test_comparison_with_other_type(self):
        assert make_edge_pattern().__eq__(42) is NotImplemented


class TestSerialisation:
    def test_round_trip(self):
        pattern = make_edge_pattern()
        clone = GraphPattern.from_dict(pattern.to_dict())
        assert clone == pattern
        assert clone.pattern_id == 1

    def test_repr_mentions_sizes(self):
        assert "|Vp|=2" in repr(make_edge_pattern())

    def test_graph_property_exposes_underlying_graph(self):
        pattern = make_edge_pattern()
        assert isinstance(pattern.graph, Graph)
        assert pattern.graph.num_nodes() == 2
