"""Unit tests for the unified explainer registry (`repro.api.registry`)."""

from __future__ import annotations

import pytest

from repro.api import (
    DEFAULT_REGISTRY,
    Explainer,
    InstanceViewExplainer,
    available_explainers,
    create_explainer,
)
from repro.baselines.base import BaseExplainer
from repro.core import Configuration
from repro.core.approx import ApproxGVEX
from repro.core.streaming import StreamGVEX
from repro.exceptions import ExplanationError

ALL_NAMES = [
    "approx",
    "stream",
    "approxgvex",
    "streamgvex",
    "gnnexplainer",
    "subgraphx",
    "gstarx",
    "gcfexplainer",
    "random",
]


class TestRegistryLookup:
    def test_every_algorithm_is_registered(self):
        names = available_explainers()
        for name in ALL_NAMES:
            assert name in names

    def test_unknown_name_lists_alternatives(self, untrained_small_model):
        with pytest.raises(ExplanationError, match="unknown explainer 'magic'.*approx"):
            create_explainer("magic", untrained_small_model)

    def test_lookup_is_case_and_separator_insensitive(self, untrained_small_model):
        for spelling in ("Approx", "APPROX", "GNN-Explainer", "gnn_explainer"):
            assert create_explainer(spelling, untrained_small_model) is not None

    def test_aliases_resolve(self):
        assert DEFAULT_REGISTRY.resolve("gvex") == "approx"
        assert DEFAULT_REGISTRY.resolve("streaming") == "stream"

    def test_contains(self):
        assert "approx" in DEFAULT_REGISTRY
        assert "definitely-not-registered" not in DEFAULT_REGISTRY
        assert 42 not in DEFAULT_REGISTRY

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExplanationError, match="already registered"):
            DEFAULT_REGISTRY.register("approx", lambda *a, **k: None)


class TestCreateExplainer:
    def test_core_algorithms_come_back_unwrapped(self, untrained_small_model):
        assert isinstance(create_explainer("approx", untrained_small_model), ApproxGVEX)
        assert isinstance(create_explainer("stream", untrained_small_model), StreamGVEX)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_every_name_satisfies_the_protocol(self, untrained_small_model, name):
        explainer = create_explainer(name, untrained_small_model)
        assert isinstance(explainer, Explainer)
        assert hasattr(explainer, "explain_label")
        assert hasattr(explainer, "explain_instance")

    def test_max_nodes_folds_into_the_coverage_bound(self, untrained_small_model):
        explainer = create_explainer("approx", untrained_small_model, max_nodes=5)
        assert explainer.config.default_bound.upper == 5

    def test_max_nodes_reaches_instance_baselines(self, untrained_small_model):
        explainer = create_explainer("random", untrained_small_model, max_nodes=4)
        assert explainer.base.max_nodes == 4

    def test_invalid_max_nodes_rejected(self, untrained_small_model):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError, match="max_nodes"):
            create_explainer("approx", untrained_small_model, max_nodes=0)

    def test_algorithm_kwargs_pass_through(self, untrained_small_model):
        explainer = create_explainer("stream", untrained_small_model, batch_size=4)
        assert explainer.batch_size == 4

    def test_config_threads_through_to_gvex_adapters(self, untrained_small_model):
        config = Configuration(theta=0.3)
        explainer = create_explainer("approxgvex", untrained_small_model, config=config)
        assert explainer.base.config.theta == 0.3


class TestInstanceViewExplainer:
    def test_baselines_produce_two_tier_views(self, trained_mut_model, mut_database):
        explainer = create_explainer("random", trained_mut_model, max_nodes=4, seed=1)
        graphs = mut_database.graphs[:4]
        label = trained_mut_model.predict(graphs[0])
        view = explainer.explain_label(graphs, label)
        assert view.label == label
        assert view.subgraphs, "label group should yield at least one subgraph"
        assert view.patterns, "Psum should summarise baseline subgraphs too"
        assert view.metadata["algorithm"] == "Random"
        assert view.metadata["runtime_seconds"] >= 0.0
        for subgraph in view.subgraphs:
            assert subgraph.label == label
            assert len(subgraph.nodes) <= 4

    def test_adapter_delegates_the_legacy_surface(self, untrained_small_model):
        explainer = create_explainer("random", untrained_small_model, max_nodes=3)
        assert isinstance(explainer, InstanceViewExplainer)
        assert explainer.max_nodes == 3  # delegated to the wrapped baseline
        assert explainer.model is untrained_small_model

    def test_explain_many_keeps_the_comparison_contract(
        self, trained_mut_model, mut_database
    ):
        explainer = create_explainer("random", trained_mut_model, max_nodes=3, seed=0)
        explanations = explainer.explain_many(mut_database.graphs[:3])
        assert len(explanations) == 3


class TestAutoRegistration:
    def test_defining_a_subclass_registers_it(self, untrained_small_model):
        class HubExplainer(BaseExplainer):
            name = "TestHub"

            def select_nodes(self, graph, label):
                return {max(graph.nodes, key=graph.degree)}

        assert "testhub" in available_explainers()
        explainer = create_explainer("testhub", untrained_small_model, max_nodes=2)
        assert isinstance(explainer, InstanceViewExplainer)

    def test_abstract_intermediates_are_not_registered(self):
        class AbstractIntermediate(BaseExplainer):
            name = "TestAbstractIntermediate"

        assert "testabstractintermediate" not in available_explainers()
