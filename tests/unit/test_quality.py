"""Unit tests for the explainability quality measures (Eqs. 2, 5, 6)."""

import pytest

from repro.core import Configuration, GraphAnalysis
from repro.core.quality import view_explainability
from repro.graphs import Graph


@pytest.fixture
def analysis(untrained_small_model, path_graph):
    config = Configuration(theta=0.05, radius=0.3, gamma=0.5)
    return GraphAnalysis(untrained_small_model, path_graph, config)


class TestInfluenceScore:
    def test_empty_seed_has_zero_score(self, analysis):
        assert analysis.influence_score(set()) == 0

    def test_score_bounded_by_graph_size(self, analysis, path_graph):
        assert analysis.influence_score(set(path_graph.nodes)) <= path_graph.num_nodes()

    def test_monotone_in_seed_set(self, analysis):
        small = analysis.influence_score({0})
        large = analysis.influence_score({0, 2, 4})
        assert large >= small

    def test_unknown_nodes_ignored(self, analysis):
        assert analysis.influence_score({999}) == 0

    def test_influenced_nodes_contains_seed_neighbourhood(self, analysis):
        influenced = analysis.influenced_nodes({2})
        assert isinstance(influenced, set)
        assert influenced  # a node always influences at least itself strongly


class TestDiversityScore:
    def test_empty_seed_zero(self, analysis):
        assert analysis.diversity_score(set()) == 0

    def test_monotone(self, analysis):
        assert analysis.diversity_score({0, 1}) >= analysis.diversity_score({0})

    def test_bounded_by_graph_size(self, analysis, path_graph):
        assert analysis.diversity_score(set(path_graph.nodes)) <= path_graph.num_nodes()


class TestExplainability:
    def test_normalised_by_graph_size(self, analysis, path_graph):
        full = analysis.explainability(set(path_graph.nodes))
        assert full <= 1.0 + analysis.config.gamma

    def test_empty_graph_analysis(self, untrained_small_model):
        analysis = GraphAnalysis(untrained_small_model, Graph(), Configuration())
        assert analysis.explainability({0}) == 0.0
        assert analysis.num_nodes() == 0

    def test_marginal_gain_consistency(self, analysis):
        base = {0}
        gain = analysis.marginal_gain(base, 3)
        assert gain == pytest.approx(
            analysis.explainability({0, 3}) - analysis.explainability({0})
        )

    def test_loss_of_removal_consistency(self, analysis):
        selected = {0, 2}
        loss = analysis.loss_of_removal(selected, 2)
        assert loss == pytest.approx(
            analysis.explainability({0, 2}) - analysis.explainability({0})
        )

    def test_gamma_zero_removes_diversity_term(self, untrained_small_model, path_graph):
        config = Configuration(theta=0.05, gamma=0.0)
        analysis = GraphAnalysis(untrained_small_model, path_graph, config)
        nodes = {0, 1}
        expected = analysis.influence_score(nodes) / path_graph.num_nodes()
        assert analysis.explainability(nodes) == pytest.approx(expected)

    def test_exerted_influence_non_negative(self, analysis, path_graph):
        for node in path_graph.nodes:
            assert analysis.exerted_influence(node) >= 0.0
        assert analysis.exerted_influence(12345) == 0.0

    def test_higher_theta_never_increases_influence(self, untrained_small_model, path_graph):
        loose = GraphAnalysis(untrained_small_model, path_graph, Configuration(theta=0.01))
        strict = GraphAnalysis(untrained_small_model, path_graph, Configuration(theta=0.5))
        seeds = {0, 2}
        assert strict.influence_score(seeds) <= loose.influence_score(seeds)


class TestViewExplainability:
    def test_sums_over_graphs(self, untrained_small_model, path_graph, triangle_graph):
        config = Configuration(theta=0.05)
        analyses = [
            GraphAnalysis(untrained_small_model, path_graph, config),
            GraphAnalysis(untrained_small_model, triangle_graph, config),
        ]
        node_sets = [{0, 1}, {0}]
        total = view_explainability(analyses, node_sets)
        assert total == pytest.approx(
            analyses[0].explainability({0, 1}) + analyses[1].explainability({0})
        )

    def test_misaligned_inputs_raise(self, untrained_small_model, path_graph):
        analyses = [GraphAnalysis(untrained_small_model, path_graph, Configuration())]
        with pytest.raises(ValueError):
            view_explainability(analyses, [{0}, {1}])
