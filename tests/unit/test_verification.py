"""Unit tests for the EVerify operator and view verification (C1-C3)."""

import pytest

from repro.core import Configuration, EVerify, ExplanationSubgraph, ExplanationView, verify_view
from repro.core.summarize import summarize_subgraphs
from repro.graphs import GraphPattern
from repro.graphs.subgraph import induced_subgraph


@pytest.fixture
def mutagen_graph(mut_database, trained_mut_model):
    for graph, label in zip(mut_database.graphs, mut_database.labels):
        if label == 1 and trained_mut_model.predict(graph) == 1:
            return graph
    pytest.skip("no correctly classified mutagen in the fixture database")


class TestEVerify:
    def test_predict_matches_model(self, trained_mut_model, mutagen_graph):
        everify = EVerify(trained_mut_model)
        assert everify.predict(mutagen_graph) == trained_mut_model.predict(mutagen_graph)

    def test_consistency_of_full_graph(self, trained_mut_model, mutagen_graph):
        everify = EVerify(trained_mut_model)
        label = trained_mut_model.predict(mutagen_graph)
        assert everify.is_consistent(mutagen_graph, set(mutagen_graph.nodes), label)

    def test_empty_node_set_is_not_consistent(self, trained_mut_model, mutagen_graph):
        everify = EVerify(trained_mut_model)
        assert not everify.is_consistent(mutagen_graph, set(), 1)

    def test_counterfactual_when_everything_removed(self, trained_mut_model, mutagen_graph):
        everify = EVerify(trained_mut_model)
        assert everify.is_counterfactual(mutagen_graph, set(mutagen_graph.nodes), 1)

    def test_counterfactual_false_for_empty_removal(self, trained_mut_model, mutagen_graph):
        everify = EVerify(trained_mut_model)
        label = trained_mut_model.predict(mutagen_graph)
        assert not everify.is_counterfactual(mutagen_graph, set(), label)

    def test_caching_reduces_inference_calls(self, trained_mut_model, mutagen_graph):
        everify = EVerify(trained_mut_model)
        nodes = set(mutagen_graph.nodes[:4])
        everify.is_consistent(mutagen_graph, nodes, 1)
        calls = everify.inference_calls
        everify.is_consistent(mutagen_graph, nodes, 1)
        assert everify.inference_calls == calls
        assert everify.stats()["cache_entries"] >= 1

    def test_annotate_fills_flags(self, trained_mut_model, mutagen_graph):
        everify = EVerify(trained_mut_model)
        explanation = ExplanationSubgraph(
            source_graph=mutagen_graph, nodes=set(mutagen_graph.nodes[:5]), label=1
        )
        annotated = everify.annotate(explanation)
        assert annotated.consistent is not None
        assert annotated.counterfactual is not None


class TestVerifyView:
    def build_view(self, graph, model, nodes=None, with_patterns=True):
        label = model.predict(graph)
        nodes = set(nodes if nodes is not None else graph.nodes)
        explanation = ExplanationSubgraph(source_graph=graph, nodes=nodes, label=label)
        patterns = []
        if with_patterns:
            summary = summarize_subgraphs([induced_subgraph(graph, nodes)])
            patterns = summary.patterns
        return ExplanationView(label=label, patterns=patterns, subgraphs=[explanation])

    def test_full_graph_view_satisfies_c1_and_c3(self, trained_mut_model, mutagen_graph):
        config = Configuration().with_default_bound(0, mutagen_graph.num_nodes())
        view = self.build_view(mutagen_graph, trained_mut_model)
        report = verify_view(view, trained_mut_model, config)
        assert report.is_graph_view
        assert report.properly_covers
        assert report.uncovered_nodes == 0

    def test_missing_patterns_fail_c1(self, trained_mut_model, mutagen_graph):
        config = Configuration().with_default_bound(0, mutagen_graph.num_nodes())
        view = self.build_view(mutagen_graph, trained_mut_model, with_patterns=False)
        report = verify_view(view, trained_mut_model, config)
        assert not report.is_graph_view
        assert report.uncovered_nodes == mutagen_graph.num_nodes()

    def test_oversized_subgraph_fails_c3(self, trained_mut_model, mutagen_graph):
        config = Configuration().with_default_bound(0, 2)
        view = self.build_view(mutagen_graph, trained_mut_model)
        report = verify_view(view, trained_mut_model, config)
        assert not report.properly_covers

    def test_full_graph_is_not_counterfactual(self, trained_mut_model, mutagen_graph):
        # Using the whole graph as its own explanation cannot satisfy the
        # counterfactual property (removing it leaves an empty graph, which we
        # do count as counterfactual) but it is consistent; a single-node
        # explanation of a robust classifier usually fails consistency instead.
        config = Configuration().with_default_bound(0, mutagen_graph.num_nodes())
        view = self.build_view(mutagen_graph, trained_mut_model, nodes=mutagen_graph.nodes[:1])
        report = verify_view(view, trained_mut_model, config)
        assert report.inconsistent_subgraphs + report.non_counterfactual_subgraphs >= 1
        assert not report.satisfied or report.is_explanation_view

    def test_report_satisfied_property(self, trained_mut_model, mutagen_graph):
        config = Configuration().with_default_bound(0, mutagen_graph.num_nodes())
        view = self.build_view(mutagen_graph, trained_mut_model)
        report = verify_view(view, trained_mut_model, config)
        assert report.satisfied == (
            report.is_graph_view and report.is_explanation_view and report.properly_covers
        )

    def test_pattern_that_matches_nothing_leaves_nodes_uncovered(
        self, trained_mut_model, mutagen_graph
    ):
        config = Configuration().with_default_bound(0, mutagen_graph.num_nodes())
        bogus = GraphPattern()
        bogus.add_node(0, "UNOBTAINIUM")
        view = self.build_view(mutagen_graph, trained_mut_model, with_patterns=False)
        view.patterns = [bogus]
        report = verify_view(view, trained_mut_model, config)
        assert report.uncovered_nodes == mutagen_graph.num_nodes()
