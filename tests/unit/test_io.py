"""Unit tests for graph interchange helpers."""

import networkx as nx

from repro.graphs import GraphPattern
from repro.graphs.io import (
    graph_to_networkx,
    networkx_to_graph,
    pattern_to_networkx,
    read_edge_list,
    read_graph_json,
    write_edge_list,
    write_graph_json,
)


class TestNetworkxConversion:
    def test_graph_to_networkx_preserves_structure(self, triangle_graph):
        converted = graph_to_networkx(triangle_graph)
        assert isinstance(converted, nx.Graph)
        assert converted.number_of_nodes() == 3
        assert converted.number_of_edges() == 3
        assert converted.nodes[0]["node_type"] == "A"

    def test_round_trip_through_networkx(self, triangle_graph):
        back = networkx_to_graph(graph_to_networkx(triangle_graph))
        assert back.nodes == triangle_graph.nodes
        assert back.edges == triangle_graph.edges
        assert back.edge_type(0, 2) == "y"

    def test_pattern_to_networkx(self):
        pattern = GraphPattern()
        pattern.add_node(0, "A")
        pattern.add_node(1, "B")
        pattern.add_edge(0, 1)
        converted = pattern_to_networkx(pattern)
        assert converted.number_of_edges() == 1


class TestFileFormats:
    def test_edge_list_round_trip(self, triangle_graph, tmp_path):
        path = tmp_path / "graph.edges"
        write_edge_list(triangle_graph, path)
        back = read_edge_list(path)
        assert back.edges == triangle_graph.edges
        assert back.node_type(1) == "B"

    def test_edge_list_without_headers(self, tmp_path):
        path = tmp_path / "plain.edges"
        path.write_text("0 1\n1 2 bond\n")
        graph = read_edge_list(path)
        assert graph.num_nodes() == 3
        assert graph.edge_type(1, 2) == "bond"

    def test_json_round_trip(self, triangle_graph, tmp_path):
        path = tmp_path / "graph.json"
        write_graph_json(triangle_graph, path)
        back = read_graph_json(path)
        assert back.nodes == triangle_graph.nodes
        assert back.num_edges() == 3


class TestDatabaseJsonl:
    def build(self, num=3):
        import numpy as np

        from repro.graphs import Graph, GraphDatabase

        database = GraphDatabase(name="jsonl-demo")
        for index in range(num):
            graph = Graph(graph_id=index)
            graph.add_node(0, "A", np.array([1.0, float(index)]))
            graph.add_node(1, "B", np.array([0.0, 1.0]))
            graph.add_edge(0, 1, "bond")
            database.add_graph(graph, label=index % 2 if index < num - 1 else None)
        return database

    def test_round_trip(self, tmp_path):
        from repro.graphs import GraphDatabase
        from repro.graphs.io import read_database_jsonl, write_database_jsonl

        database = self.build()
        path = tmp_path / "db.jsonl"
        write_database_jsonl(database, path)
        back = read_database_jsonl(path)
        assert back.name == "jsonl-demo"
        assert back.labels == database.labels
        assert [g.to_dict() for g in back] == [g.to_dict() for g in database]
        # GraphDatabase.load sniffs the format itself.
        assert GraphDatabase.load(path).labels == database.labels

    def test_save_selects_format_by_suffix(self, tmp_path):
        from repro.graphs import GraphDatabase

        database = self.build()
        jsonl_path = tmp_path / "db.jsonl"
        json_path = tmp_path / "db.json"
        database.save(jsonl_path)
        database.save(json_path)
        assert jsonl_path.read_text().count("\n") == len(database) + 1
        assert json_path.read_text().startswith("{")
        for path in (jsonl_path, json_path):
            assert GraphDatabase.load(path).labels == database.labels

    def test_explicit_format_overrides_suffix(self, tmp_path):
        from repro.graphs import GraphDatabase
        from repro.graphs.io import is_database_jsonl

        database = self.build()
        path = tmp_path / "db.json"
        database.save(path, format="jsonl")
        assert is_database_jsonl(path)
        assert GraphDatabase.load(path).labels == database.labels

    def test_unknown_format_rejected(self, tmp_path):
        import pytest

        from repro.exceptions import DatasetError

        with pytest.raises(DatasetError):
            self.build().save(tmp_path / "db.bin", format="parquet")

    def test_iter_streams_without_building_a_database(self, tmp_path):
        from repro.graphs.io import iter_database_jsonl, write_database_jsonl

        database = self.build(num=4)
        path = tmp_path / "db.jsonl"
        write_database_jsonl(database, path)
        rows = list(iter_database_jsonl(path))
        assert len(rows) == 4
        assert rows[0][0].node_type(1) == "B"
        assert rows[3][1] is None

    def test_legacy_json_blob_still_loads(self, tmp_path):
        """Databases written by the pre-JSONL save() keep loading."""
        import json

        from repro.graphs import GraphDatabase

        database = self.build()
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(database.to_dict()))
        assert GraphDatabase.load(path).labels == database.labels

    def test_non_jsonl_file_rejected_by_reader(self, tmp_path):
        import pytest

        from repro.exceptions import DatasetError
        from repro.graphs.io import is_database_jsonl, read_database_jsonl

        path = tmp_path / "not.jsonl"
        path.write_text('{"name": "x", "graphs": []}\n')
        assert not is_database_jsonl(path)
        with pytest.raises(DatasetError):
            read_database_jsonl(path)

    def test_corrupt_record_reports_line_number(self, tmp_path):
        import pytest

        from repro.exceptions import DatasetError
        from repro.graphs.io import iter_database_jsonl, write_database_jsonl

        database = self.build()
        path = tmp_path / "db.jsonl"
        write_database_jsonl(database, path)
        with path.open("a") as handle:
            handle.write("{broken\n")
        with pytest.raises(DatasetError, match=":5:"):
            list(iter_database_jsonl(path))
