"""Unit tests for graph interchange helpers."""

import networkx as nx

from repro.graphs import GraphPattern
from repro.graphs.io import (
    graph_to_networkx,
    networkx_to_graph,
    pattern_to_networkx,
    read_edge_list,
    read_graph_json,
    write_edge_list,
    write_graph_json,
)


class TestNetworkxConversion:
    def test_graph_to_networkx_preserves_structure(self, triangle_graph):
        converted = graph_to_networkx(triangle_graph)
        assert isinstance(converted, nx.Graph)
        assert converted.number_of_nodes() == 3
        assert converted.number_of_edges() == 3
        assert converted.nodes[0]["node_type"] == "A"

    def test_round_trip_through_networkx(self, triangle_graph):
        back = networkx_to_graph(graph_to_networkx(triangle_graph))
        assert back.nodes == triangle_graph.nodes
        assert back.edges == triangle_graph.edges
        assert back.edge_type(0, 2) == "y"

    def test_pattern_to_networkx(self):
        pattern = GraphPattern()
        pattern.add_node(0, "A")
        pattern.add_node(1, "B")
        pattern.add_edge(0, 1)
        converted = pattern_to_networkx(pattern)
        assert converted.number_of_edges() == 1


class TestFileFormats:
    def test_edge_list_round_trip(self, triangle_graph, tmp_path):
        path = tmp_path / "graph.edges"
        write_edge_list(triangle_graph, path)
        back = read_edge_list(path)
        assert back.edges == triangle_graph.edges
        assert back.node_type(1) == "B"

    def test_edge_list_without_headers(self, tmp_path):
        path = tmp_path / "plain.edges"
        path.write_text("0 1\n1 2 bond\n")
        graph = read_edge_list(path)
        assert graph.num_nodes() == 3
        assert graph.edge_type(1, 2) == "bond"

    def test_json_round_trip(self, triangle_graph, tmp_path):
        path = tmp_path / "graph.json"
        write_graph_json(triangle_graph, path)
        back = read_graph_json(path)
        assert back.nodes == triangle_graph.nodes
        assert back.num_edges() == 3
