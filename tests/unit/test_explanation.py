"""Unit tests for explanation subgraphs, views, and view sets."""

import pytest

from repro.core import ExplanationSubgraph, ExplanationView, ExplanationViewSet
from repro.graphs import GraphPattern


def make_subgraph(graph, nodes, label=0):
    return ExplanationSubgraph(source_graph=graph, nodes=set(nodes), label=label)


def single_type_pattern(node_type):
    pattern = GraphPattern()
    pattern.add_node(0, node_type)
    return pattern


class TestExplanationSubgraph:
    def test_subgraph_and_residual_partition_nodes(self, triangle_graph):
        explanation = make_subgraph(triangle_graph, {0, 1})
        assert set(explanation.subgraph().nodes) == {0, 1}
        assert set(explanation.residual().nodes) == {2}

    def test_counts(self, triangle_graph):
        explanation = make_subgraph(triangle_graph, {0, 1})
        assert explanation.num_nodes() == 2
        assert explanation.num_edges() == 1

    def test_sparsity(self, triangle_graph):
        explanation = make_subgraph(triangle_graph, {0, 1})
        # Graph has 3 nodes + 3 edges = 6; explanation has 2 + 1 = 3.
        assert explanation.sparsity() == pytest.approx(0.5)

    def test_is_valid_explanation_requires_both_flags(self, triangle_graph):
        explanation = make_subgraph(triangle_graph, {0})
        assert not explanation.is_valid_explanation()
        explanation.consistent = True
        explanation.counterfactual = True
        assert explanation.is_valid_explanation()

    def test_to_dict(self, triangle_graph):
        explanation = make_subgraph(triangle_graph, {1, 0}, label=1)
        payload = explanation.to_dict()
        assert payload["nodes"] == [0, 1]
        assert payload["label"] == 1


class TestExplanationView:
    def test_totals_and_compression(self, triangle_graph, path_graph):
        view = ExplanationView(label=0)
        view.subgraphs = [make_subgraph(triangle_graph, {0, 1}), make_subgraph(path_graph, {0, 1, 2})]
        view.patterns = [single_type_pattern("A")]
        assert view.total_subgraph_nodes() == 5
        assert view.total_subgraph_edges() == 3
        assert view.total_pattern_nodes() == 1
        assert view.compression() == pytest.approx(1.0 - 1 / 8)

    def test_compression_of_empty_view(self):
        assert ExplanationView(label=0).compression() == 0.0

    def test_patterns_matching_graph(self, triangle_graph):
        view = ExplanationView(label=0, patterns=[single_type_pattern("A"), single_type_pattern("Z")])
        matches = view.patterns_matching(triangle_graph)
        assert len(matches) == 1

    def test_graphs_containing_pattern(self, triangle_graph, path_graph):
        view = ExplanationView(label=0)
        view.subgraphs = [make_subgraph(triangle_graph, {0, 1}), make_subgraph(path_graph, {0})]
        hits = view.graphs_containing(single_type_pattern("A"))
        assert hits == [triangle_graph]

    def test_to_dict_round_trip_fields(self, triangle_graph):
        view = ExplanationView(label=2, patterns=[single_type_pattern("A")])
        view.subgraphs = [make_subgraph(triangle_graph, {0}, label=2)]
        payload = view.to_dict()
        assert payload["label"] == 2
        assert len(payload["patterns"]) == 1
        assert len(payload["subgraphs"]) == 1


class TestExplanationViewSet:
    def build(self, triangle_graph, path_graph):
        view_a = ExplanationView(label=0, patterns=[single_type_pattern("A")], explainability=1.0)
        view_a.subgraphs = [make_subgraph(triangle_graph, {0, 1}, label=0)]
        view_b = ExplanationView(label=1, patterns=[single_type_pattern("P")], explainability=0.5)
        view_b.subgraphs = [make_subgraph(path_graph, {0, 1}, label=1)]
        return ExplanationViewSet([view_a, view_b])

    def test_labels_and_lookup(self, triangle_graph, path_graph):
        views = self.build(triangle_graph, path_graph)
        assert views.labels() == [0, 1]
        assert views.view_for(1).label == 1
        assert 0 in views and 5 not in views
        assert len(views) == 2

    def test_total_explainability(self, triangle_graph, path_graph):
        views = self.build(triangle_graph, path_graph)
        assert views.total_explainability() == pytest.approx(1.5)

    def test_labels_containing_pattern(self, triangle_graph, path_graph):
        views = self.build(triangle_graph, path_graph)
        assert views.labels_containing_pattern(single_type_pattern("A")) == [0]
        assert views.labels_containing_pattern(single_type_pattern("P")) == [1]

    def test_discriminative_patterns(self, triangle_graph, path_graph):
        views = self.build(triangle_graph, path_graph)
        discriminative = views.discriminative_patterns(0)
        assert len(discriminative) == 1  # the "A" pattern does not occur in label 1 subgraphs

    def test_add_replaces_existing_label(self, triangle_graph, path_graph):
        views = self.build(triangle_graph, path_graph)
        replacement = ExplanationView(label=0, explainability=9.0)
        views.add(replacement)
        assert views.view_for(0).explainability == 9.0
        assert len(views) == 2

    def test_to_dict(self, triangle_graph, path_graph):
        payload = self.build(triangle_graph, path_graph).to_dict()
        assert len(payload["views"]) == 2
