"""Identity tests for the optional compiled matching kernel.

numba is an optional ``[perf]`` extra and is typically absent in CI, so the
kernel is exercised here *interpreted* — :func:`match_count_kernel` runs the
exact function numba would compile, which pins the semantics the JIT'd
variant inherits.  The engine-level tests additionally flip
``MatchEngine.use_compiled`` both ways: with numba absent both routes take
the interpreted search, and with it present the compiled route must agree —
either way the assertions are against the reference matcher.
"""

import random

import pytest

from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern
from repro.matching.compiled import compiled_available, compiled_count, match_count_kernel
from repro.matching.engine import MatchEngine, _kernel_inputs, _PatternIndex
from repro.matching.isomorphism import count_matchings as reference_count
from repro.matching.isomorphism import has_matching as reference_has

_TYPES = ["A", "B", "C"]
_EDGE_TYPES = ["x", "y"]


def _random_graph(rng: random.Random, num_nodes: int, edge_probability: float) -> Graph:
    graph = Graph()
    for node in range(num_nodes):
        graph.add_node(node, node_type=rng.choice(_TYPES))
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(u, v, edge_type=rng.choice(_EDGE_TYPES))
    return graph


def _kernel_count(pattern: GraphPattern, graph: Graph, cap: int = -1) -> int:
    view = graph.sparse_view()
    index = _PatternIndex(pattern, view)
    if not index.feasible:
        return 0
    return match_count_kernel(*_kernel_inputs(index, view), cap)


class TestKernelIdentity:
    def test_counts_match_reference_on_random_graphs(self):
        rng = random.Random(0)
        feasible = 0
        for _ in range(60):
            # Above SMALL_GRAPH_NODES so these sizes really take the
            # indexed/compiled route inside the engine.
            graph = _random_graph(rng, rng.randint(26, 36), rng.uniform(0.05, 0.2))
            pattern = GraphPattern.from_graph(_random_graph(rng, rng.randint(1, 4), 0.6))
            expected = reference_count(pattern, graph)
            assert _kernel_count(pattern, graph) == expected
            cap = rng.randint(1, 5)
            assert _kernel_count(pattern, graph, cap) == min(expected, cap)
            assert (_kernel_count(pattern, graph, 1) > 0) == reference_has(pattern, graph)
            feasible += expected > 0
        assert feasible > 0  # the fuzz must exercise non-trivial matches

    def test_cap_zero_counts_nothing(self):
        rng = random.Random(1)
        graph = _random_graph(rng, 26, 0.3)
        pattern = GraphPattern.from_graph(_random_graph(rng, 2, 1.0))
        assert _kernel_count(pattern, graph, 0) == 0

    def test_disconnected_pattern(self):
        rng = random.Random(2)
        graph = _random_graph(rng, 28, 0.15)
        isolated = Graph()
        isolated.add_node(0, node_type="A")
        isolated.add_node(1, node_type="B")  # no edge: disconnected pattern
        pattern = GraphPattern.from_graph(isolated)
        assert _kernel_count(pattern, graph) == reference_count(pattern, graph)


class TestEngineRouting:
    @pytest.mark.parametrize("use_compiled", [True, False])
    def test_engine_matches_reference_either_route(self, use_compiled):
        rng = random.Random(3)
        engine = MatchEngine()
        engine.use_compiled = use_compiled
        for _ in range(15):
            graph = _random_graph(rng, rng.randint(26, 34), 0.12)
            pattern = GraphPattern.from_graph(_random_graph(rng, rng.randint(1, 4), 0.6))
            assert engine.has_matching(pattern, graph) == reference_has(pattern, graph)
            assert engine.count_matchings(pattern, graph) == reference_count(pattern, graph)
            assert engine.count_matchings(pattern, graph, limit=3) == reference_count(
                pattern, graph, limit=3
            )

    def test_compiled_available_is_stable_bool(self):
        first = compiled_available()
        assert isinstance(first, bool)
        assert compiled_available() is first  # latched, never re-probes

    def test_compiled_count_falls_back_when_not_compiled(self):
        # Without numba the defensive fallback must still answer correctly.
        rng = random.Random(4)
        graph = _random_graph(rng, 26, 0.2)
        pattern = GraphPattern.from_graph(_random_graph(rng, 2, 1.0))
        view = graph.sparse_view()
        index = _PatternIndex(pattern, view)
        if not index.feasible:
            pytest.skip("prefilters certified emptiness for this draw")
        arrays = _kernel_inputs(index, view)
        assert compiled_count(*arrays, -1) == match_count_kernel(*arrays, -1)
