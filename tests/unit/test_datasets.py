"""Unit tests for the synthetic dataset builders and registry."""

import pytest

from repro.datasets import (
    ATOM_TYPES,
    available_datasets,
    load_dataset,
    make_ba_motif_synthetic,
    make_enzymes,
    make_malnet_tiny,
    make_mutagenicity,
    make_pcqm4m,
    make_products,
    make_reddit_binary,
)
from repro.exceptions import DatasetError
from repro.graphs import GraphPattern
from repro.matching import has_matching


class TestRegistry:
    def test_available_datasets_count(self):
        # The paper's seven substrates plus the SCALE-STRESS regime.
        assert len(available_datasets()) == 8
        assert available_datasets()[-1] == "SCALE-STRESS"

    def test_load_by_alias_and_name(self):
        by_alias = load_dataset("MUT", num_graphs=4, seed=0)
        by_name = load_dataset("MUTAGENICITY", num_graphs=4, seed=0)
        assert by_alias.name == by_name.name == "MUTAGENICITY"

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("IMAGENET")

    @pytest.mark.parametrize("alias", ["MUT", "RED", "ENZ", "MAL", "PCQ", "PRO", "SYN"])
    def test_every_alias_builds(self, alias):
        database = load_dataset(alias, num_graphs=8, seed=1)
        assert len(database) == 8
        assert all(graph.is_connected() for graph in database.graphs)


class TestMutagenicity:
    def test_classes_balanced(self):
        database = make_mutagenicity(num_graphs=10, seed=0)
        assert database.labels.count(0) == 5
        assert database.labels.count(1) == 5

    def test_feature_dimension_matches_atom_vocabulary(self):
        database = make_mutagenicity(num_graphs=4, seed=0)
        graph = database[0]
        assert graph.node_features(graph.nodes[0]).shape == (len(ATOM_TYPES),)

    def test_mutagens_contain_nitro_group_and_nonmutagens_do_not(self):
        database = make_mutagenicity(num_graphs=10, seed=2)
        nitro = GraphPattern()
        nitro.add_node(0, "N")
        nitro.add_node(1, "O")
        nitro.add_node(2, "O")
        nitro.add_edge(0, 1, "double")
        nitro.add_edge(0, 2, "double")
        for graph, label in zip(database.graphs, database.labels):
            assert has_matching(nitro, graph) == (label == 1)

    def test_too_few_graphs_rejected(self):
        with pytest.raises(DatasetError):
            make_mutagenicity(num_graphs=1)


class TestRedditBinary:
    def test_question_answer_threads_have_expert_hubs(self):
        database = make_reddit_binary(num_graphs=6, seed=1, base_size=16)
        for graph, label in zip(database.graphs, database.labels):
            max_degree = max(graph.degree(node) for node in graph.nodes)
            if label == 1:
                # Discussion threads are star-like: one dominant hub.
                assert max_degree >= graph.num_nodes() * 0.4

    def test_degree_features_assigned(self):
        database = make_reddit_binary(num_graphs=4, seed=1, base_size=12)
        graph = database[0]
        assert graph.node_features(graph.nodes[0]).shape == (4,)


class TestOtherDatasets:
    def test_enzymes_has_six_classes(self):
        database = make_enzymes(num_graphs=12, seed=0)
        assert database.class_labels() == list(range(6))

    def test_enzymes_requires_enough_graphs(self):
        with pytest.raises(DatasetError):
            make_enzymes(num_graphs=3)

    def test_malnet_has_five_classes(self):
        database = make_malnet_tiny(num_graphs=10, seed=0, tree_size=20)
        assert database.class_labels() == list(range(5))

    def test_malnet_graphs_are_larger(self):
        database = make_malnet_tiny(num_graphs=5, seed=0, tree_size=30)
        assert database.statistics()["avg_nodes"] > 25

    def test_pcq_feature_dimension(self):
        database = make_pcqm4m(num_graphs=6, seed=0)
        graph = database[0]
        assert graph.node_features(graph.nodes[0]).shape == (9,)
        assert database.class_labels() == [0, 1, 2]

    def test_products_num_classes_configurable(self):
        database = make_products(num_graphs=8, seed=0, num_classes=2)
        assert database.class_labels() == [0, 1]

    def test_products_rejects_single_class(self):
        with pytest.raises(DatasetError):
            make_products(num_graphs=8, num_classes=1)

    def test_synthetic_motifs_differ_by_class(self):
        database = make_ba_motif_synthetic(num_graphs=6, seed=0, base_size=15)
        house_types = [graph.type_counts().get("house", 0) for graph in database.graphs]
        cycle_types = [graph.type_counts().get("cycle", 0) for graph in database.graphs]
        for label, houses, cycles in zip(database.labels, house_types, cycle_types):
            if label == 0:
                assert houses > 0 and cycles == 0
            else:
                assert cycles > 0 and houses == 0

    def test_datasets_are_seed_deterministic(self):
        first = make_pcqm4m(num_graphs=5, seed=3)
        second = make_pcqm4m(num_graphs=5, seed=3)
        assert [g.edges for g in first.graphs] == [g.edges for g in second.graphs]
