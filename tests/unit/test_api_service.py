"""Unit tests for `repro.api.service` (and the backing `ViewStore`)."""

from __future__ import annotations

import pytest

from repro.api import (
    ExplainRequest,
    ExplanationService,
    ViewStore,
    views_equal,
)
from repro.core import Configuration
from repro.exceptions import ExplanationError


@pytest.fixture
def service(mut_database, trained_mut_model):
    """A service adopting the session-scoped trained MUT context."""
    return ExplanationService(
        "MUT",
        database=mut_database,
        model=trained_mut_model,
        config=Configuration().with_default_bound(0, 5),
    )


class TestConstruction:
    def test_adopt_path_requires_both_parts(self, mut_database):
        with pytest.raises(ExplanationError, match="both 'database' and 'model'"):
            ExplanationService("MUT", database=mut_database)

    def test_train_path_requires_a_dataset(self):
        with pytest.raises(ExplanationError, match="dataset name"):
            ExplanationService()

    def test_train_path_builds_a_context(self):
        trained = ExplanationService("SYN", epochs=3, num_graphs=6, seed=11)
        assert trained.train_accuracy is not None
        assert len(trained.database) == 6


class TestExplainAndCache:
    def test_explain_returns_provenance(self, service):
        result = service.explain(algorithm="approx", limit=3)
        assert result.provenance.algorithm == "approx"
        assert result.provenance.dataset == "MUT"
        assert result.provenance.num_graphs <= 3
        assert result.provenance.cache_hit is False
        assert result.provenance.runtime_seconds > 0.0
        assert len(result.provenance.config_fingerprint) == 16
        assert result.view.subgraphs

    def test_second_call_is_a_cache_hit(self, service):
        first = service.explain(algorithm="approx", limit=3)
        second = service.explain(algorithm="approx", limit=3)
        assert second.provenance.cache_hit is True
        assert views_equal(first.view, second.view)
        assert service.store.stats()["hits"] >= 1

    def test_request_object_and_kwargs_agree(self, service):
        request = ExplainRequest(algorithm="approx", limit=3, config=service.config)
        via_request = service.explain(request)
        via_kwargs = service.explain(algorithm="approx", limit=3)
        assert via_kwargs.provenance.cache_hit is True
        assert views_equal(via_request.view, via_kwargs.view)

    def test_parameter_changes_miss_the_cache(self, service):
        service.explain(algorithm="approx", limit=3, max_nodes=4)
        other = service.explain(algorithm="approx", limit=3, max_nodes=5)
        assert other.provenance.cache_hit is False

    def test_label_resolution_picks_a_predicted_label(self, service):
        result = service.explain(algorithm="approx", limit=2)
        assert result.provenance.label in set(
            service.model.predict(graph) for graph in service.database.graphs
        )

    def test_limited_selection_puts_test_split_graphs_first(self):
        """The paper explains the test split; limits must respect that."""
        trained = ExplanationService("SYN", epochs=3, num_graphs=8, seed=11)
        assert trained._test_ids, "train path should record the test split"
        request = ExplainRequest(algorithm="approx", limit=2)
        request = trained._resolve_label(request)
        selected = trained._select_graphs(request)
        predicted = trained._predicted_labels()
        expected = [
            graph_id
            for graph_id in trained._test_ids
            if predicted.get(graph_id) == request.label
        ]
        for graph, graph_id in zip(selected, expected):
            assert graph.graph_id == graph_id

    def test_graph_ids_restrict_the_job(self, service):
        graph = service.database.graphs[0]
        label = service.model.predict(graph)
        result = service.explain(
            algorithm="approx", label=label, graph_ids=[graph.graph_id]
        )
        assert result.provenance.num_graphs == 1
        assert all(
            subgraph.source_graph.graph_id == graph.graph_id
            for subgraph in result.view.subgraphs
        )

    def test_baseline_algorithms_flow_through_the_same_cache(self, service):
        first = service.explain(algorithm="random", limit=2, max_nodes=3)
        second = service.explain(algorithm="random", limit=2, max_nodes=3)
        assert first.view.patterns, "baseline views are two-tier as well"
        assert second.provenance.cache_hit is True


class TestExplainMany:
    def test_covers_every_predicted_label(self, service):
        results = service.explain_many(limit=2)
        labels = [result.provenance.label for result in results]
        assert labels == sorted(set(labels))
        assert len(results) >= 1

    def test_second_fanout_is_served_from_cache(self, service):
        service.explain_many(limit=2)
        again = service.explain_many(limit=2)
        assert all(result.provenance.cache_hit for result in again)

    def test_parallel_fanout_matches_serial_node_sets(self, mut_database, trained_mut_model):
        config = Configuration().with_default_bound(0, 4)
        serial = ExplanationService(
            "MUT", database=mut_database, model=trained_mut_model, config=config
        )
        parallel = ExplanationService(
            "MUT", database=mut_database, model=trained_mut_model, config=config
        )
        serial_results = serial.explain_many(algorithm="approx")
        parallel_results = parallel.explain_many(algorithm="approx", num_workers=2)
        assert len(serial_results) == len(parallel_results)
        for left, right in zip(serial_results, parallel_results):
            assert left.provenance.label == right.provenance.label
            assert sorted(sorted(s.nodes) for s in left.view.subgraphs) == sorted(
                sorted(s.nodes) for s in right.view.subgraphs
            )


class TestStoreSpill:
    def test_evicted_entries_reload_from_disk(self, tmp_path, mut_database, trained_mut_model):
        service = ExplanationService(
            "MUT",
            database=mut_database,
            model=trained_mut_model,
            cache_size=1,
            cache_dir=tmp_path / "cache",
        )
        first = service.explain(algorithm="approx", limit=2, max_nodes=3)
        service.explain(algorithm="approx", limit=2, max_nodes=4)  # evicts the first
        assert service.store.stats()["memory_entries"] == 1
        again = service.explain(algorithm="approx", limit=2, max_nodes=3)
        assert again.provenance.cache_hit is True
        assert views_equal(first.view, again.view)
        assert service.store.stats()["disk_loads"] >= 1

    def test_restarted_service_starts_warm(self, tmp_path, mut_database, trained_mut_model):
        cache_dir = tmp_path / "cache"
        first_service = ExplanationService(
            "MUT", database=mut_database, model=trained_mut_model, cache_dir=cache_dir
        )
        original = first_service.explain(algorithm="approx", limit=2)
        restarted = ExplanationService(
            "MUT", database=mut_database, model=trained_mut_model, cache_dir=cache_dir
        )
        warm = restarted.explain(algorithm="approx", limit=2)
        assert warm.provenance.cache_hit is True
        assert views_equal(original.view, warm.view)
        # Reloaded subgraphs resolve against the live database objects.
        assert all(
            subgraph.source_graph is restarted._graphs_by_id[subgraph.source_graph.graph_id]
            for subgraph in warm.view.subgraphs
        )

    def test_store_capacity_must_be_positive(self):
        with pytest.raises(ExplanationError, match="capacity"):
            ViewStore(capacity=0)

    def test_different_model_never_hits_the_shared_cache(self, tmp_path, mut_database):
        """A retrained model must not be served another model's views."""
        from repro.gnn import GNNClassifier

        cache_dir = tmp_path / "cache"
        first_model = GNNClassifier(
            feature_dim=14, num_classes=2, hidden_dim=8, num_layers=2, seed=1
        )
        second_model = GNNClassifier(
            feature_dim=14, num_classes=2, hidden_dim=8, num_layers=2, seed=2
        )
        first = ExplanationService(
            "MUT", database=mut_database, model=first_model, cache_dir=cache_dir
        )
        second = ExplanationService(
            "MUT", database=mut_database, model=second_model, cache_dir=cache_dir
        )
        first.explain(algorithm="random", limit=2, max_nodes=3)
        other = second.explain(algorithm="random", limit=2, max_nodes=3)
        assert other.provenance.cache_hit is False
        assert first._context_fingerprint != second._context_fingerprint


class TestQueryFacade:
    def test_query_without_views_is_an_error(self, service):
        with pytest.raises(ExplanationError, match="no views stored"):
            service.query()

    def test_query_answers_after_explain(self, service):
        result = service.explain(algorithm="approx", limit=3)
        query = service.query()
        label = result.provenance.label
        assert query.patterns(label) == result.view.patterns
        summary = query.summary()
        assert label in summary
        witness_graph = result.view.subgraphs[0].source_graph.graph_id
        witness = query.witness(witness_graph)
        assert witness is not None
        assert witness["label"] == label

    def test_report_combines_fidelity_and_conciseness(self, service):
        result = service.explain(algorithm="approx", limit=3)
        report = service.query().report(result.provenance.label)
        assert set(report) == {"label", "fidelity", "conciseness"}
        assert "fidelity_plus" in report["fidelity"]
        assert "sparsity" in report["conciseness"]

    def test_labels_with_pattern(self, service):
        result = service.explain(algorithm="approx", limit=3)
        if result.view.patterns:
            labels = service.query().labels_with_pattern(result.view.patterns[0])
            assert result.provenance.label in labels


class TestPersistence:
    def test_save_and_reload_views(self, tmp_path, service):
        result = service.explain(algorithm="approx", limit=3)
        path = service.save_views(tmp_path / "views.json")
        fresh = ExplanationService(
            "MUT", database=service.database, model=service.model
        )
        loaded = fresh.load_views(path)
        assert len(loaded) == 1
        assert views_equal(loaded[0].view, result.view)
        # Loaded views serve queries without any explainer run.
        assert fresh.query().summary()

    def test_save_without_views_is_an_error(self, tmp_path, service):
        with pytest.raises(ExplanationError, match="no views"):
            service.save_views(tmp_path / "empty.json")

    def test_stats_snapshot(self, service):
        service.explain(algorithm="approx", limit=2)
        stats = service.stats()
        assert stats["dataset"] == "MUT"
        assert stats["num_graphs"] == len(service.database)
        assert stats["labels_explained"]
        assert "cache" in stats
