"""Unit tests for `repro.api.service` (and the backing `ViewStore`)."""

from __future__ import annotations

import pytest

from repro.api import (
    ExplainRequest,
    ExplanationService,
    ViewStore,
    views_equal,
)
from repro.core import Configuration
from repro.exceptions import ExplanationError


@pytest.fixture
def service(mut_database, trained_mut_model):
    """A service adopting the session-scoped trained MUT context."""
    return ExplanationService(
        "MUT",
        database=mut_database,
        model=trained_mut_model,
        config=Configuration().with_default_bound(0, 5),
    )


class TestConstruction:
    def test_adopt_path_requires_both_parts(self, mut_database):
        with pytest.raises(ExplanationError, match="both 'database' and 'model'"):
            ExplanationService("MUT", database=mut_database)

    def test_train_path_requires_a_dataset(self):
        with pytest.raises(ExplanationError, match="dataset name"):
            ExplanationService()

    def test_train_path_builds_a_context(self):
        trained = ExplanationService("SYN", epochs=3, num_graphs=6, seed=11)
        assert trained.train_accuracy is not None
        assert len(trained.database) == 6


class TestExplainAndCache:
    def test_explain_returns_provenance(self, service):
        result = service.explain(algorithm="approx", limit=3)
        assert result.provenance.algorithm == "approx"
        assert result.provenance.dataset == "MUT"
        assert result.provenance.num_graphs <= 3
        assert result.provenance.cache_hit is False
        assert result.provenance.runtime_seconds > 0.0
        assert len(result.provenance.config_fingerprint) == 16
        assert result.view.subgraphs

    def test_second_call_is_a_cache_hit(self, service):
        first = service.explain(algorithm="approx", limit=3)
        second = service.explain(algorithm="approx", limit=3)
        assert second.provenance.cache_hit is True
        assert views_equal(first.view, second.view)
        assert service.store.stats()["hits"] >= 1

    def test_request_object_and_kwargs_agree(self, service):
        request = ExplainRequest(algorithm="approx", limit=3, config=service.config)
        via_request = service.explain(request)
        via_kwargs = service.explain(algorithm="approx", limit=3)
        assert via_kwargs.provenance.cache_hit is True
        assert views_equal(via_request.view, via_kwargs.view)

    def test_parameter_changes_miss_the_cache(self, service):
        service.explain(algorithm="approx", limit=3, max_nodes=4)
        other = service.explain(algorithm="approx", limit=3, max_nodes=5)
        assert other.provenance.cache_hit is False

    def test_label_resolution_picks_a_predicted_label(self, service):
        result = service.explain(algorithm="approx", limit=2)
        assert result.provenance.label in set(
            service.model.predict(graph) for graph in service.database.graphs
        )

    def test_limited_selection_puts_test_split_graphs_first(self):
        """The paper explains the test split; limits must respect that."""
        trained = ExplanationService("SYN", epochs=3, num_graphs=8, seed=11)
        assert trained._test_ids, "train path should record the test split"
        request = ExplainRequest(algorithm="approx", limit=2)
        request = trained._resolve_label(request)
        selected = trained._select_graphs(request)
        predicted = trained._predicted_labels()
        expected = [
            graph_id
            for graph_id in trained._test_ids
            if predicted.get(graph_id) == request.label
        ]
        for graph, graph_id in zip(selected, expected):
            assert graph.graph_id == graph_id

    def test_graph_ids_restrict_the_job(self, service):
        graph = service.database.graphs[0]
        label = service.model.predict(graph)
        result = service.explain(
            algorithm="approx", label=label, graph_ids=[graph.graph_id]
        )
        assert result.provenance.num_graphs == 1
        assert all(
            subgraph.source_graph.graph_id == graph.graph_id
            for subgraph in result.view.subgraphs
        )

    def test_baseline_algorithms_flow_through_the_same_cache(self, service):
        first = service.explain(algorithm="random", limit=2, max_nodes=3)
        second = service.explain(algorithm="random", limit=2, max_nodes=3)
        assert first.view.patterns, "baseline views are two-tier as well"
        assert second.provenance.cache_hit is True


class TestExplainMany:
    def test_covers_every_predicted_label(self, service):
        results = service.explain_many(limit=2)
        labels = [result.provenance.label for result in results]
        assert labels == sorted(set(labels))
        assert len(results) >= 1

    def test_second_fanout_is_served_from_cache(self, service):
        service.explain_many(limit=2)
        again = service.explain_many(limit=2)
        assert all(result.provenance.cache_hit for result in again)

    def test_parallel_fanout_matches_serial_node_sets(self, mut_database, trained_mut_model):
        config = Configuration().with_default_bound(0, 4)
        serial = ExplanationService(
            "MUT", database=mut_database, model=trained_mut_model, config=config
        )
        parallel = ExplanationService(
            "MUT", database=mut_database, model=trained_mut_model, config=config
        )
        serial_results = serial.explain_many(algorithm="approx")
        parallel_results = parallel.explain_many(algorithm="approx", num_workers=2)
        assert len(serial_results) == len(parallel_results)
        for left, right in zip(serial_results, parallel_results):
            assert left.provenance.label == right.provenance.label
            assert sorted(sorted(s.nodes) for s in left.view.subgraphs) == sorted(
                sorted(s.nodes) for s in right.view.subgraphs
            )


class TestStoreSpill:
    def test_evicted_entries_reload_from_disk(self, tmp_path, mut_database, trained_mut_model):
        service = ExplanationService(
            "MUT",
            database=mut_database,
            model=trained_mut_model,
            cache_size=1,
            cache_dir=tmp_path / "cache",
        )
        first = service.explain(algorithm="approx", limit=2, max_nodes=3)
        service.explain(algorithm="approx", limit=2, max_nodes=4)  # evicts the first
        assert service.store.stats()["memory_entries"] == 1
        again = service.explain(algorithm="approx", limit=2, max_nodes=3)
        assert again.provenance.cache_hit is True
        assert views_equal(first.view, again.view)
        assert service.store.stats()["disk_loads"] >= 1

    def test_restarted_service_starts_warm(self, tmp_path, mut_database, trained_mut_model):
        cache_dir = tmp_path / "cache"
        first_service = ExplanationService(
            "MUT", database=mut_database, model=trained_mut_model, cache_dir=cache_dir
        )
        original = first_service.explain(algorithm="approx", limit=2)
        restarted = ExplanationService(
            "MUT", database=mut_database, model=trained_mut_model, cache_dir=cache_dir
        )
        warm = restarted.explain(algorithm="approx", limit=2)
        assert warm.provenance.cache_hit is True
        assert views_equal(original.view, warm.view)
        # Reloaded subgraphs resolve against the live database objects.
        assert all(
            subgraph.source_graph is restarted._graphs_by_id[subgraph.source_graph.graph_id]
            for subgraph in warm.view.subgraphs
        )

    def test_store_capacity_must_be_positive(self):
        with pytest.raises(ExplanationError, match="capacity"):
            ViewStore(capacity=0)

    def test_different_model_never_hits_the_shared_cache(self, tmp_path, mut_database):
        """A retrained model must not be served another model's views."""
        from repro.gnn import GNNClassifier

        cache_dir = tmp_path / "cache"
        first_model = GNNClassifier(
            feature_dim=14, num_classes=2, hidden_dim=8, num_layers=2, seed=1
        )
        second_model = GNNClassifier(
            feature_dim=14, num_classes=2, hidden_dim=8, num_layers=2, seed=2
        )
        first = ExplanationService(
            "MUT", database=mut_database, model=first_model, cache_dir=cache_dir
        )
        second = ExplanationService(
            "MUT", database=mut_database, model=second_model, cache_dir=cache_dir
        )
        first.explain(algorithm="random", limit=2, max_nodes=3)
        other = second.explain(algorithm="random", limit=2, max_nodes=3)
        assert other.provenance.cache_hit is False
        assert first._context_fingerprint != second._context_fingerprint


class TestQueryFacade:
    def test_query_without_views_is_an_error(self, service):
        with pytest.raises(ExplanationError, match="no views stored"):
            service.query()

    def test_query_answers_after_explain(self, service):
        result = service.explain(algorithm="approx", limit=3)
        query = service.query()
        label = result.provenance.label
        assert query.patterns(label) == result.view.patterns
        summary = query.summary()
        assert label in summary
        witness_graph = result.view.subgraphs[0].source_graph.graph_id
        witness = query.witness(witness_graph)
        assert witness is not None
        assert witness["label"] == label

    def test_report_combines_fidelity_and_conciseness(self, service):
        result = service.explain(algorithm="approx", limit=3)
        report = service.query().report(result.provenance.label)
        assert set(report) == {"label", "fidelity", "conciseness"}
        assert "fidelity_plus" in report["fidelity"]
        assert "sparsity" in report["conciseness"]

    def test_labels_with_pattern(self, service):
        result = service.explain(algorithm="approx", limit=3)
        if result.view.patterns:
            labels = service.query().labels_with_pattern(result.view.patterns[0])
            assert result.provenance.label in labels


class TestPersistence:
    def test_save_and_reload_views(self, tmp_path, service):
        result = service.explain(algorithm="approx", limit=3)
        path = service.save_views(tmp_path / "views.json")
        fresh = ExplanationService(
            "MUT", database=service.database, model=service.model
        )
        loaded = fresh.load_views(path)
        assert len(loaded) == 1
        assert views_equal(loaded[0].view, result.view)
        # Loaded views serve queries without any explainer run.
        assert fresh.query().summary()

    def test_save_without_views_is_an_error(self, tmp_path, service):
        with pytest.raises(ExplanationError, match="no views"):
            service.save_views(tmp_path / "empty.json")

    def test_stats_snapshot(self, service):
        service.explain(algorithm="approx", limit=2)
        stats = service.stats()
        assert stats["dataset"] == "MUT"
        assert stats["num_graphs"] == len(service.database)
        assert stats["labels_explained"]
        assert "cache" in stats


@pytest.fixture(scope="module")
def mut_pool(mut_database):
    """Private graph copies: the dynamic tests warm sparse caches and mutate
    databases, which must never touch the session-scoped graphs."""
    return [graph.copy() for graph in mut_database.graphs]


@pytest.fixture
def live_service(mut_database, mut_pool, trained_mut_model):
    """A service over a *private* mutable copy of the session database."""
    from repro.graphs import GraphDatabase

    database = GraphDatabase("live")
    for graph, label in zip(mut_pool[:10], mut_database.labels[:10]):
        database.add_graph(graph, label)
    service = ExplanationService(
        "MUT",
        database=database,
        model=trained_mut_model,
        config=Configuration(theta=0.08).with_default_bound(0, 8),
    )
    yield service
    service.close()


class TestDynamicDatabase:
    def test_stream_requests_are_served_by_the_maintainer(self, live_service):
        live_service.enable_live_views()
        streamed = live_service.maintainer.graphs_streamed
        result = live_service.explain(algorithm="stream", label=1)
        # Served straight from maintained state: no additional streaming.
        assert live_service.maintainer.graphs_streamed == streamed
        assert result.view.subgraphs
        again = live_service.explain(algorithm="stream", label=1)
        assert again.provenance.cache_hit

    def test_ingest_refreshes_instead_of_recomputing(
        self, live_service, mut_database, mut_pool, trained_mut_model
    ):
        from repro.core.streaming import StreamGVEX

        live_service.enable_live_views()
        streamed = live_service.maintainer.graphs_streamed
        summary = live_service.ingest(mut_pool[10], mut_database.labels[10])
        # One per-graph pass for the arrival; every maintained label refreshed.
        assert live_service.maintainer.graphs_streamed == streamed + 1
        assert summary["refreshed_labels"] == live_service.maintainer.maintained_labels()
        assert summary["num_graphs"] == 11

        result = live_service.explain(algorithm="stream", label=1)
        assert result.provenance.cache_hit  # refreshed entry already cached
        reference = StreamGVEX(
            trained_mut_model, live_service.config
        ).explain_label(live_service.database.graphs, 1)
        assert [sorted(s.nodes) for s in result.view.subgraphs] == [
            sorted(s.nodes) for s in reference.subgraphs
        ]

    def test_mutation_invalidates_non_stream_results(self, live_service, mut_database, mut_pool):
        first = live_service.explain(algorithm="approx", label=1)
        assert not first.provenance.cache_hit
        cached = live_service.explain(algorithm="approx", label=1)
        assert cached.provenance.cache_hit
        live_service.ingest(mut_pool[11], mut_database.labels[11])
        recomputed = live_service.explain(algorithm="approx", label=1)
        assert not recomputed.provenance.cache_hit
        assert recomputed.provenance.num_graphs == 11

    def test_stale_latest_views_are_dropped_on_mutation(self, live_service, mut_database, mut_pool):
        live_service.explain(algorithm="approx", label=1)
        assert 1 in live_service.view_set().labels()
        live_service.ingest(mut_pool[12], mut_database.labels[12])
        # Without a maintainer nothing is refreshed; the stale view is gone.
        assert live_service.view_set().labels() == []

    def test_remove_and_relabel_round_trip(self, live_service):
        live_service.enable_live_views()
        victim = live_service.database.graphs[4].graph_id
        summary = live_service.remove(victim)
        assert summary["op"] == "remove"
        assert summary["num_graphs"] == 9
        assert victim not in [g.graph_id for g in live_service.database.graphs]
        target = live_service.database.graphs[0].graph_id
        summary = live_service.relabel(target, 1)
        assert summary["op"] == "relabel"
        assert live_service.database.label_of(0) == 1

    def test_duplicate_ingest_id_rejected(self, live_service, mut_database, mut_pool):
        existing = live_service.database.graphs[0].graph_id
        with pytest.raises(ExplanationError, match="already in the database"):
            live_service.ingest(mut_pool[13], graph_id=existing)

    def test_predicted_labels_updated_incrementally(self, live_service, mut_database, mut_pool):
        live_service.explain(algorithm="approx", label=1)  # builds the memo
        graph = mut_pool[10]
        live_service.ingest(graph, mut_database.labels[10])
        assert graph.graph_id in live_service._predicted_labels()
        live_service.remove(graph.graph_id)
        assert graph.graph_id not in live_service._predicted_labels()

    def test_close_stops_tracking(self, live_service, mut_database, mut_pool):
        live_service.close()
        version = live_service._context_fingerprint
        live_service.database.add_graph(mut_pool[14], mut_database.labels[14])
        assert live_service._context_fingerprint == version


class TestMaintainerWarmRestart:
    def test_restart_restores_without_restreaming(
        self, tmp_path, mut_database, mut_pool, trained_mut_model
    ):
        from repro.graphs import GraphDatabase

        config = Configuration(theta=0.08).with_default_bound(0, 8)
        database = GraphDatabase("live")
        for graph, label in zip(mut_pool[:8], mut_database.labels[:8]):
            database.add_graph(graph, label)
        first = ExplanationService(
            "MUT",
            database=database,
            model=trained_mut_model,
            config=config,
            cache_dir=tmp_path,
            live_views=True,
        )
        first.ingest(mut_pool[8], mut_database.labels[8])
        first.close()

        second = ExplanationService(
            "MUT",
            database=database,
            model=trained_mut_model,
            config=config,
            cache_dir=tmp_path,
        )
        maintainer = second.enable_live_views()
        assert maintainer.graphs_streamed == 0
        assert maintainer.stats()["rows"] == 9
        second.close()

    def test_restart_with_other_config_rebuilds(
        self, tmp_path, mut_database, mut_pool, trained_mut_model
    ):
        from repro.graphs import GraphDatabase

        database = GraphDatabase("live")
        for graph, label in zip(mut_pool[:6], mut_database.labels[:6]):
            database.add_graph(graph, label)
        first = ExplanationService(
            "MUT",
            database=database,
            model=trained_mut_model,
            config=Configuration(theta=0.08).with_default_bound(0, 8),
            cache_dir=tmp_path,
            live_views=True,
        )
        first.close()
        second = ExplanationService(
            "MUT",
            database=database,
            model=trained_mut_model,
            config=Configuration(theta=0.2).with_default_bound(0, 6),
            cache_dir=tmp_path,
        )
        maintainer = second.enable_live_views()
        # Snapshot fingerprint mismatched: rebuilt by streaming afresh.
        assert maintainer.graphs_streamed == 6
        second.close()


class TestIngestValidation:
    def test_unclassifiable_graph_rejected_before_mutation(self, live_service):
        """A graph the model cannot classify (wrong feature dim) must be
        rejected cleanly with the database left untouched."""
        from repro.graphs import Graph

        bad = Graph()
        bad.add_node(0, "X", [1.0, 2.0])  # model expects feature_dim=14
        size = len(live_service.database)
        version = live_service.database.version
        with pytest.raises(ExplanationError, match="cannot classify"):
            live_service.ingest(bad, label=0)
        assert len(live_service.database) == size
        assert live_service.database.version == version

    def test_rejected_ingest_leaves_the_callers_graph_unmodified(self, live_service):
        """Finding: a rejected ingest must not have written the rejected id
        onto the caller's graph — the documented remedy (retry without an
        id) has to work."""
        from repro.graphs import Graph

        graph = Graph()
        for node in range(4):
            graph.add_node(node, "C", [1.0] * 14)
        graph.add_edge(0, 1)
        existing = live_service.database.graphs[0].graph_id
        with pytest.raises(ExplanationError, match="already in the database"):
            live_service.ingest(graph, graph_id=existing)
        assert graph.graph_id is None
        summary = live_service.ingest(graph, label=0)  # remedy works
        assert summary["graph_id"] is not None


class TestSnapshotIdentity:
    def test_snapshot_never_restores_across_databases(
        self, tmp_path, mut_database, mut_pool, trained_mut_model
    ):
        """Two same-model services over *different* databases sharing one
        cache_dir must not resurrect each other's maintained rows."""
        from repro.graphs import GraphDatabase

        config = Configuration(theta=0.08).with_default_bound(0, 8)
        first_db = GraphDatabase("first")
        for graph, label in zip(mut_pool[:6], mut_database.labels[:6]):
            first_db.add_graph(graph, label)
        first = ExplanationService(
            "MUT", database=first_db, model=trained_mut_model, config=config,
            cache_dir=tmp_path, live_views=True,
        )
        first.close()

        second_db = GraphDatabase("second")  # overlapping graph ids 0..5
        for graph, label in zip(mut_pool[6:12], mut_database.labels[6:12]):
            copy = graph.copy()
            copy.graph_id = None
            second_db.add_graph(copy, label)
        second = ExplanationService(
            "MUT", database=second_db, model=trained_mut_model, config=config,
            cache_dir=tmp_path,
        )
        maintainer = second.enable_live_views()
        # Nothing restored from the first database: every graph re-streamed.
        assert maintainer.graphs_streamed == 6
        for label in maintainer.maintained_labels():
            for subgraph in maintainer.view_for(label).subgraphs:
                assert subgraph.source_graph in second_db.graphs
        second.close()

    def test_closed_service_refuses_mutations(self, live_service, mut_pool):
        live_service.explain(algorithm="stream", label=1)
        live_service.close()
        with pytest.raises(ExplanationError, match="closed"):
            live_service.ingest(mut_pool[10], 1)
        with pytest.raises(ExplanationError, match="closed"):
            live_service.remove(live_service.database.graphs[0].graph_id)
        with pytest.raises(ExplanationError, match="closed"):
            live_service.relabel(live_service.database.graphs[0].graph_id, 0)

    def test_mutations_do_not_grow_the_spill_dir_unboundedly(
        self, tmp_path, mut_database, mut_pool, trained_mut_model
    ):
        """Stale per-version artifacts are discarded on mutation: the spill
        directory holds the current views + one maintainer snapshot, not
        O(mutations x labels) dead files."""
        from repro.graphs import GraphDatabase

        database = GraphDatabase("live")
        for graph, label in zip(mut_pool[:8], mut_database.labels[:8]):
            database.add_graph(graph, label)
        service = ExplanationService(
            "MUT",
            database=database,
            model=trained_mut_model,
            config=Configuration(theta=0.08).with_default_bound(0, 8),
            cache_dir=tmp_path,
            live_views=True,
        )
        for index in (8, 9, 10, 11):
            service.ingest(mut_pool[index], mut_database.labels[index])
        labels = len(service.maintainer.maintained_labels())
        spill_files = list(tmp_path.glob("*.json"))
        # current per-label views + the maintainer snapshot, nothing stale
        assert len(spill_files) <= labels + 1
        service.close()

    def test_ingest_runs_one_forward_pass_with_warm_memo(
        self, live_service, mut_pool, mut_database
    ):
        live_service.enable_live_views()
        live_service._predicted_labels()  # warm the memo
        calls = {"n": 0}
        real_predict = live_service.model.predict

        original = live_service.model.predict
        def counted(graph):
            calls["n"] += 1
            return real_predict(graph)
        live_service.model.predict = counted
        try:
            live_service.ingest(mut_pool[10], mut_database.labels[10])
        finally:
            live_service.model.predict = original
        # delta hook predicts once into the memo; the maintainer reads the
        # memo back instead of predicting again.
        assert calls["n"] == 1
