"""The sharded serving tier's router, driven on the inline backend.

The inline backend runs the *same* :class:`ShardHost` implementation the
worker processes host, minus the process boundary — so these tests pin the
tier's semantic contracts cheaply, and the process-backend integration
tests only need to re-check what the boundary itself can break.

Contracts pinned here:

* a 1-shard tier is **identical** to the single-process service for every
  request type (stream, approx, limit selections);
* whole-database stream requests stay identical at *any* shard count (the
  router reassembles deterministic per-graph rows in global order);
* mutations route to the owning shard, keep global/stored state agreeing,
  and are idempotent under retry;
* a killed worker is respawned from its bootstrap and the tier keeps
  answering.
"""

from __future__ import annotations

import os

import pytest

from repro.api import ExplanationService
from repro.api.replication import view_signature
from repro.api.sharding import ShardRouter
from repro.core import Configuration
from repro.exceptions import ExplanationError
from repro.graphs import Graph, GraphDatabase


@pytest.fixture(scope="module")
def shard_config():
    return Configuration(theta=0.08).with_default_bound(0, 8)


@pytest.fixture(scope="module")
def seed_payload(mut_database):
    """A 10-graph seed database, serialised once and copied per consumer."""
    database = GraphDatabase("seed")
    for graph, label in zip(mut_database.graphs[:10], mut_database.labels[:10]):
        database.add_graph(graph.copy(), label)
    return database.to_dict()


@pytest.fixture(scope="module")
def reference(seed_payload, trained_mut_model, shard_config):
    """The single-process oracle every sharded answer is held against."""
    service = ExplanationService(
        "MUT",
        database=GraphDatabase.from_dict(seed_payload),
        model=trained_mut_model,
        config=shard_config,
        live_views=True,
    )
    yield service
    service.close()


def make_router(seed_payload, model, config, num_shards, **kwargs) -> ShardRouter:
    return ShardRouter(
        "MUT",
        database=GraphDatabase.from_dict(seed_payload),
        model=model,
        num_shards=num_shards,
        config=config,
        backend="inline",
        **kwargs,
    )


def new_graph(mut_database, index=12) -> Graph:
    payload = mut_database.graphs[index].to_dict()
    payload["graph_id"] = None
    return Graph.from_dict(payload)


class TestShardedIdentity:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_stream_views_identical_at_any_shard_count(
        self, seed_payload, trained_mut_model, shard_config, reference, num_shards
    ):
        expected = {
            label: view_signature(reference.explain(algorithm="stream", label=label).view)
            for label in (0, 1)
        }
        with make_router(
            seed_payload, trained_mut_model, shard_config, num_shards
        ) as router:
            for label, signature in expected.items():
                result = router.explain(algorithm="stream", label=label)
                assert view_signature(result.view) == signature
                assert result.provenance.num_graphs == len(router.database)

    def test_single_shard_identical_for_every_request_type(
        self, seed_payload, trained_mut_model, shard_config, reference
    ):
        requests = [
            {"algorithm": "approx", "label": 1, "max_nodes": 6},
            {"algorithm": "approx", "label": 1, "max_nodes": 6, "limit": 3},
            {"algorithm": "approx", "label": 0, "max_nodes": 6, "graph_ids": [0, 2, 4]},
            {"algorithm": "stream", "label": 1},
        ]
        with make_router(seed_payload, trained_mut_model, shard_config, 1) as router:
            for request in requests:
                ours = router.explain(**request)
                oracle = reference.explain(**request)
                assert view_signature(ours.view) == view_signature(oracle.view)

    def test_multi_shard_approx_merges_per_shard_views(
        self, seed_payload, trained_mut_model, shard_config
    ):
        with make_router(seed_payload, trained_mut_model, shard_config, 2) as router:
            result = router.explain(algorithm="approx", label=1, max_nodes=6)
            sizes = router.plan.shard_sizes(router.database)
            assert result.view.metadata.get("merged_from") == sum(
                1 for size in sizes if size > 0
            )
            # Merged pattern ids are reassigned densely, like parallel_explain.
            assert [p.pattern_id for p in result.view.patterns] == list(
                range(len(result.view.patterns))
            )

    def test_uneven_shard_counts_still_assemble(self, seed_payload, trained_mut_model, shard_config, reference):
        # 5 shards over 10 graphs: CRC placement leaves shards with very
        # different sizes (some possibly empty) — assembly must not care.
        with make_router(seed_payload, trained_mut_model, shard_config, 5) as router:
            sizes = router.plan.shard_sizes(router.database)
            assert sum(sizes) == 10 and len(set(sizes)) > 1
            expected = view_signature(reference.explain(algorithm="stream", label=1).view)
            assert view_signature(router.explain(algorithm="stream", label=1).view) == expected

    def test_repeat_requests_hit_the_router_cache(
        self, seed_payload, trained_mut_model, shard_config
    ):
        with make_router(seed_payload, trained_mut_model, shard_config, 2) as router:
            first = router.explain(algorithm="stream", label=1)
            second = router.explain(algorithm="stream", label=1)
            assert not first.provenance.cache_hit
            assert second.provenance.cache_hit
            assert view_signature(first.view) == view_signature(second.view)


class TestShardedMutations:
    def test_ingest_routes_and_matches_single_process_state(
        self, seed_payload, trained_mut_model, shard_config, mut_database
    ):
        oracle = ExplanationService(
            "MUT",
            database=GraphDatabase.from_dict(seed_payload),
            model=trained_mut_model,
            config=shard_config,
            live_views=True,
        )
        router = make_router(seed_payload, trained_mut_model, shard_config, 2)
        try:
            summary = router.ingest(new_graph(mut_database), 1)
            oracle_summary = oracle.ingest(new_graph(mut_database), 1)
            # Same never-reused auto-id discipline as the plain database.
            assert summary["graph_id"] == oracle_summary["graph_id"]
            assert summary["num_graphs"] == oracle_summary["num_graphs"] == 11
            assert summary["shard"] == router.plan.shard_of(summary["graph_id"])
            # Post-mutation stream views agree with the single-process run.
            for label in (0, 1):
                assert view_signature(
                    router.explain(algorithm="stream", label=label).view
                ) == view_signature(oracle.explain(algorithm="stream", label=label).view)
        finally:
            router.close()
            oracle.close()

    def test_remove_and_relabel_route_to_the_owner(
        self, seed_payload, trained_mut_model, shard_config
    ):
        with make_router(seed_payload, trained_mut_model, shard_config, 2) as router:
            removed = router.remove(3)
            assert removed["op"] == "remove"
            assert removed["num_graphs"] == 9
            assert 3 not in {graph.graph_id for graph in router.database.graphs}
            relabelled = router.relabel(4, 0)
            assert relabelled["op"] == "relabel"
            labels = dict(zip(
                (graph.graph_id for graph in router.database.graphs),
                router.database.labels,
            ))
            assert labels[4] == 0
            # The owning shard's worker sees the same state.
            shard = router.plan.shard_of(4)
            rows = router._call(shard, "stream_rows", {"label": None})["rows"]
            stored = {row["graph_id"]: row["stored_label"] for row in rows}
            assert stored[4] == 0
            assert 3 not in stored or router.plan.shard_of(3) != shard

    def test_mutations_are_idempotent_under_retry(
        self, seed_payload, trained_mut_model, shard_config, mut_database
    ):
        with make_router(seed_payload, trained_mut_model, shard_config, 2) as router:
            graph = new_graph(mut_database)
            summary = router.ingest(graph, 1)
            shard = summary["shard"]
            # Replaying the exact worker op (the router's crash-retry path)
            # must answer success, not a duplicate-id error.
            retried = router._call(
                shard,
                "mutate",
                {
                    "kind": "ingest",
                    "graph": graph.to_dict(),
                    "graph_id": summary["graph_id"],
                    "label": 1,
                },
            )
            assert retried["already_applied"] is True
            removed = router.remove(summary["graph_id"])
            retried = router._call(
                shard, "mutate", {"kind": "remove", "graph_id": summary["graph_id"]}
            )
            assert retried["already_applied"] is True
            assert removed["num_graphs"] == len(router.database)

    def test_duplicate_ingest_is_rejected_before_routing(
        self, seed_payload, trained_mut_model, shard_config, mut_database
    ):
        with make_router(seed_payload, trained_mut_model, shard_config, 2) as router:
            graph = new_graph(mut_database)
            with pytest.raises(ExplanationError, match="already in the database"):
                router.ingest(graph, 1, graph_id=0)
            # The rejected ingest must not have touched anything.
            assert len(router.database) == 10


class TestFailureRecovery:
    def test_killed_worker_respawns_and_requests_succeed(
        self, seed_payload, trained_mut_model, shard_config, reference, tmp_path
    ):
        router = make_router(
            seed_payload, trained_mut_model, shard_config, 2,
            cache_dir=tmp_path / "cache", wal_dir=tmp_path / "wal",
        )
        try:
            expected = view_signature(reference.explain(algorithm="stream", label=1).view)
            assert view_signature(router.explain(algorithm="stream", label=1).view) == expected
            router.kill_worker(0)
            router.kill_worker(1)
            # Next requests transparently respawn both workers and retry.
            router.store.clear_memory()
            router.store.discard_prefix("")  # force recompute through workers
            assert view_signature(router.explain(algorithm="stream", label=1).view) == expected
            assert router.stats()["respawns"] == 2
        finally:
            router.close()

    def test_mutations_survive_respawn_through_the_wal(
        self, seed_payload, trained_mut_model, shard_config, mut_database, tmp_path
    ):
        router = make_router(
            seed_payload, trained_mut_model, shard_config, 2,
            cache_dir=tmp_path / "cache", wal_dir=tmp_path / "wal",
        )
        try:
            summary = router.ingest(new_graph(mut_database), 1)
            shard = summary["shard"]
            router.kill_worker(shard)
            rows = router._call(shard, "stream_rows", {"label": None})["rows"]
            assert summary["graph_id"] in {row["graph_id"] for row in rows}
            assert router.stats()["respawns"] == 1
        finally:
            router.close()


class TestServiceSurface:
    def test_stats_reports_every_shard(self, seed_payload, trained_mut_model, shard_config):
        with make_router(seed_payload, trained_mut_model, shard_config, 3) as router:
            stats = router.stats()
            assert stats["role"] == "shard-router"
            assert stats["num_shards"] == 3
            assert stats["shard_backend"] == "inline"
            assert sum(stats["shard_sizes"]) == 10
            assert len(stats["shards"]) == 3
            for entry in stats["shards"]:
                assert entry["alive"] is True
                assert entry["pid"] == os.getpid()
                assert "maintained_labels" in entry
                assert "shard_size" in entry
            assert "hit_rate" in stats["shard_cache_aggregate"]

    def test_query_facade_and_view_set(self, seed_payload, trained_mut_model, shard_config):
        with make_router(seed_payload, trained_mut_model, shard_config, 2) as router:
            router.explain(algorithm="stream", label=0)
            router.explain(algorithm="stream", label=1)
            views = router.view_set()
            assert sorted(view.label for view in views) == [0, 1]
            summary = router.query().summary()
            assert set(summary) == {0, 1}
            assert len(router.results()) == 2

    def test_live_views_assemble_every_maintained_label(
        self, seed_payload, trained_mut_model, shard_config, reference
    ):
        with make_router(seed_payload, trained_mut_model, shard_config, 2) as router:
            ours = {view.label: view_signature(view) for view in router.live_views()}
            oracle = {
                view.label: view_signature(view) for view in reference.live_views()
            }
            assert ours == oracle

    def test_replication_endpoints_refuse_in_sharded_mode(
        self, seed_payload, trained_mut_model, shard_config
    ):
        with make_router(seed_payload, trained_mut_model, shard_config, 2) as router:
            with pytest.raises(ExplanationError, match="own WAL"):
                router.delta_feed(0)
            with pytest.raises(ExplanationError, match="single-process primary"):
                router.replication_snapshot()

    def test_closed_router_refuses_work(self, seed_payload, trained_mut_model, shard_config):
        router = make_router(seed_payload, trained_mut_model, shard_config, 2)
        router.close()
        router.close()  # idempotent
        with pytest.raises(ExplanationError, match="closed"):
            router.explain(algorithm="stream", label=1)
