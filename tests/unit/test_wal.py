"""Unit tests for the write-ahead log (`repro.core.wal`).

The WAL's contract: every acknowledged append survives process death
(fsync'd before return), reopening a directory yields exactly the
acknowledged record sequence, a torn final record (the crash window) is
silently repaired, and any *other* corruption — interior damage, gaps,
tampered CRCs — fails loudly instead of replaying a wrong history.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api.serialize import delta_from_dict, delta_to_dict
from repro.core.wal import (
    DEFAULT_SEGMENT_MAX_RECORDS,
    WriteAheadLog,
    payload_crc,
)
from repro.exceptions import WALError
from repro.graphs import Graph, GraphDatabase


def make_graph(graph_id: int) -> Graph:
    graph = Graph(graph_id=graph_id)
    graph.add_node(0, "C", [1.0, 0.0])
    graph.add_node(1, "N", [0.0, 1.0])
    graph.add_edge(0, 1, "single")
    return graph


def fill(wal: WriteAheadLog, versions) -> None:
    for version in versions:
        wal.append({"n": version}, version)


class TestAppendAndReplay:
    def test_round_trip_through_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, range(1, 6))
            assert wal.last_version == 5
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_version == 5
            assert wal.payloads_since(0) == [{"n": v} for v in range(1, 6)]
            assert wal.payloads_since(3) == [{"n": 4}, {"n": 5}]
            assert wal.payloads_since(5) == []

    def test_records_since_pairs_versions_with_payloads(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, range(1, 4))
            assert list(wal.records_since(1)) == [(2, {"n": 2}), (3, {"n": 3})]

    def test_non_contiguous_append_is_refused(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append({"n": 1}, 1)
            with pytest.raises(WALError, match="expected 2"):
                wal.append({"n": 3}, 3)
            # version 1 acknowledged, the bad append left no trace
            assert wal.last_version == 1

    def test_reads_outside_the_covered_range_are_refused(self, tmp_path):
        with WriteAheadLog(tmp_path, base_version=10) as wal:
            fill(wal, range(11, 14))
            with pytest.raises(WALError):
                wal.payloads_since(5)
            with pytest.raises(WALError):
                wal.payloads_since(14)
            assert wal.payloads_since(10) == [{"n": v} for v in range(11, 14)]

    def test_base_version_survives_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path, base_version=40) as wal:
            fill(wal, [41, 42])
        with WriteAheadLog(tmp_path) as wal:  # base comes from the segment header
            assert wal.base_version == 40
            assert wal.last_version == 42

    def test_empty_directory_is_a_valid_empty_log(self, tmp_path):
        with WriteAheadLog(tmp_path, base_version=7) as wal:
            assert wal.base_version == 7
            assert wal.last_version == 7
            assert wal.num_segments == 0
            assert wal.payloads_since(7) == []


class TestRotation:
    def test_segments_rotate_at_the_record_cap(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_max_records=2) as wal:
            fill(wal, range(1, 6))
            assert wal.num_segments == 3
        names = sorted(p.name for p in tmp_path.glob("wal-*.jsonl"))
        assert names == [
            "wal-000000000000.jsonl",
            "wal-000000000002.jsonl",
            "wal-000000000004.jsonl",
        ]
        with WriteAheadLog(tmp_path) as wal:
            assert wal.payloads_since(0) == [{"n": v} for v in range(1, 6)]

    def test_reopen_appends_into_the_tail_segment(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_max_records=4) as wal:
            fill(wal, [1, 2])
        with WriteAheadLog(tmp_path, segment_max_records=4) as wal:
            fill(wal, [3, 4])
            assert wal.num_segments == 1
            assert wal.payloads_since(0) == [{"n": v} for v in range(1, 5)]

    def test_default_cap_is_generous(self):
        assert DEFAULT_SEGMENT_MAX_RECORDS >= 256

    def test_stray_tmp_files_are_cleaned_on_open(self, tmp_path):
        (tmp_path / "wal-000000000000.jsonl.tmp").write_text("half-rotated")
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, [1])
        assert not list(tmp_path.glob("*.tmp"))


class TestCorruption:
    def _segment(self, tmp_path):
        [path] = tmp_path.glob("wal-*.jsonl")
        return path

    def test_torn_final_record_is_truncated_and_replay_continues(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, [1, 2, 3])
        path = self._segment(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_version == 2  # the torn record was never acknowledged-safe
            assert wal.payloads_since(0) == [{"n": 1}, {"n": 2}]
            wal.append({"n": 3}, 3)  # the log heals and accepts new appends
        with WriteAheadLog(tmp_path) as wal:
            assert wal.payloads_since(0) == [{"n": 1}, {"n": 2}, {"n": 3}]

    def test_torn_record_is_physically_removed(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, [1, 2])
        path = self._segment(tmp_path)
        path.write_bytes(path.read_bytes() + b'{"kind": "wal_record", "torn-tail')
        with WriteAheadLog(tmp_path):
            pass
        assert b"torn-tail" not in path.read_bytes()

    def test_interior_corruption_is_loud(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, [1, 2, 3])
        path = self._segment(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = lines[2][: len(lines[2]) // 2] + b"\n"  # damage record 2 of 3
        path.write_bytes(b"".join(lines))
        with pytest.raises(WALError):
            WriteAheadLog(tmp_path)

    def test_tampered_payload_fails_the_crc_check(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, [1, 2])
        path = self._segment(tmp_path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["delta"]["n"] = 999  # flip the payload, keep the old CRC
        lines[1] = json.dumps(record, sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WALError, match="CRC"):
            WriteAheadLog(tmp_path)

    def test_torn_tail_in_a_non_final_segment_is_loud(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_max_records=2) as wal:
            fill(wal, [1, 2, 3])
        first = sorted(tmp_path.glob("wal-*.jsonl"))[0]
        data = first.read_bytes()
        first.write_bytes(data[: len(data) - 10])
        with pytest.raises(WALError):
            WriteAheadLog(tmp_path)

    def test_version_gap_between_segments_is_loud(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_max_records=2) as wal:
            fill(wal, [1, 2, 3, 4, 5, 6])
        segments = sorted(tmp_path.glob("wal-*.jsonl"))
        assert len(segments) == 3
        segments[1].unlink()  # versions 3-4 vanish from the middle
        with pytest.raises(WALError):
            WriteAheadLog(tmp_path)

    def test_missing_leading_segments_shift_the_base(self, tmp_path):
        # Dropping whole *leading* segments is legal compaction: the log
        # simply covers a later contiguous suffix of history.
        with WriteAheadLog(tmp_path, segment_max_records=2) as wal:
            fill(wal, [1, 2, 3, 4])
        sorted(tmp_path.glob("wal-*.jsonl"))[0].unlink()
        with WriteAheadLog(tmp_path) as wal:
            assert wal.base_version == 2
            assert wal.payloads_since(2) == [{"n": 3}, {"n": 4}]

    def test_payload_crc_is_order_insensitive(self):
        assert payload_crc({"a": 1, "b": 2}) == payload_crc({"b": 2, "a": 1})
        assert payload_crc({"a": 1}) != payload_crc({"a": 2})


class TestDeltaReplay:
    """The WAL + delta codec replays a database history exactly."""

    def test_full_history_replay_rebuilds_the_database(self, tmp_path):
        database = GraphDatabase(name="wal-replay")
        wal = WriteAheadLog(tmp_path, base_version=0)
        database.subscribe(lambda delta: wal.append(delta_to_dict(delta), delta.version))
        database.add_graph(make_graph(1), label=0)
        database.add_graph(make_graph(2), label=1)
        database.relabel_graph(1, 1)
        database.remove_graph(2)
        database.add_graph(make_graph(3), label=0)
        wal.close()

        replayed = GraphDatabase(name="wal-replay")
        with WriteAheadLog(tmp_path) as wal:
            for payload in wal.payloads_since(0):
                replayed.apply_delta(delta_from_dict(payload))
        assert replayed.version == database.version
        assert [g.graph_id for g in replayed] == [g.graph_id for g in database]
        assert {
            g.graph_id: replayed.label_of(replayed.index_of(g.graph_id)) for g in replayed
        } == {
            g.graph_id: database.label_of(database.index_of(g.graph_id)) for g in database
        }

    def test_replay_is_refused_out_of_order(self, tmp_path):
        database = GraphDatabase()
        wal = WriteAheadLog(tmp_path)
        database.subscribe(lambda delta: wal.append(delta_to_dict(delta), delta.version))
        database.add_graph(make_graph(1), label=0)
        database.add_graph(make_graph(2), label=1)
        wal.close()

        fresh = GraphDatabase()
        with WriteAheadLog(tmp_path) as wal:
            payloads = wal.payloads_since(0)
        from repro.exceptions import DatasetError

        with pytest.raises(DatasetError, match="contiguous"):
            fresh.apply_delta(delta_from_dict(payloads[1]))

    def test_fsync_can_be_disabled_for_tests(self, tmp_path):
        with WriteAheadLog(tmp_path, sync=False) as wal:
            fill(wal, range(1, 4))
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_version == 3

    def test_directory_is_created_if_missing(self, tmp_path):
        nested = tmp_path / "a" / "b"
        with WriteAheadLog(nested) as wal:
            fill(wal, [1])
        assert os.path.isdir(nested)
