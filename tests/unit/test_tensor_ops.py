"""Unit tests for the numerical helpers."""

import numpy as np
import pytest

from repro.gnn.tensor_ops import (
    log_softmax,
    normalize_adjacency,
    relu,
    relu_grad,
    softmax,
    stable_norm,
    xavier_init,
)


class TestActivations:
    def test_relu_clips_negatives(self):
        np.testing.assert_allclose(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_relu_grad_is_indicator(self):
        np.testing.assert_allclose(relu_grad(np.array([-1.0, 0.5])), [0.0, 1.0])

    def test_softmax_sums_to_one(self):
        probs = softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)
        assert probs.argmax() == 2

    def test_softmax_is_shift_invariant(self):
        logits = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_softmax_handles_large_values(self):
        probs = softmax(np.array([1000.0, 0.0]))
        assert np.isfinite(probs).all()

    def test_log_softmax_matches_log_of_softmax(self):
        logits = np.array([0.5, -1.0, 2.0])
        np.testing.assert_allclose(log_softmax(logits), np.log(softmax(logits)), atol=1e-9)


class TestNormalizeAdjacency:
    def test_symmetric_normalisation_row_sums(self):
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        normalised = normalize_adjacency(adjacency)
        # With self loops a two-node clique normalises to all entries 0.5.
        np.testing.assert_allclose(normalised, np.full((2, 2), 0.5))

    def test_without_self_loops(self):
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        normalised = normalize_adjacency(adjacency, add_self_loops=False)
        np.testing.assert_allclose(normalised, [[0.0, 1.0], [1.0, 0.0]])

    def test_isolated_nodes_do_not_divide_by_zero(self):
        adjacency = np.zeros((3, 3))
        normalised = normalize_adjacency(adjacency, add_self_loops=False)
        assert np.isfinite(normalised).all()

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            normalize_adjacency(np.zeros((2, 3)))


class TestMisc:
    def test_xavier_init_shape_and_range(self):
        rng = np.random.default_rng(0)
        weights = xavier_init(rng, 10, 20)
        assert weights.shape == (10, 20)
        limit = np.sqrt(6.0 / 30.0)
        assert np.abs(weights).max() <= limit

    def test_stable_norm_of_empty_vector(self):
        assert stable_norm(np.array([])) == 0.0

    def test_stable_norm_l1(self):
        assert stable_norm(np.array([1.0, -2.0, 3.0])) == pytest.approx(6.0)
