"""Unit tests for the GNN layers, including gradient checks against finite differences."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.gnn.layers import DenseLayer, GCNLayer, GINLayer, SAGELayer
from repro.gnn.tensor_ops import normalize_adjacency


def finite_difference_weight_grad(layer, param_name, forward, epsilon=1e-5):
    """Numerical gradient of sum(forward()) with respect to one parameter."""
    param = layer.params[param_name]
    grad = np.zeros_like(param)
    for index in np.ndindex(param.shape):
        original = param[index]
        param[index] = original + epsilon
        plus = forward().sum()
        param[index] = original - epsilon
        minus = forward().sum()
        param[index] = original
        grad[index] = (plus - minus) / (2 * epsilon)
    return grad


@pytest.fixture
def small_inputs():
    rng = np.random.default_rng(0)
    features = rng.normal(size=(4, 3))
    adjacency = np.array(
        [
            [0, 1, 0, 1],
            [1, 0, 1, 0],
            [0, 1, 0, 1],
            [1, 0, 1, 0],
        ],
        dtype=float,
    )
    return features, adjacency


class TestGCNLayer:
    def test_output_shape(self, small_inputs):
        features, adjacency = small_inputs
        layer = GCNLayer(3, 5, np.random.default_rng(1))
        output, _ = layer.forward(features, normalize_adjacency(adjacency))
        assert output.shape == (4, 5)

    def test_activation_non_negative(self, small_inputs):
        features, adjacency = small_inputs
        layer = GCNLayer(3, 5, np.random.default_rng(1))
        output, _ = layer.forward(features, normalize_adjacency(adjacency))
        assert (output >= 0).all()

    def test_no_activation_option(self, small_inputs):
        features, adjacency = small_inputs
        layer = GCNLayer(3, 5, np.random.default_rng(1), activation=False)
        output, _ = layer.forward(features, normalize_adjacency(adjacency))
        assert (output < 0).any()

    def test_weight_gradient_matches_finite_differences(self, small_inputs):
        features, adjacency = small_inputs
        propagation = normalize_adjacency(adjacency)
        layer = GCNLayer(3, 4, np.random.default_rng(2))

        def forward():
            return layer.forward(features, propagation)[0]

        output, cache = layer.forward(features, propagation)
        layer.zero_grads()
        layer.backward(np.ones_like(output), cache)
        numerical = finite_difference_weight_grad(layer, "weight", forward)
        np.testing.assert_allclose(layer.grads["weight"], numerical, atol=1e-5)

    def test_input_gradient_matches_finite_differences(self, small_inputs):
        features, adjacency = small_inputs
        propagation = normalize_adjacency(adjacency)
        layer = GCNLayer(3, 4, np.random.default_rng(3))
        output, cache = layer.forward(features, propagation)
        layer.zero_grads()
        grad_input = layer.backward(np.ones_like(output), cache)
        numerical = np.zeros_like(features)
        epsilon = 1e-5
        for index in np.ndindex(features.shape):
            perturbed = features.copy()
            perturbed[index] += epsilon
            plus = layer.forward(perturbed, propagation)[0].sum()
            perturbed[index] -= 2 * epsilon
            minus = layer.forward(perturbed, propagation)[0].sum()
            numerical[index] = (plus - minus) / (2 * epsilon)
        np.testing.assert_allclose(grad_input, numerical, atol=1e-4)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ModelError):
            GCNLayer(0, 4, np.random.default_rng(0))

    def test_parameter_count(self):
        layer = GCNLayer(3, 4, np.random.default_rng(0))
        assert layer.parameter_count() == 12


class TestGINLayer:
    def test_output_shape_and_grad(self, small_inputs):
        features, adjacency = small_inputs
        layer = GINLayer(3, 4, np.random.default_rng(4), epsilon=0.1)
        output, cache = layer.forward(features, adjacency)
        assert output.shape == (4, 4)
        layer.zero_grads()
        layer.backward(np.ones_like(output), cache)

        def forward():
            return layer.forward(features, adjacency)[0]

        numerical = finite_difference_weight_grad(layer, "weight", forward)
        np.testing.assert_allclose(layer.grads["weight"], numerical, atol=1e-5)


class TestSAGELayer:
    def test_output_shape(self, small_inputs):
        features, adjacency = small_inputs
        layer = SAGELayer(3, 6, np.random.default_rng(5))
        output, _ = layer.forward(features, adjacency)
        assert output.shape == (4, 6)

    def test_weight_gradients_match_finite_differences(self, small_inputs):
        features, adjacency = small_inputs
        layer = SAGELayer(3, 4, np.random.default_rng(6))
        output, cache = layer.forward(features, adjacency)
        layer.zero_grads()
        layer.backward(np.ones_like(output), cache)

        def forward():
            return layer.forward(features, adjacency)[0]

        for name in ("weight_self", "weight_neigh"):
            numerical = finite_difference_weight_grad(layer, name, forward)
            np.testing.assert_allclose(layer.grads[name], numerical, atol=1e-5)

    def test_isolated_nodes_handled(self):
        layer = SAGELayer(2, 3, np.random.default_rng(7))
        features = np.ones((2, 2))
        adjacency = np.zeros((2, 2))
        output, _ = layer.forward(features, adjacency)
        assert np.isfinite(output).all()


class TestDenseLayer:
    def test_forward_shape_matrix(self):
        layer = DenseLayer(3, 2, np.random.default_rng(8))
        output, _ = layer.forward(np.ones((5, 3)))
        assert output.shape == (5, 2)

    def test_forward_shape_vector(self):
        layer = DenseLayer(3, 2, np.random.default_rng(8))
        output, _ = layer.forward(np.ones(3))
        assert output.shape == (2,)

    def test_vector_gradients_match_finite_differences(self):
        layer = DenseLayer(3, 2, np.random.default_rng(9))
        inputs = np.array([0.5, -1.0, 2.0])
        output, cache = layer.forward(inputs)
        layer.zero_grads()
        layer.backward(np.ones_like(output), cache)

        def forward():
            return layer.forward(inputs)[0]

        for name in ("weight", "bias"):
            numerical = finite_difference_weight_grad(layer, name, forward)
            np.testing.assert_allclose(layer.grads[name], numerical, atol=1e-5)

    def test_zero_grads_resets(self):
        layer = DenseLayer(2, 2, np.random.default_rng(10))
        output, cache = layer.forward(np.ones(2))
        layer.backward(np.ones_like(output), cache)
        layer.zero_grads()
        assert np.allclose(layer.grads["weight"], 0.0)
