"""Unit tests for the evaluation metrics."""

import pytest

from repro.core import Configuration, ExplanationSubgraph, ExplanationView
from repro.core.approx import ApproxGVEX
from repro.graphs import GraphPattern
from repro.metrics import (
    Stopwatch,
    compression,
    conciseness_report,
    edge_loss,
    fidelity_minus,
    fidelity_plus,
    fidelity_report,
    sparsity,
    time_call,
)


@pytest.fixture(scope="module")
def gvex_view(trained_mut_model, mut_database):
    config = Configuration(theta=0.08).with_default_bound(0, 8)
    return ApproxGVEX(trained_mut_model, config).explain_label(mut_database.graphs, 1)


class TestFidelity:
    def test_empty_explanations(self, trained_mut_model):
        assert fidelity_plus(trained_mut_model, []) == 0.0
        assert fidelity_minus(trained_mut_model, []) == 0.0

    def test_whole_graph_explanation_has_zero_fidelity_minus(self, trained_mut_model, mut_database):
        graph = mut_database[0]
        explanation = ExplanationSubgraph(
            source_graph=graph, nodes=set(graph.nodes), label=trained_mut_model.predict(graph)
        )
        assert fidelity_minus(trained_mut_model, [explanation]) == pytest.approx(0.0, abs=1e-9)

    def test_whole_graph_explanation_has_high_fidelity_plus(self, trained_mut_model, mut_database):
        graph = mut_database[0]
        label = trained_mut_model.predict(graph)
        explanation = ExplanationSubgraph(source_graph=graph, nodes=set(graph.nodes), label=label)
        # Removing everything leaves the uniform prior.
        expected = trained_mut_model.predict_proba(graph)[label] - 1.0 / trained_mut_model.num_classes
        assert fidelity_plus(trained_mut_model, [explanation]) == pytest.approx(expected)

    def test_fidelity_values_bounded(self, trained_mut_model, gvex_view):
        plus = fidelity_plus(trained_mut_model, gvex_view.subgraphs)
        minus = fidelity_minus(trained_mut_model, gvex_view.subgraphs)
        assert -1.0 <= plus <= 1.0
        assert -1.0 <= minus <= 1.0

    def test_report_fractions(self, trained_mut_model, gvex_view):
        report = fidelity_report(trained_mut_model, gvex_view.subgraphs)
        assert 0.0 <= report["consistent_fraction"] <= 1.0
        assert 0.0 <= report["counterfactual_fraction"] <= 1.0

    def test_report_empty(self, trained_mut_model):
        report = fidelity_report(trained_mut_model, [])
        assert report["fidelity_plus"] == 0.0
        assert report["consistent_fraction"] == 0.0


class TestConciseness:
    def test_sparsity_of_empty_list(self):
        assert sparsity([]) == 0.0

    def test_sparsity_decreases_with_larger_explanations(self, mut_database):
        graph = mut_database[0]
        small = ExplanationSubgraph(source_graph=graph, nodes=set(graph.nodes[:2]), label=0)
        large = ExplanationSubgraph(source_graph=graph, nodes=set(graph.nodes[:8]), label=0)
        assert sparsity([small]) > sparsity([large])

    def test_compression_positive_for_gvex_views(self, gvex_view):
        assert compression(gvex_view) > 0.0

    def test_edge_loss_in_unit_interval(self, gvex_view):
        assert 0.0 <= edge_loss(gvex_view) <= 1.0

    def test_edge_loss_of_view_without_subgraphs(self):
        assert edge_loss(ExplanationView(label=0)) == 0.0

    def test_report_keys(self, gvex_view):
        report = conciseness_report(gvex_view)
        assert set(report) == {"sparsity", "compression", "edge_loss", "num_patterns", "num_subgraphs"}

    def test_compression_uses_pattern_sizes(self, mut_database):
        graph = mut_database[0]
        view = ExplanationView(label=0)
        view.subgraphs = [ExplanationSubgraph(source_graph=graph, nodes=set(graph.nodes[:6]), label=0)]
        big_pattern = GraphPattern()
        for node in range(20):
            big_pattern.add_node(node, "C")
            if node:
                big_pattern.add_edge(node - 1, node)
        view.patterns = [big_pattern]
        assert compression(view) < 0.0  # patterns larger than subgraphs give negative compression


class TestRuntime:
    def test_time_call_returns_result_and_duration(self):
        result, seconds = time_call(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0.0

    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        watch.measure("work", sum, range(10))
        watch.measure("work", sum, range(10))
        watch.measure("other", len, [1])
        assert watch.total("work") >= 0.0
        assert len(watch.records) == 3
        assert set(watch.as_dict()) == {"work", "other"}
        assert watch.total() == pytest.approx(watch.total("work") + watch.total("other"))
