"""Unit tests for the attributed graph data structure."""

import numpy as np
import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphs import Graph


class TestConstruction:
    def test_add_node_and_membership(self):
        graph = Graph()
        graph.add_node(7, "C")
        assert graph.has_node(7)
        assert 7 in graph
        assert graph.num_nodes() == 1

    def test_add_node_with_features(self):
        graph = Graph()
        graph.add_node(0, "C", [1.0, 2.0])
        np.testing.assert_allclose(graph.node_features(0), [1.0, 2.0])

    def test_add_node_without_features_returns_none(self):
        graph = Graph()
        graph.add_node(0, "C")
        assert graph.node_features(0) is None

    def test_re_adding_node_updates_type(self):
        graph = Graph()
        graph.add_node(0, "C")
        graph.add_node(0, "N")
        assert graph.node_type(0) == "N"
        assert graph.num_nodes() == 1

    def test_add_edge_requires_existing_nodes(self):
        graph = Graph()
        graph.add_node(0)
        with pytest.raises(NodeNotFoundError):
            graph.add_edge(0, 1)

    def test_self_loops_rejected(self):
        graph = Graph()
        graph.add_node(0)
        with pytest.raises(GraphError):
            graph.add_edge(0, 0)

    def test_directed_mode_not_supported(self):
        with pytest.raises(GraphError):
            Graph(directed=True)

    def test_edge_is_undirected(self):
        graph = Graph()
        graph.add_node(0)
        graph.add_node(1)
        graph.add_edge(0, 1, "bond")
        assert graph.has_edge(1, 0)
        assert graph.edge_type(1, 0) == "bond"

    def test_edges_listed_canonically(self):
        graph = Graph()
        for node in range(3):
            graph.add_node(node)
        graph.add_edge(2, 0)
        graph.add_edge(1, 0)
        assert graph.edges == [(0, 1), (0, 2)]


class TestRemoval:
    def test_remove_edge(self, triangle_graph):
        triangle_graph.remove_edge(0, 1)
        assert not triangle_graph.has_edge(0, 1)
        assert triangle_graph.num_edges() == 2

    def test_remove_missing_edge_raises(self, triangle_graph):
        with pytest.raises(EdgeNotFoundError):
            triangle_graph.remove_edge(0, 99)

    def test_remove_node_drops_incident_edges(self, triangle_graph):
        triangle_graph.remove_node(1)
        assert not triangle_graph.has_node(1)
        assert triangle_graph.num_edges() == 1
        assert triangle_graph.edges == [(0, 2)]

    def test_remove_missing_node_raises(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            triangle_graph.remove_node(42)


class TestInspection:
    def test_neighbors(self, triangle_graph):
        assert triangle_graph.neighbors(0) == {1, 2}

    def test_neighbors_of_missing_node_raises(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            triangle_graph.neighbors(9)

    def test_degree(self, triangle_graph):
        assert triangle_graph.degree(0) == 2

    def test_len_and_iteration_order(self):
        graph = Graph()
        for node in (5, 3, 9):
            graph.add_node(node)
        assert len(graph) == 3
        assert list(graph) == [5, 3, 9]

    def test_type_counts(self, triangle_graph):
        assert triangle_graph.type_counts() == {"A": 2, "B": 1}

    def test_repr_contains_sizes(self, triangle_graph):
        assert "|V|=3" in repr(triangle_graph)
        assert "|E|=3" in repr(triangle_graph)


class TestMatrices:
    def test_adjacency_matrix_symmetric(self, triangle_graph):
        adjacency = triangle_graph.adjacency_matrix()
        np.testing.assert_allclose(adjacency, adjacency.T)
        assert adjacency.sum() == 6  # three undirected edges

    def test_feature_matrix_alignment(self, triangle_graph):
        features = triangle_graph.feature_matrix()
        index = triangle_graph.node_index()
        np.testing.assert_allclose(features[index[1]], [0.0, 1.0])

    def test_feature_matrix_default_for_featureless_nodes(self):
        graph = Graph()
        graph.add_node(0, "C")
        graph.add_node(1, "C", [0.5, 0.5])
        features = graph.feature_matrix()
        np.testing.assert_allclose(features[0], [1.0, 1.0])

    def test_feature_matrix_dim_mismatch_raises(self):
        graph = Graph()
        graph.add_node(0, "C", [1.0])
        graph.add_node(1, "C", [1.0, 2.0])
        with pytest.raises(GraphError):
            graph.feature_matrix()

    def test_feature_matrix_requested_dim_conflict_raises(self):
        graph = Graph()
        graph.add_node(0, "C", [1.0, 2.0])
        with pytest.raises(GraphError):
            graph.feature_matrix(feature_dim=3)


class TestStructure:
    def test_connected_components_single(self, triangle_graph):
        assert triangle_graph.connected_components() == [{0, 1, 2}]
        assert triangle_graph.is_connected()

    def test_connected_components_multiple(self):
        graph = Graph()
        for node in range(4):
            graph.add_node(node)
        graph.add_edge(0, 1)
        components = graph.connected_components()
        assert len(components) == 3
        assert components[0] == {0, 1}

    def test_empty_graph_not_connected(self):
        assert not Graph().is_connected()

    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.remove_node(0)
        assert triangle_graph.has_node(0)
        assert not clone.has_node(0)

    def test_relabel_default_compacts_ids(self):
        graph = Graph()
        graph.add_node(10, "A")
        graph.add_node(20, "B")
        graph.add_edge(10, 20)
        relabelled = graph.relabel()
        assert relabelled.nodes == [0, 1]
        assert relabelled.has_edge(0, 1)

    def test_relabel_requires_injective_mapping(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.relabel({0: 5, 1: 5, 2: 6})

    def test_structural_signature_invariant_to_relabeling(self, triangle_graph):
        relabelled = triangle_graph.relabel({0: 10, 1: 11, 2: 12})
        assert triangle_graph.structural_signature() == relabelled.structural_signature()

    def test_structural_signature_differs_for_different_structure(self, triangle_graph, path_graph):
        assert triangle_graph.structural_signature() != path_graph.structural_signature()


class TestSerialisation:
    def test_round_trip(self, triangle_graph):
        clone = Graph.from_dict(triangle_graph.to_dict())
        assert clone.nodes == triangle_graph.nodes
        assert clone.edges == triangle_graph.edges
        assert clone.node_type(1) == "B"
        np.testing.assert_allclose(clone.node_features(0), [1.0, 0.0])

    def test_round_trip_preserves_edge_types(self, triangle_graph):
        clone = Graph.from_dict(triangle_graph.to_dict())
        assert clone.edge_type(0, 2) == "y"
