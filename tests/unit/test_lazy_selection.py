"""Lazy-greedy (CELF) selection: equivalence with the eager reference loops.

The CELF engine must be *output-identical* to the eager greedy loops — same
explanation node sets, same explainability — across tier-1 datasets, seeds,
and both the sparse and the legacy backend (the ``REPRO_SPARSE_BACKEND``
toggle).  These tests pin that contract, plus the incremental coverage state
and the bounded label-probability memo the engine is built on.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

import numpy as np
import pytest

from repro.core import Configuration, GraphAnalysis, LRUCache
from repro.core.approx import ApproxGVEX
from repro.core.streaming import StreamGVEX
from repro.core.selection import lazy_greedy_select
from repro.datasets import load_dataset
from repro.gnn import GNNClassifier, Trainer
from repro.graphs.sparse import sparse_backend

TIER1_DATASETS = ("MUT", "SYN")
SEEDS = (3, 11)

_DATASET_KWARGS = {
    "MUT": {"num_graphs": 8},
    # Large enough that the batched-inference row gate engages (the MUT
    # fixtures stay below it, covering the sequential path).
    "SYN": {"num_graphs": 6, "base_size": 32},
}


@lru_cache(maxsize=None)
def _context(dataset: str, seed: int):
    database = load_dataset(dataset, seed=seed, **_DATASET_KWARGS[dataset])
    stats = database.statistics()
    model = GNNClassifier(
        feature_dim=max(1, int(stats["feature_dim"])),
        num_classes=max(2, len(database.class_labels())),
        hidden_dim=16,
        num_layers=3,
        seed=0,
    )
    Trainer(model, epochs=15, seed=seed).fit(database)
    return database, model


def _view_fingerprint(view):
    return (
        [sorted(subgraph.nodes) for subgraph in view.subgraphs],
        view.explainability,
    )


class TestLazyEagerEquivalence:
    @pytest.mark.parametrize("dataset", TIER1_DATASETS)
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("sparse", [True, False], ids=["sparse", "legacy"])
    def test_approx_views_identical(self, dataset, seed, sparse):
        database, model = _context(dataset, seed)
        config = Configuration(theta=0.08).with_default_bound(0, 8)
        label = model.predict(database[0])
        with sparse_backend(sparse):
            lazy = ApproxGVEX(model, config).explain_label(database.graphs, label)
            eager = ApproxGVEX(
                model, replace(config, selection_strategy="eager")
            ).explain_label(database.graphs, label)
        assert _view_fingerprint(lazy)[0] == _view_fingerprint(eager)[0]
        assert lazy.explainability == eager.explainability

    @pytest.mark.parametrize("dataset", TIER1_DATASETS)
    @pytest.mark.parametrize("sparse", [True, False], ids=["sparse", "legacy"])
    def test_approx_lower_bound_topup_identical(self, dataset, sparse):
        """A positive lower bound exercises the backup bookkeeping + top-up."""
        database, model = _context(dataset, SEEDS[0])
        config = Configuration(theta=0.08).with_default_bound(5, 8)
        label = model.predict(database[0])
        with sparse_backend(sparse):
            lazy = ApproxGVEX(model, config).explain_label(database.graphs, label)
            eager = ApproxGVEX(
                model, replace(config, selection_strategy="eager")
            ).explain_label(database.graphs, label)
        assert _view_fingerprint(lazy)[0] == _view_fingerprint(eager)[0]
        assert lazy.explainability == eager.explainability

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("sparse", [True, False], ids=["sparse", "legacy"])
    def test_streaming_topup_identical(self, seed, sparse):
        """StreamGVEX's post-stream lower-bound top-up uses the CELF engine."""
        database, model = _context("MUT", seed)
        config = Configuration(theta=0.08, seed=seed).with_default_bound(4, 6)
        label = model.predict(database[0])
        with sparse_backend(sparse):
            lazy = StreamGVEX(model, config, batch_size=4).explain_label(
                database.graphs, label
            )
            eager = StreamGVEX(
                model, replace(config, selection_strategy="eager"), batch_size=4
            ).explain_label(database.graphs, label)
        assert _view_fingerprint(lazy)[0] == _view_fingerprint(eager)[0]
        assert lazy.explainability == eager.explainability

    @pytest.mark.parametrize("mode", ["none", "strict"])
    def test_verification_modes_identical(self, mode):
        """The lazy loop re-verifies deferred candidates per round in every
        verification mode, matching the eager loop."""
        database, model = _context("MUT", SEEDS[0])
        config = Configuration(theta=0.08, verification_mode=mode).with_default_bound(0, 6)
        label = model.predict(database[0])
        lazy = ApproxGVEX(model, config).explain_label(database.graphs, label)
        eager = ApproxGVEX(
            model, replace(config, selection_strategy="eager")
        ).explain_label(database.graphs, label)
        assert _view_fingerprint(lazy)[0] == _view_fingerprint(eager)[0]

    def test_cross_backend_views_identical(self):
        """Sparse and legacy backends agree under the (default) lazy strategy."""
        database, model = _context("MUT", SEEDS[0])
        config = Configuration(theta=0.08).with_default_bound(0, 8)
        label = model.predict(database[0])
        with sparse_backend(True):
            sparse_view = ApproxGVEX(model, config).explain_label(database.graphs, label)
        with sparse_backend(False):
            legacy_view = ApproxGVEX(model, config).explain_label(database.graphs, label)
        assert _view_fingerprint(sparse_view)[0] == _view_fingerprint(legacy_view)[0]
        assert sparse_view.explainability == legacy_view.explainability


class TestCoverageState:
    def _analysis(self):
        database, model = _context("MUT", SEEDS[0])
        return GraphAnalysis(model, database[1], Configuration(theta=0.08)), database[1]

    def test_batch_gains_match_marginal_gains(self):
        analysis, graph = self._analysis()
        state = analysis.reset_coverage()
        candidates = graph.nodes
        expected = analysis.marginal_gains(set(), candidates)
        np.testing.assert_array_equal(state.batch_gains(candidates), expected)

    def test_gain_matches_marginal_gain_after_commits(self):
        analysis, graph = self._analysis()
        nodes = graph.nodes
        state = analysis.reset_coverage()
        selected: set[int] = set()
        for pick in nodes[:4]:
            state.commit(pick)
            selected.add(pick)
        for candidate in nodes[4:10]:
            assert state.gain(candidate) == analysis.marginal_gain(selected, candidate)

    def test_commit_returns_realised_gain(self):
        analysis, graph = self._analysis()
        node = graph.nodes[0]
        state = analysis.reset_coverage()
        expected = analysis.marginal_gain(set(), node)
        assert state.commit(node) == expected
        assert state.explainability() == analysis.explainability({node})

    def test_gain_upper_bound_is_valid_stale_bound(self):
        """Stale bounds never underestimate the current gain (submodularity)."""
        analysis, graph = self._analysis()
        nodes = graph.nodes
        state = analysis.reset_coverage()
        state.batch_gains(nodes)
        for pick in nodes[:5]:
            state.commit(pick)
            for candidate in nodes[5:12]:
                stale = state.gain_upper_bound(candidate)
                assert stale >= state.gain(candidate)

    def test_seeded_state_matches_explainability(self):
        analysis, graph = self._analysis()
        seed_set = set(graph.nodes[:6])
        state = analysis.reset_coverage(seed_set)
        assert state.explainability() == analysis.explainability(seed_set)

    def test_analysis_level_commit_and_bound(self):
        analysis, graph = self._analysis()
        node = graph.nodes[0]
        analysis.reset_coverage()
        bound = analysis.gain_upper_bound(node)
        assert analysis.commit(node) == bound  # first commit realises the bound


class TestLazyGreedySelectEngine:
    def test_respects_budget_and_verification(self):
        analysis, graph = TestCoverageState()._analysis()
        blocked = {graph.nodes[0], graph.nodes[1]}
        selected = lazy_greedy_select(
            analysis,
            graph.nodes,
            set(),
            4,
            lambda nodes, current: [node not in blocked for node in nodes],
            lambda tied, current: min(tied),
        )
        assert len(selected) == 4
        assert not (selected & blocked)

    def test_all_candidates_failing_selects_nothing(self):
        analysis, graph = TestCoverageState()._analysis()
        selected = lazy_greedy_select(
            analysis,
            graph.nodes,
            set(),
            4,
            lambda nodes, current: [False] * len(nodes),
            lambda tied, current: min(tied),
        )
        assert selected == set()

    def test_backup_collects_passing_frontier(self):
        analysis, graph = TestCoverageState()._analysis()
        backup: set[int] = set()
        lazy_greedy_select(
            analysis,
            graph.nodes,
            set(),
            2,
            lambda nodes, current: [True] * len(nodes),
            lambda tied, current: min(tied),
            backup=backup,
        )
        assert backup == set(graph.nodes)


class TestLRUCache:
    def test_eviction_order(self):
        cache: LRUCache[str, int] = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_zero_capacity_disables_storage(self):
        cache: LRUCache[str, int] = LRUCache(0)
        cache.put("a", 1)
        assert "a" not in cache
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_stats(self):
        cache: LRUCache[str, int] = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.stats() == {"size": 1, "hits": 1, "misses": 1}

    def test_capped_memo_keeps_views_identical(self):
        """A tiny cache forces recomputation but never changes the output."""
        database, model = _context("MUT", SEEDS[0])
        base = Configuration(theta=0.08).with_default_bound(0, 6)
        label = model.predict(database[0])
        capped = replace(base, label_probability_cache_size=4)
        full = ApproxGVEX(model, base).explain_label(database.graphs, label)
        small = ApproxGVEX(model, capped).explain_label(database.graphs, label)
        assert _view_fingerprint(full)[0] == _view_fingerprint(small)[0]
