"""Unit tests for the deterministic fault-injection registry.

Everything here runs in-process: schedules (nth hit, seeded probability,
duration windows, times caps, context matching), plan serialization and
validation, environment activation, and the corrupt action's determinism.
The end-to-end behaviour — plans armed against real WAL / worker / router
surfaces — lives in ``tests/integration/test_chaos.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.core import faults
from repro.core.faults import FaultPlan, FaultRule, fault_point
from repro.exceptions import ConfigurationError, FaultInjected


@pytest.fixture(autouse=True)
def _clean_registry(monkeypatch):
    """Every test starts and ends with no plan and no env override."""
    monkeypatch.delenv(faults.PLAN_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


def hits_until_fire(point: str, attempts: int = 50) -> list[int]:
    """Return the 1-based hit indices (within *attempts*) that fired."""
    fired = []
    for index in range(1, attempts + 1):
        try:
            fault_point(point)
        except FaultInjected:
            fired.append(index)
    return fired


class TestSchedules:
    def test_inactive_point_is_a_no_op_and_returns_data(self):
        assert faults.active_plan() is None
        assert fault_point("wal.append", "payload") == "payload"

    def test_nth_hit_fires_exactly_once(self):
        faults.activate(FaultPlan([FaultRule(point="wal.fsync", action="raise", nth=3)]))
        assert hits_until_fire("wal.fsync") == [3]

    def test_times_caps_total_fires(self):
        faults.activate(
            FaultPlan([FaultRule(point="worker.recv", action="raise",
                                 probability=1.0, times=2)])
        )
        assert hits_until_fire("worker.recv") == [1, 2]

    def test_probability_schedule_is_deterministic_under_a_seed(self):
        def run(seed: int) -> list[int]:
            faults.activate(
                FaultPlan(
                    [FaultRule(point="store.spill", action="raise",
                               probability=0.3, times=1000)],
                    seed=seed,
                )
            )
            return hits_until_fire("store.spill", attempts=200)

        first, replay = run(7), run(7)
        assert first == replay  # same seed → identical schedule
        assert first  # p=0.3 over 200 hits certainly fires
        assert run(8) != first  # different seed → different schedule

    def test_probability_zero_never_fires(self):
        faults.activate(
            FaultPlan([FaultRule(point="wal.append", action="raise", probability=0.0)])
        )
        assert hits_until_fire("wal.append") == []

    def test_glob_point_matches_family(self):
        faults.activate(FaultPlan([FaultRule(point="wal.*", action="raise", times=10)]))
        with pytest.raises(FaultInjected, match="injected fault at wal.rotate"):
            fault_point("wal.rotate")
        with pytest.raises(FaultInjected, match="injected fault at wal.fsync"):
            fault_point("wal.fsync")
        assert fault_point("worker.send", "x") == "x"

    def test_match_targets_one_context(self):
        faults.activate(
            FaultPlan([FaultRule(point="worker.handle", action="raise",
                                 match="poison-me", times=10)])
        )
        assert fault_point("worker.handle", context="explain:other") is None
        with pytest.raises(FaultInjected):
            fault_point("worker.handle", context="explain:poison-me")

    def test_match_context_callable_is_lazy(self):
        calls = []

        def build() -> str:
            calls.append(1)
            return "anything"

        # No rule on this point → the context thunk is never evaluated.
        faults.activate(FaultPlan([FaultRule(point="wal.append", action="raise")]))
        fault_point("worker.handle", context=build)
        assert calls == []
        # A matching rule with `match` forces one evaluation.
        faults.activate(
            FaultPlan([FaultRule(point="worker.handle", action="raise", match="any")])
        )
        with pytest.raises(FaultInjected):
            fault_point("worker.handle", context=build)
        assert calls == [1]

    def test_duration_window_expires(self):
        plan = FaultPlan(
            [FaultRule(point="router.request", action="raise",
                       duration=1000.0, times=100)]
        )
        faults.activate(plan)
        with pytest.raises(FaultInjected):
            fault_point("router.request")
        # Simulate the window having elapsed.
        plan._activated_at -= 2000.0
        assert fault_point("router.request") is None

    def test_reactivation_resets_counters(self):
        plan = FaultPlan([FaultRule(point="wal.fsync", action="raise", nth=2)])
        faults.activate(plan)
        assert hits_until_fire("wal.fsync", attempts=5) == [2]
        faults.activate(plan)  # re-arm: counters start over
        assert hits_until_fire("wal.fsync", attempts=5) == [2]


class TestActions:
    def test_delay_returns_data_after_sleeping(self):
        faults.activate(
            FaultPlan([FaultRule(point="shm.attach", action="delay",
                                 delay_seconds=0.0)])
        )
        assert fault_point("shm.attach", "data") == "data"

    def test_hang_honours_delay_seconds_override(self):
        import time

        faults.activate(
            FaultPlan([FaultRule(point="worker.handle", action="hang",
                                 delay_seconds=0.01)])
        )
        start = time.monotonic()
        fault_point("worker.handle")
        assert time.monotonic() - start < 1.0

    def test_corrupt_flips_bytes_deterministically(self):
        faults.activate(
            FaultPlan([FaultRule(point="wal.append", action="corrupt", times=2)])
        )
        line = json.dumps({"version": 1, "op": "add"}) + "\n"
        first = fault_point("wal.append", line)
        second = fault_point("wal.append", line)
        assert first != line
        assert first == second  # same input → same corruption
        assert len(first) == len(line)

    def test_corrupt_handles_bytes(self):
        faults.activate(FaultPlan([FaultRule(point="wal.append", action="corrupt")]))
        blob = b"0123456789"
        out = fault_point("wal.append", blob)
        assert isinstance(out, bytes) and out != blob and len(out) == len(blob)

    def test_corrupt_without_data_raises(self):
        faults.activate(FaultPlan([FaultRule(point="wal.fsync", action="corrupt")]))
        with pytest.raises(FaultInjected, match="carries no data"):
            fault_point("wal.fsync")

    def test_raise_carries_point_and_message(self):
        faults.activate(
            FaultPlan([FaultRule(point="replication.fetch", action="raise",
                                 message="primary outage")])
        )
        with pytest.raises(FaultInjected, match=r"primary outage") as excinfo:
            fault_point("replication.fetch")
        assert excinfo.value.point == "replication.fetch"


class TestValidationAndSerialization:
    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault action"):
            FaultRule(point="wal.append", action="explode")

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"nth": 0}, "'nth' is 1-based"),
            ({"probability": 1.5}, "'probability' must be in"),
            ({"duration": -1.0}, "'duration' must be >= 0"),
            ({"times": 0}, "'times' must be >= 1"),
        ],
    )
    def test_bad_schedule_values_rejected(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            FaultRule(point="wal.append", action="raise", **kwargs)

    def test_rule_dict_round_trip(self):
        rule = FaultRule(point="worker.handle", action="raise", nth=2,
                         match="explain", message="boom")
        assert FaultRule.from_dict(rule.to_dict()) == rule

    def test_plan_dict_round_trip(self):
        plan = FaultPlan(
            [FaultRule(point="wal.*", action="corrupt", times=3)], seed=11
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == 11
        assert clone.rules == plan.rules

    def test_unknown_rule_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault rule keys"):
            FaultRule.from_dict({"point": "x", "action": "raise", "wat": 1})

    def test_missing_rule_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="missing keys"):
            FaultRule.from_dict({"point": "x"})

    def test_unknown_plan_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"rules": [], "nope": True})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_stats_report_hits_and_fires(self):
        faults.activate(
            FaultPlan([FaultRule(point="wal.fsync", action="raise", nth=2)])
        )
        hits_until_fire("wal.fsync", attempts=4)
        (entry,) = faults.active_plan().stats()
        assert entry == {"point": "wal.fsync", "action": "raise",
                         "hits": 4, "fires": 1}


class TestActivation:
    def test_env_inline_json(self, monkeypatch):
        plan = {"seed": 3, "rules": [{"point": "wal.append", "action": "raise"}]}
        monkeypatch.setenv(faults.PLAN_ENV, json.dumps(plan))
        faults.reset()  # re-arm env loading under the new value
        with pytest.raises(FaultInjected):
            fault_point("wal.append", "x")
        assert faults.active_plan().seed == 3

    def test_env_file_reference(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"rules": [{"point": "store.spill", "action": "raise"}]}
        ))
        monkeypatch.setenv(faults.PLAN_ENV, f"@{path}")
        faults.reset()
        with pytest.raises(FaultInjected):
            fault_point("store.spill")

    def test_env_missing_file_is_loud(self, monkeypatch, tmp_path):
        monkeypatch.setenv(faults.PLAN_ENV, f"@{tmp_path / 'absent.json'}")
        faults.reset()
        with pytest.raises(ConfigurationError, match="cannot read fault plan file"):
            fault_point("wal.append")

    def test_deactivate_stops_consulting_env(self, monkeypatch):
        monkeypatch.setenv(
            faults.PLAN_ENV,
            json.dumps({"rules": [{"point": "wal.append", "action": "raise"}]}),
        )
        faults.reset()
        faults.deactivate()  # explicit deactivation wins over the env
        assert fault_point("wal.append", "x") == "x"

    def test_activate_from_config(self):
        from repro.core.config import Configuration

        config = Configuration(
            fault_plan={"rules": [{"point": "wal.rotate", "action": "raise"}]}
        )
        faults.activate_from_config(config)
        with pytest.raises(FaultInjected):
            fault_point("wal.rotate")

    def test_activate_from_config_without_plan_is_noop(self):
        from repro.core.config import Configuration

        assert faults.activate_from_config(Configuration()) is None
        assert faults.active_plan() is None

    def test_config_rejects_non_dict_plan(self):
        from repro.core.config import Configuration

        with pytest.raises(ConfigurationError):
            Configuration(fault_plan="not a dict")

    def test_config_fingerprint_ignores_fault_knobs(self):
        from repro.core.config import Configuration

        base = Configuration()
        armed = Configuration(
            degraded_reads=True,
            fault_plan={"rules": [{"point": "wal.append", "action": "raise"}]},
        )
        assert base.fingerprint() == armed.fingerprint()
        assert "fault_plan" not in armed.canonical_dict()
        assert "degraded_reads" not in armed.canonical_dict()
