"""Unit tests for graph readout layers."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.gnn.pooling import MaxPooling, MeanPooling, SumPooling, make_pooling


@pytest.fixture
def embeddings():
    return np.array([[1.0, -2.0], [3.0, 0.5], [-1.0, 4.0]])


class TestMaxPooling:
    def test_forward_takes_columnwise_max(self, embeddings):
        pooled, _ = MaxPooling().forward(embeddings)
        np.testing.assert_allclose(pooled, [3.0, 4.0])

    def test_backward_routes_gradient_to_argmax(self, embeddings):
        pooling = MaxPooling()
        _, cache = pooling.forward(embeddings)
        grad = pooling.backward(np.array([1.0, 2.0]), cache)
        assert grad[1, 0] == 1.0
        assert grad[2, 1] == 2.0
        assert grad.sum() == pytest.approx(3.0)

    def test_empty_input_rejected(self):
        with pytest.raises(ModelError):
            MaxPooling().forward(np.zeros((0, 3)))


class TestMeanPooling:
    def test_forward_average(self, embeddings):
        pooled, _ = MeanPooling().forward(embeddings)
        np.testing.assert_allclose(pooled, embeddings.mean(axis=0))

    def test_backward_spreads_gradient(self, embeddings):
        pooling = MeanPooling()
        _, cache = pooling.forward(embeddings)
        grad = pooling.backward(np.array([3.0, 3.0]), cache)
        np.testing.assert_allclose(grad, np.full((3, 2), 1.0))


class TestSumPooling:
    def test_forward_sum(self, embeddings):
        pooled, _ = SumPooling().forward(embeddings)
        np.testing.assert_allclose(pooled, embeddings.sum(axis=0))

    def test_backward_replicates_gradient(self, embeddings):
        pooling = SumPooling()
        _, cache = pooling.forward(embeddings)
        grad = pooling.backward(np.array([1.0, 2.0]), cache)
        np.testing.assert_allclose(grad, np.tile([1.0, 2.0], (3, 1)))


class TestFactory:
    def test_make_pooling_by_name(self):
        assert isinstance(make_pooling("max"), MaxPooling)
        assert isinstance(make_pooling("mean"), MeanPooling)
        assert isinstance(make_pooling("sum"), SumPooling)

    def test_unknown_name_rejected(self):
        with pytest.raises(ModelError):
            make_pooling("median")
