"""Unit tests for the competitor explainers and GVEX adapters."""

import pytest

from repro.baselines import CAPABILITY_MATRIX
from repro.baselines.gcfexplainer import GCFExplainerBaseline
from repro.baselines.gnnexplainer import GNNExplainerBaseline
from repro.baselines.gstarx import GStarXBaseline
from repro.baselines.gvex_adapter import ApproxGVEXAdapter, StreamGVEXAdapter
from repro.baselines.random_explainer import RandomExplainer
from repro.baselines.subgraphx import SubgraphXBaseline
from repro.exceptions import ExplanationError
from repro.graphs import Graph
from repro.graphs.subgraph import induced_subgraph

ALL_BASELINES = [
    GNNExplainerBaseline,
    SubgraphXBaseline,
    GStarXBaseline,
    GCFExplainerBaseline,
    RandomExplainer,
    ApproxGVEXAdapter,
    StreamGVEXAdapter,
]


@pytest.fixture(scope="module")
def sample_graph(mut_database):
    return mut_database[1]


class TestCommonContract:
    @pytest.mark.parametrize("explainer_cls", ALL_BASELINES)
    def test_explanation_respects_budget_and_membership(
        self, explainer_cls, trained_mut_model, sample_graph
    ):
        explainer = explainer_cls(trained_mut_model, max_nodes=6)
        explanation = explainer.explain_instance(sample_graph)
        assert 1 <= len(explanation.nodes) <= 6
        assert explanation.nodes <= set(sample_graph.nodes)
        assert explanation.label == trained_mut_model.predict(sample_graph)
        assert explanation.consistent is not None

    @pytest.mark.parametrize("explainer_cls", ALL_BASELINES)
    def test_explain_many(self, explainer_cls, trained_mut_model, mut_database):
        explainer = explainer_cls(trained_mut_model, max_nodes=5)
        explanations = explainer.explain_many(mut_database.graphs[:3])
        assert len(explanations) == 3

    def test_empty_graph_rejected(self, trained_mut_model):
        explainer = RandomExplainer(trained_mut_model, max_nodes=3)
        with pytest.raises(ExplanationError):
            explainer.explain_instance(Graph())

    def test_invalid_budget_rejected(self, trained_mut_model):
        with pytest.raises(ExplanationError):
            RandomExplainer(trained_mut_model, max_nodes=0)


class TestGNNExplainer:
    def test_mask_values_in_unit_interval(self, trained_mut_model, sample_graph):
        explainer = GNNExplainerBaseline(trained_mut_model, max_nodes=5, epochs=20)
        mask = explainer.node_mask(sample_graph, trained_mut_model.predict(sample_graph))
        assert set(mask) == set(sample_graph.nodes)
        assert all(0.0 <= value <= 1.0 for value in mask.values())

    def test_selects_top_masked_nodes(self, trained_mut_model, sample_graph):
        explainer = GNNExplainerBaseline(trained_mut_model, max_nodes=4, epochs=20)
        label = trained_mut_model.predict(sample_graph)
        mask = explainer.node_mask(sample_graph, label)
        selected = explainer.select_nodes(sample_graph, label)
        threshold = sorted(mask.values(), reverse=True)[3]
        assert all(mask[node] >= threshold - 1e-9 for node in selected)


class TestSubgraphX:
    def test_connected_explanation_preferred(self, trained_mut_model, sample_graph):
        explainer = SubgraphXBaseline(trained_mut_model, max_nodes=5, iterations=6, shapley_samples=3)
        nodes = explainer.select_nodes(sample_graph, trained_mut_model.predict(sample_graph))
        subgraph = induced_subgraph(sample_graph, nodes)
        assert subgraph.num_nodes() <= 5

    def test_deterministic_for_fixed_seed(self, trained_mut_model, sample_graph):
        label = trained_mut_model.predict(sample_graph)
        first = SubgraphXBaseline(trained_mut_model, max_nodes=5, iterations=5, seed=3).select_nodes(
            sample_graph, label
        )
        second = SubgraphXBaseline(trained_mut_model, max_nodes=5, iterations=5, seed=3).select_nodes(
            sample_graph, label
        )
        assert first == second


class TestGStarX:
    def test_scores_cover_all_nodes(self, trained_mut_model, sample_graph):
        explainer = GStarXBaseline(trained_mut_model, max_nodes=5, coalition_samples=10)
        scores = explainer.node_scores(sample_graph, trained_mut_model.predict(sample_graph))
        assert set(scores) == set(sample_graph.nodes)

    def test_explanation_is_connected(self, trained_mut_model, sample_graph):
        explainer = GStarXBaseline(trained_mut_model, max_nodes=5, coalition_samples=10)
        nodes = explainer.select_nodes(sample_graph, trained_mut_model.predict(sample_graph))
        assert induced_subgraph(sample_graph, nodes).is_connected()


class TestGCFExplainer:
    def test_counterfactual_nodes_flip_prediction_when_possible(
        self, trained_mut_model, mut_database
    ):
        explainer = GCFExplainerBaseline(trained_mut_model, max_nodes=10)
        flips = 0
        for graph in mut_database.graphs[:4]:
            label = trained_mut_model.predict(graph)
            removed = explainer.counterfactual_nodes(graph, label)
            residual = induced_subgraph(graph, set(graph.nodes) - removed)
            if residual.num_nodes() and trained_mut_model.predict(residual) != label:
                flips += 1
        assert flips >= 1

    def test_global_summary_structure(self, trained_mut_model, mut_database):
        explainer = GCFExplainerBaseline(trained_mut_model, max_nodes=10)
        label = trained_mut_model.predict(mut_database[0])
        summary = explainer.global_summary(mut_database.graphs[:6], label, max_counterfactuals=3)
        assert summary.label == label
        assert 0.0 <= summary.coverage <= 1.0
        assert len(summary.counterfactuals) <= 3


class TestCapabilityMatrix:
    def test_gvex_supports_everything_but_learning(self):
        gvex = CAPABILITY_MATRIX["GVEX"]
        assert not gvex["learning"]
        assert all(
            gvex[key]
            for key in ("model_agnostic", "label_specific", "size_bound", "coverage", "configurable", "queryable")
        )

    def test_no_competitor_is_queryable(self):
        for method, capabilities in CAPABILITY_MATRIX.items():
            if method != "GVEX":
                assert not capabilities["queryable"]
