"""End-to-end tests for the `repro serve` HTTP endpoint (`repro.api.server`)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import (
    ExplanationService,
    create_server,
    explanation_schema,
    validate_against_schema,
)
from repro.core import Configuration


@pytest.fixture(scope="module")
def live_server(mut_database, trained_mut_model):
    """A real ThreadingHTTPServer on an ephemeral port, torn down at the end."""
    service = ExplanationService(
        "MUT",
        database=mut_database,
        model=trained_mut_model,
        config=Configuration().with_default_bound(0, 5),
    )
    server = create_server(service, port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(f"{base}{path}", timeout=120) as response:
        return json.loads(response.read())


def _post(base: str, path: str, body: dict) -> dict:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=300) as response:
        return json.loads(response.read())


class TestReadEndpoints:
    def test_health(self, live_server):
        payload = _get(live_server, "/health")
        assert payload["status"] == "ok"
        assert payload["dataset"] == "MUT"

    def test_algorithms(self, live_server):
        names = _get(live_server, "/algorithms")["algorithms"]
        assert "approx" in names and "gnnexplainer" in names

    def test_schema_endpoint_serves_the_published_schema(self, live_server):
        assert _get(live_server, "/schema") == json.loads(
            json.dumps(explanation_schema())
        )

    def test_unknown_endpoint_is_404(self, live_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(live_server, "/nope")
        assert excinfo.value.code == 404


class TestExplainEndpoint:
    def test_explain_round_trip_validates_against_the_schema(self, live_server):
        payload = _post(
            live_server, "/explain", {"algorithm": "approx", "max_nodes": 5, "limit": 3}
        )
        assert validate_against_schema(payload, explanation_schema()) == []
        assert payload["kind"] == "explanation_result"
        assert payload["payload"]["view"]["subgraphs"]

    def test_repeat_request_is_served_from_cache(self, live_server):
        body = {"algorithm": "approx", "max_nodes": 5, "limit": 3}
        _post(live_server, "/explain", body)
        second = _post(live_server, "/explain", body)
        assert second["payload"]["provenance"]["cache_hit"] is True

    def test_unknown_parameter_is_a_400(self, live_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(live_server, "/explain", {"algorithm": "approx", "bogus": 1})
        assert excinfo.value.code == 400
        assert "bogus" in json.loads(excinfo.value.read())["error"]

    def test_unknown_algorithm_is_a_400_with_suggestions(self, live_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(live_server, "/explain", {"algorithm": "magic"})
        assert excinfo.value.code == 400
        assert "approx" in json.loads(excinfo.value.read())["error"]


class TestQueryEndpoints:
    @pytest.fixture(autouse=True)
    def _ensure_a_view(self, live_server):
        self.result = _post(
            live_server, "/explain", {"algorithm": "approx", "max_nodes": 5, "limit": 3}
        )

    def test_views_listing_carries_provenance(self, live_server):
        views = _get(live_server, "/views")["views"]
        assert views
        assert all("config_fingerprint" in view for view in views)

    def test_query_summary(self, live_server):
        summary = _get(live_server, "/query/summary")["summary"]
        label = str(self.result["payload"]["provenance"]["label"])
        assert label in summary

    def test_query_witness_for_graph(self, live_server):
        graph_id = self.result["payload"]["view"]["subgraphs"][0]["source_graph_id"]
        payload = _get(live_server, f"/query/graph/{graph_id}")
        assert payload["graph_id"] == graph_id
        assert payload["witness"]["nodes"]

    def test_query_witness_missing_graph_is_404(self, live_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(live_server, "/query/graph/999999")
        assert excinfo.value.code == 404

    def test_query_non_integer_graph_id_is_400(self, live_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(live_server, "/query/graph/abc")
        assert excinfo.value.code == 400

    def test_query_label_report(self, live_server):
        label = self.result["payload"]["provenance"]["label"]
        payload = _get(live_server, f"/query/label/{label}")
        assert payload["label"] == label
        assert "fidelity" in payload["report"]


@pytest.fixture()
def mutable_server(mut_database, trained_mut_model):
    """A live server over a *private* mutable database copy."""
    from repro.graphs import GraphDatabase

    database = GraphDatabase("live")
    # Copies: the server mutates its database and warms sparse caches, which
    # must never leak into the session-scoped graphs.
    for graph, label in zip(mut_database.graphs[:8], mut_database.labels[:8]):
        database.add_graph(graph.copy(), label)
    service = ExplanationService(
        "MUT",
        database=database,
        model=trained_mut_model,
        config=Configuration(theta=0.08).with_default_bound(0, 6),
    )
    server = create_server(service, port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", service, mut_database
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    service.close()


class TestIngestEndpoint:
    def test_add_remove_relabel_round_trip(self, mutable_server):
        base, service, source = mutable_server
        graph_payload = source.graphs[8].to_dict()
        graph_payload["graph_id"] = None  # let the database assign a stable id

        added = _post(base, "/ingest", {"graph": graph_payload, "label": 1})
        assert added["op"] == "ingest"
        assert added["num_graphs"] == 9
        assert added["maintained"] is True
        assert added["refreshed_labels"]
        graph_id = added["graph_id"]

        relabelled = _post(
            base, "/ingest", {"op": "relabel", "graph_id": graph_id, "label": 0}
        )
        assert relabelled["op"] == "relabel"
        assert relabelled["database_version"] == added["database_version"] + 1

        removed = _post(base, "/ingest", {"op": "remove", "graph_id": graph_id})
        assert removed["op"] == "remove"
        assert removed["num_graphs"] == 8

    def test_ingested_views_are_served_by_explain(self, mutable_server):
        base, service, source = mutable_server
        graph_payload = source.graphs[9].to_dict()
        graph_payload["graph_id"] = None
        added = _post(base, "/ingest", {"graph": graph_payload, "label": 1})
        label = added["refreshed_labels"][0]
        explained = _post(base, "/explain", {"algorithm": "stream", "label": label})
        assert explained["payload"]["provenance"]["num_graphs"] == added["num_graphs"]

    def test_unknown_op_rejected(self, mutable_server):
        base, _, _ = mutable_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/ingest", {"op": "truncate"})
        assert excinfo.value.code == 400

    def test_add_without_graph_rejected(self, mutable_server):
        base, _, _ = mutable_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/ingest", {"label": 1})
        assert excinfo.value.code == 400

    def test_unknown_parameter_rejected(self, mutable_server):
        base, _, _ = mutable_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/ingest", {"op": "remove", "graph_id": 1, "force": True})
        assert excinfo.value.code == 400


def _get_with_headers(base: str, path: str):
    with urllib.request.urlopen(f"{base}{path}", timeout=120) as response:
        return json.loads(response.read()), dict(response.headers)


class TestVersionedSurface:
    """The /v1 prefix is canonical; unversioned paths are deprecated aliases."""

    def test_v1_health_reports_the_api_version(self, live_server):
        payload, headers = _get_with_headers(live_server, "/v1/health")
        assert payload["status"] == "ok"
        assert payload["api_version"] == "v1"
        assert payload["read_only"] is False
        assert "database_version" in payload
        assert "Deprecation" not in headers

    def test_unversioned_alias_answers_with_a_deprecation_header(self, live_server):
        payload, headers = _get_with_headers(live_server, "/health")
        assert payload["status"] == "ok"  # same response body ...
        assert headers.get("Deprecation") == "true"  # ... but marked deprecated
        assert headers.get("Link") == '</v1/health>; rel="successor-version"'

    def test_every_get_route_exists_under_v1(self, live_server):
        for path in ("/v1/algorithms", "/v1/schema", "/v1/views", "/v1/query/summary"):
            payload, headers = _get_with_headers(live_server, path)
            assert "Deprecation" not in headers, path
            assert payload, path

    def test_v1_explain_round_trip(self, live_server):
        payload = _post(live_server, "/v1/explain", {"algorithm": "approx", "max_nodes": 5, "limit": 3})
        assert payload["kind"] == "explanation_result"

    def test_unversioned_post_alias_still_works(self, live_server):
        request = urllib.request.Request(
            f"{live_server}/explain",
            data=json.dumps({"algorithm": "approx", "max_nodes": 5, "limit": 3}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=300) as response:
            assert response.headers.get("Deprecation") == "true"
            assert json.loads(response.read())["kind"] == "explanation_result"

    def test_unknown_v1_endpoint_is_404(self, live_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(live_server, "/v1/nope")
        assert excinfo.value.code == 404


class TestReplicationSurface:
    def test_deltas_requires_since(self, mutable_server):
        base, _, _ = mutable_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/v1/deltas")
        assert excinfo.value.code == 400
        assert "since" in json.loads(excinfo.value.read())["error"]

    def test_deltas_streams_the_mutations(self, mutable_server):
        base, service, source = mutable_server
        before = service.database.version
        graph_payload = source.graphs[10].to_dict()
        graph_payload["graph_id"] = None
        added = _post(base, "/v1/ingest", {"graph": graph_payload, "label": 1})
        feed = _get(base, f"/v1/deltas?since={before}")
        assert feed["since"] == before
        assert feed["version"] == added["database_version"]
        assert feed["source"] == "memory"
        assert [d["payload"]["kind"] for d in feed["deltas"]] == ["add"]
        assert feed["deltas"][0]["kind"] == "database_delta"

    def test_deltas_at_head_is_an_empty_feed(self, mutable_server):
        base, service, _ = mutable_server
        feed = _get(base, f"/v1/deltas?since={service.database.version}")
        assert feed["deltas"] == []

    def test_future_since_is_410_gone_with_resync(self, mutable_server):
        base, _, _ = mutable_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/v1/deltas?since=999999")
        assert excinfo.value.code == 410
        body = json.loads(excinfo.value.read())
        assert body["resync"] is True

    def test_dropped_range_without_wal_is_410(self, mutable_server):
        base, service, source = mutable_server
        before = service.database.version
        service.database.DELTA_LOG_CAPACITY = 1  # instance-level shrink
        for offset in (11, 12):
            graph_payload = source.graphs[offset].to_dict()
            graph_payload["graph_id"] = None
            _post(base, "/v1/ingest", {"graph": graph_payload, "label": 1})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, f"/v1/deltas?since={before}")
        assert excinfo.value.code == 410

    def test_replica_bootstrap_payload_shape(self, mutable_server):
        base, service, _ = mutable_server
        payload = _get(base, "/v1/replica/bootstrap")
        assert payload["kind"] == "replica_bootstrap"
        assert payload["version"] == service.database.version
        assert payload["database"]["graphs"]
        assert payload["model"]["spec"]["feature_dim"] == 14
        assert len(payload["model"]["weights"]) >= 1
        assert "theta" in payload["config"]

    def test_live_signatures_endpoint(self, mutable_server):
        base, service, source = mutable_server
        graph_payload = source.graphs[13].to_dict()
        graph_payload["graph_id"] = None
        _post(base, "/v1/ingest", {"graph": graph_payload, "label": 0})
        payload = _get(base, "/v1/live")
        assert payload["version"] == service.database.version
        assert payload["signatures"]
        from repro.api.replication import view_signature

        with service._lock:
            expected = {str(v.label): view_signature(v) for v in service.live_views()}
        assert payload["signatures"] == expected


@pytest.fixture()
def read_only_server(mut_database, trained_mut_model):
    """A read-only (replica-style) server over a private database copy."""
    from repro.graphs import GraphDatabase

    database = GraphDatabase("replica")
    for graph, label in zip(mut_database.graphs[:6], mut_database.labels[:6]):
        database.add_graph(graph.copy(), label)
    service = ExplanationService(
        "MUT",
        database=database,
        model=trained_mut_model,
        config=Configuration(theta=0.08).with_default_bound(0, 6),
    )
    server = create_server(service, port=0, read_only=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    service.close()


class TestReadOnlyServer:
    def test_health_reports_read_only(self, read_only_server):
        assert _get(read_only_server, "/v1/health")["read_only"] is True

    def test_ingest_is_403(self, read_only_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(read_only_server, "/v1/ingest", {"op": "remove", "graph_id": 1})
        assert excinfo.value.code == 403

    def test_reads_still_work(self, read_only_server):
        assert "approx" in _get(read_only_server, "/v1/algorithms")["algorithms"]
