"""The deprecated legacy entrypoints warn; the supported paths stay silent.

PR 3 declared the direct algorithm constructors (``repro.ApproxGVEX``,
``repro.core.StreamGVEX``), the ``repro.baselines`` class re-exports and the
standalone ``ViewQueryEngine`` deprecated as public surface, with warnings
to start two PRs later.  That window has elapsed: package-level access now
emits :class:`DeprecationWarning`, while the concrete modules (the internal
call paths) and the registry/service surface never warn — enforced
suite-wide by the ``filterwarnings = error`` entry in ``pyproject.toml``.
"""

from __future__ import annotations

import warnings

import pytest

import repro
import repro.baselines
import repro.core


@pytest.mark.parametrize("name", ["ApproxGVEX", "StreamGVEX", "ViewQueryEngine"])
def test_top_level_access_warns(name):
    with pytest.warns(DeprecationWarning, match=rf"repro\.{name} is deprecated"):
        getattr(repro, name)


@pytest.mark.parametrize("name", ["ApproxGVEX", "StreamGVEX", "ViewQueryEngine"])
def test_core_package_access_warns(name):
    with pytest.warns(DeprecationWarning, match=rf"repro\.core\.{name} is deprecated"):
        getattr(repro.core, name)


@pytest.mark.parametrize(
    "name",
    [
        "BaseExplainer",
        "GNNExplainerBaseline",
        "SubgraphXBaseline",
        "GStarXBaseline",
        "GCFExplainerBaseline",
        "GlobalCounterfactualSummary",
        "RandomExplainer",
        "ApproxGVEXAdapter",
        "StreamGVEXAdapter",
    ],
)
def test_baselines_access_warns(name):
    with pytest.warns(DeprecationWarning, match=rf"repro\.baselines\.{name} is deprecated"):
        getattr(repro.baselines, name)


def test_deprecated_names_resolve_to_the_real_classes():
    from repro.core.approx import ApproxGVEX
    from repro.core.streaming import StreamGVEX
    from repro.core.views import ViewQueryEngine

    with pytest.warns(DeprecationWarning):
        assert repro.ApproxGVEX is ApproxGVEX
        assert repro.StreamGVEX is StreamGVEX
        assert repro.ViewQueryEngine is ViewQueryEngine
        assert repro.core.ApproxGVEX is ApproxGVEX


def test_unknown_attribute_still_raises_attribute_error():
    with pytest.raises(AttributeError, match="no attribute"):
        repro.DoesNotExist
    with pytest.raises(AttributeError, match="no attribute"):
        repro.core.DoesNotExist
    with pytest.raises(AttributeError, match="no attribute"):
        repro.baselines.DoesNotExist


def test_concrete_modules_and_registry_stay_silent():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.api import create_explainer  # noqa: F401
        from repro.baselines.gnnexplainer import GNNExplainerBaseline  # noqa: F401
        from repro.core.approx import ApproxGVEX  # noqa: F401
        from repro.core.streaming import StreamGVEX  # noqa: F401
        from repro.core.views import ViewQueryEngine  # noqa: F401

        assert "gnnexplainer" in repro.api.available_explainers()


class TestDeprecatedCliCommands:
    """The legacy table/compare CLI commands warn like the package shims do."""

    def test_table1_command_warns_and_still_runs(self, capsys):
        from repro.cli import main

        with pytest.warns(
            DeprecationWarning,
            match=r"repro\.cli 'table1' is deprecated and will be removed",
        ):
            assert main(["table1"]) == 0
        assert "GVEX" in capsys.readouterr().out

    def test_table3_command_warns_and_names_its_replacement(self, capsys):
        from repro.cli import main

        with pytest.warns(DeprecationWarning, match=r"use repro stats instead"):
            assert main(["table3"]) == 0
        capsys.readouterr()

    @pytest.mark.parametrize("command", ["table1", "table3", "compare"])
    def test_every_legacy_command_is_registered(self, command):
        from repro.cli import _DEPRECATED_COMMANDS

        assert command in _DEPRECATED_COMMANDS

    def test_supported_commands_stay_silent(self, capsys):
        from repro.cli import main

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main(["datasets"]) == 0
        capsys.readouterr()


def test_star_import_still_exposes_the_shimmed_names():
    # `from repro import *` consults __all__, which still lists the
    # deprecated names — they arrive through __getattr__ (and warn).
    with pytest.warns(DeprecationWarning):
        namespace: dict[str, object] = {}
        exec("from repro import *", namespace)
    assert "ApproxGVEX" in namespace and "StreamGVEX" in namespace
