"""The legacy entrypoints are gone; the supported paths never warn.

PR 3 declared the direct algorithm constructors (``repro.ApproxGVEX``,
``repro.core.StreamGVEX``), the ``repro.baselines`` class re-exports, the
standalone ``ViewQueryEngine`` re-export and the legacy experiment-runner
CLI commands (``table1``, ``table3``, ``compare``) deprecated; the warning
window has now closed and the shims are removed outright.  Access must fail
*cleanly* — a plain :class:`AttributeError`/:class:`ImportError` (or
argparse's usage error for the CLI), never a warning, never a shim — while
the concrete modules and the registry/service surface keep working
silently.
"""

from __future__ import annotations

import warnings

import pytest

import repro
import repro.baselines
import repro.core

REMOVED_TOP_LEVEL = ["ApproxGVEX", "StreamGVEX", "ViewQueryEngine"]
REMOVED_BASELINES = [
    "BaseExplainer",
    "GNNExplainerBaseline",
    "SubgraphXBaseline",
    "GStarXBaseline",
    "GCFExplainerBaseline",
    "GlobalCounterfactualSummary",
    "RandomExplainer",
    "ApproxGVEXAdapter",
    "StreamGVEXAdapter",
]


@pytest.mark.parametrize("name", REMOVED_TOP_LEVEL)
def test_top_level_access_raises_attribute_error(name):
    with pytest.raises(AttributeError, match=rf"no attribute {name!r}"):
        getattr(repro, name)


@pytest.mark.parametrize("name", REMOVED_TOP_LEVEL)
def test_core_package_access_raises_attribute_error(name):
    with pytest.raises(AttributeError, match=rf"no attribute {name!r}"):
        getattr(repro.core, name)


@pytest.mark.parametrize("name", REMOVED_BASELINES)
def test_baselines_access_raises_attribute_error(name):
    with pytest.raises(AttributeError, match=rf"no attribute {name!r}"):
        getattr(repro.baselines, name)


@pytest.mark.parametrize("name", REMOVED_TOP_LEVEL)
def test_from_import_raises_import_error(name):
    with pytest.raises(ImportError):
        exec(f"from repro import {name}")
    with pytest.raises(ImportError):
        exec(f"from repro.core import {name}")


def test_removal_raises_without_emitting_a_warning():
    # A stale shim that warned *and* raised would still fail this test:
    # removal must be silent apart from the exception itself.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        for name in REMOVED_TOP_LEVEL:
            with pytest.raises(AttributeError):
                getattr(repro, name)
        for name in REMOVED_BASELINES:
            with pytest.raises(AttributeError):
                getattr(repro.baselines, name)


def test_removed_names_absent_from_all():
    for name in REMOVED_TOP_LEVEL:
        assert name not in repro.__all__
        assert name not in repro.core.__all__
    for name in REMOVED_BASELINES:
        assert name not in repro.baselines.__all__


def test_star_import_no_longer_exposes_the_removed_names():
    namespace: dict[str, object] = {}
    exec("from repro import *", namespace)
    assert "ApproxGVEX" not in namespace
    assert "StreamGVEX" not in namespace
    assert "ViewQueryEngine" not in namespace
    # The supported surface is still all there.
    assert "ExplanationService" in namespace and "Configuration" in namespace


def test_concrete_modules_and_registry_stay_silent():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.api import create_explainer  # noqa: F401
        from repro.baselines.gnnexplainer import GNNExplainerBaseline  # noqa: F401
        from repro.core.approx import ApproxGVEX  # noqa: F401
        from repro.core.streaming import StreamGVEX  # noqa: F401
        from repro.core.views import ViewQueryEngine  # noqa: F401

        assert "gnnexplainer" in repro.api.available_explainers()


def test_baselines_package_still_registers_every_explainer():
    # The class re-exports are gone but importing the package must keep
    # its side effect: every baseline registered with the default registry.
    for name in ("gnnexplainer", "subgraphx", "gstarx", "gcfexplainer", "random"):
        assert name in repro.api.available_explainers()


class TestRemovedCliCommands:
    """The legacy table/compare commands now fail argparse's choice check."""

    @pytest.mark.parametrize("command", ["table1", "table3", "compare"])
    def test_legacy_command_exits_with_usage_error(self, command, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([command])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_legacy_command_registry_is_gone(self):
        import repro.cli

        assert not hasattr(repro.cli, "_DEPRECATED_COMMANDS")

    def test_supported_commands_stay_silent(self, capsys):
        from repro.cli import main

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main(["datasets"]) == 0
        capsys.readouterr()
