"""Service-level WAL behaviour: durable mutations, replay on restart, feeds.

The contract under test: a service constructed over the same base database
and the same ``wal_dir`` as a crashed (never-closed) predecessor replays the
WAL tail and reaches the *same* semantic state — database contents, version,
and maintained-view signatures — as a service that never died.
"""

from __future__ import annotations

import pytest

from repro.api import ExplanationService
from repro.api.replication import config_from_canonical, view_signature
from repro.core import Configuration
from repro.exceptions import ExplanationError, ReplicationGapError
from repro.graphs import Graph, GraphDatabase


def copy_database(database, name="wal-svc") -> GraphDatabase:
    payload = database.to_dict()
    payload["name"] = name
    return GraphDatabase.from_dict(payload)


def copy_graph(graph, graph_id) -> Graph:
    payload = graph.to_dict()
    payload["graph_id"] = graph_id
    return Graph.from_dict(payload)


@pytest.fixture()
def durable_service(mut_database, trained_mut_model, tmp_path):
    def build(live_views=True, database=None):
        return ExplanationService(
            "MUT",
            database=database if database is not None else copy_database(mut_database),
            model=trained_mut_model,
            config=Configuration(theta=0.08).with_default_bound(0, 6),
            live_views=live_views,
            wal_dir=tmp_path / "wal",
        )

    return build


class TestDurableMutations:
    def test_every_mutation_lands_in_the_wal(self, durable_service, mut_database):
        service = durable_service()
        base = service.database.version
        service.ingest(copy_graph(mut_database.graphs[0], 900), label=1)
        service.relabel(900, 0)
        service.remove(900)
        wal_stats = service.stats()["wal"]
        assert wal_stats["base_version"] == base
        assert wal_stats["last_version"] == base + 3
        assert wal_stats["replayed_on_open"] == 0
        assert [p["payload"]["kind"] for p in service.wal.payloads_since(base)] == [
            "add", "relabel", "remove",
        ]
        service.close()

    def test_restart_replays_to_the_identical_state(
        self, durable_service, mut_database
    ):
        # The "crashed" primary: mutations acknowledged, service never closed.
        crashed = durable_service()
        crashed.ingest(copy_graph(mut_database.graphs[1], 901), label=1)
        crashed.ingest(copy_graph(mut_database.graphs[2], 902), label=0)
        crashed.relabel(901, 0)
        expected_version = crashed.database.version
        expected = {v.label: view_signature(v) for v in crashed.live_views()}
        crashed._wal.close()  # release the handle; no snapshot flush, no save

        recovered = durable_service()
        assert recovered.database.version == expected_version
        assert recovered.stats()["wal"]["replayed_on_open"] == 3
        assert recovered.database.has_graph(901) and recovered.database.has_graph(902)
        got = {v.label: view_signature(v) for v in recovered.live_views()}
        assert got == expected
        recovered.close()

    def test_replay_fires_the_service_bookkeeping(self, durable_service, mut_database):
        crashed = durable_service(live_views=False)
        crashed.ingest(copy_graph(mut_database.graphs[3], 903), label=1)
        crashed._wal.close()

        recovered = durable_service(live_views=False)
        # the replayed graph is servable through the normal query surface
        assert recovered.database.has_graph(903)
        summary = recovered.remove(903)
        assert summary["op"] == "remove"
        recovered.close()

    def test_database_ahead_of_the_wal_is_refused(
        self, durable_service, mut_database, trained_mut_model, tmp_path
    ):
        service = durable_service(live_views=False)
        service.ingest(copy_graph(mut_database.graphs[4], 904), label=1)
        service.close()

        ahead = copy_database(mut_database)
        ahead.add_graph(copy_graph(mut_database.graphs[5], 905), label=0)
        ahead.add_graph(copy_graph(mut_database.graphs[6], 906), label=0)
        # version(base+2) > wal covers base..base+1 → unrecoverable divergence
        with pytest.raises(ExplanationError, match="ahead"):
            ExplanationService(
                "MUT",
                database=ahead,
                model=trained_mut_model,
                wal_dir=tmp_path / "wal",
            )

    def test_database_behind_the_wal_base_is_refused(
        self, mut_database, trained_mut_model, tmp_path
    ):
        service = ExplanationService(
            "MUT",
            database=copy_database(mut_database),
            model=trained_mut_model,
            wal_dir=tmp_path / "wal",
        )
        # one recorded mutation pins the log's base on disk
        service.ingest(copy_graph(mut_database.graphs[0], 950), label=1)
        service.close()

        behind = GraphDatabase("wal-svc")  # version 4 < the WAL's recorded base
        for graph, label in zip(mut_database.graphs[:4], mut_database.labels[:4]):
            behind.add_graph(graph.copy(), label)
        with pytest.raises(ExplanationError, match="base"):
            ExplanationService(
                "MUT", database=behind, model=trained_mut_model, wal_dir=tmp_path / "wal"
            )


class TestDeltaFeed:
    def test_memory_feed_covers_recent_mutations(self, durable_service, mut_database):
        service = durable_service(live_views=False)
        base = service.database.version
        service.ingest(copy_graph(mut_database.graphs[7], 907), label=1)
        feed = service.delta_feed(base)
        assert feed["source"] == "memory"
        assert feed["since"] == base
        assert feed["version"] == base + 1
        assert [d["payload"]["graph_id"] for d in feed["deltas"]] == [907]
        service.close()

    def test_wal_covers_what_the_memory_log_dropped(
        self, durable_service, mut_database
    ):
        service = durable_service(live_views=False)
        base = service.database.version
        service.database.DELTA_LOG_CAPACITY = 1
        service.ingest(copy_graph(mut_database.graphs[8], 908), label=1)
        service.ingest(copy_graph(mut_database.graphs[9], 909), label=0)
        feed = service.delta_feed(base)
        assert feed["source"] == "wal"
        assert [d["payload"]["graph_id"] for d in feed["deltas"]] == [908, 909]
        service.close()

    def test_feed_past_the_head_is_a_gap(self, durable_service):
        service = durable_service(live_views=False)
        with pytest.raises(ReplicationGapError):
            service.delta_feed(service.database.version + 50)
        service.close()

    def test_dropped_range_without_wal_is_a_gap(
        self, mut_database, trained_mut_model
    ):
        service = ExplanationService(
            "MUT", database=copy_database(mut_database), model=trained_mut_model
        )
        base = service.database.version
        service.database.DELTA_LOG_CAPACITY = 1
        service.ingest(copy_graph(mut_database.graphs[10], 910), label=1)
        service.ingest(copy_graph(mut_database.graphs[11], 911), label=0)
        with pytest.raises(ReplicationGapError):
            service.delta_feed(base)
        service.close()


class TestReplicationSnapshot:
    def test_snapshot_round_trips_model_and_config(
        self, durable_service, trained_mut_model
    ):
        service = durable_service(live_views=False)
        payload = service.replication_snapshot()
        assert payload["kind"] == "replica_bootstrap"
        assert payload["version"] == service.database.version

        import numpy as np

        weights = trained_mut_model.get_weights()
        restored = payload["model"]["weights"]
        assert len(restored) == len(weights)
        for got_layer, want_layer in zip(restored, weights):
            for name, array in want_layer.items():
                assert np.array_equal(np.asarray(got_layer[name]), array)

        config = config_from_canonical(payload["config"])
        assert config.fingerprint() == service.config.fingerprint()
        service.close()
