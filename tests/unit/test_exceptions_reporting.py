"""Unit tests for the exception hierarchy and the experiment reporting helpers."""

from dataclasses import dataclass

import pytest

from repro import exceptions
from repro.experiments.reporting import format_table, print_table, rows_to_table


class TestExceptions:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, exceptions.ReproError)

    def test_node_not_found_carries_node_id(self):
        error = exceptions.NodeNotFoundError(42)
        assert error.node_id == 42
        assert "42" in str(error)

    def test_edge_not_found_carries_endpoints(self):
        error = exceptions.EdgeNotFoundError(1, 2)
        assert (error.u, error.v) == (1, 2)


@dataclass
class _Row:
    name: str
    value: float
    flag: bool


class TestReporting:
    def test_rows_to_table_with_dataclasses(self):
        headers, body = rows_to_table([_Row("a", 1.5, True)])
        assert headers == ["name", "value", "flag"]
        assert body == [["a", "1.5000", "yes"]]

    def test_rows_to_table_with_dicts(self):
        headers, body = rows_to_table([{"x": 1, "y": [1, 2]}])
        assert headers == ["x", "y"]
        assert body == [["1", "1,2"]]

    def test_rows_to_table_rejects_other_types(self):
        with pytest.raises(TypeError):
            rows_to_table([object()])

    def test_format_table_alignment_and_title(self):
        text = format_table([_Row("abc", 2.0, False)], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "abc" in lines[3]

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_dict_cells(self):
        headers, body = rows_to_table([{"stats": {"a": 1.0}}])
        assert body == [["a=1.0000"]]

    def test_print_table_runs(self, capsys):
        print_table([_Row("p", 0.1, True)], title="t")
        captured = capsys.readouterr()
        assert "p" in captured.out
