"""Unit tests for loss functions and optimisers."""

import numpy as np
import pytest

from repro.gnn.layers import DenseLayer
from repro.gnn.loss import accuracy, cross_entropy, cross_entropy_grad
from repro.gnn.optim import SGD, Adam
from repro.gnn.tensor_ops import softmax


class TestCrossEntropy:
    def test_loss_is_negative_log_probability(self):
        logits = np.array([2.0, 0.0])
        expected = -np.log(softmax(logits)[0])
        assert cross_entropy(logits, 0) == pytest.approx(expected)

    def test_loss_decreases_with_confidence(self):
        assert cross_entropy(np.array([5.0, 0.0]), 0) < cross_entropy(np.array([1.0, 0.0]), 0)

    def test_gradient_matches_finite_differences(self):
        logits = np.array([0.3, -0.7, 1.2])
        grad = cross_entropy_grad(logits, 2)
        numerical = np.zeros_like(logits)
        epsilon = 1e-6
        for index in range(3):
            plus = logits.copy()
            plus[index] += epsilon
            minus = logits.copy()
            minus[index] -= epsilon
            numerical[index] = (cross_entropy(plus, 2) - cross_entropy(minus, 2)) / (2 * epsilon)
        np.testing.assert_allclose(grad, numerical, atol=1e-6)

    def test_gradient_sums_to_zero(self):
        grad = cross_entropy_grad(np.array([1.0, 2.0, 3.0]), 1)
        assert grad.sum() == pytest.approx(0.0, abs=1e-12)


class TestAccuracy:
    def test_perfect_and_zero(self):
        assert accuracy([1, 0, 1], [1, 0, 1]) == 1.0
        assert accuracy([1, 1, 1], [0, 0, 0]) == 0.0

    def test_partial(self):
        assert accuracy([1, 0], [1, 1]) == pytest.approx(0.5)

    def test_empty_inputs(self):
        assert accuracy([], []) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy([1, 2], [1])


def quadratic_layer():
    """A dense layer set up so the loss (w - 3)^2 has a known minimum."""
    layer = DenseLayer(1, 1, np.random.default_rng(0))
    layer.params["weight"][:] = 0.0
    layer.params["bias"][:] = 0.0
    return layer


def quadratic_grad(layer):
    layer.zero_grads()
    layer.grads["weight"][:] = 2 * (layer.params["weight"] - 3.0)
    layer.grads["bias"][:] = 0.0


class TestOptimisers:
    def test_adam_converges_on_quadratic(self):
        layer = quadratic_layer()
        optimiser = Adam(learning_rate=0.1)
        for _ in range(500):
            quadratic_grad(layer)
            optimiser.step([layer])
        assert layer.params["weight"][0, 0] == pytest.approx(3.0, abs=0.05)

    def test_sgd_converges_on_quadratic(self):
        layer = quadratic_layer()
        optimiser = SGD(learning_rate=0.1, momentum=0.5)
        for _ in range(200):
            quadratic_grad(layer)
            optimiser.step([layer])
        assert layer.params["weight"][0, 0] == pytest.approx(3.0, abs=0.05)

    def test_adam_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=0.0)

    def test_sgd_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD(momentum=1.5)
