"""Unit tests for the parallel driver and the view query engine."""

import pytest

from repro.core import (
    Configuration,
    ExplanationView,
    merge_views,
    parallel_explain,
)
from repro.core.approx import ApproxGVEX
from repro.core.views import ViewQueryEngine
from repro.exceptions import ExplanationError
from repro.graphs import GraphPattern


@pytest.fixture(scope="module")
def small_views(trained_mut_model, mut_database):
    config = Configuration(theta=0.08).with_default_bound(0, 8)
    explainer = ApproxGVEX(trained_mut_model, config)
    return explainer.explain(mut_database)


class TestMergeViews:
    def test_merges_subgraphs_and_dedupes_patterns(self, small_views):
        view = small_views.view_for(small_views.labels()[0])
        merged = merge_views([view, view], view.label)
        assert len(merged.subgraphs) == 2 * len(view.subgraphs)
        assert len(merged.patterns) == len(view.patterns)
        assert merged.explainability == pytest.approx(2 * view.explainability)

    def test_label_mismatch_rejected(self):
        with pytest.raises(ExplanationError):
            merge_views([ExplanationView(label=0), ExplanationView(label=1)], 0)

    def test_dedupes_isomorphic_patterns_across_shards(self):
        """Patterns that match up to isomorphism must merge to one entry."""

        def edge_pattern(node_ids):
            pattern = GraphPattern()
            pattern.add_node(node_ids[0], "C")
            pattern.add_node(node_ids[1], "N")
            pattern.add_edge(node_ids[0], node_ids[1], "single")
            return pattern

        def singleton(node_type):
            pattern = GraphPattern()
            pattern.add_node(0, node_type)
            return pattern

        # Shard views carry differently-labelled but isomorphic CN patterns,
        # plus one pattern unique to each shard.
        shard_a = ExplanationView(label=3, patterns=[edge_pattern((0, 1)), singleton("O")])
        shard_b = ExplanationView(label=3, patterns=[edge_pattern((7, 4)), singleton("S")])
        merged = merge_views([shard_a, shard_b], 3)
        keys = {pattern.canonical_key() for pattern in merged.patterns}
        assert len(merged.patterns) == 3
        assert len(keys) == 3
        assert [pattern.pattern_id for pattern in merged.patterns] == [0, 1, 2]


class TestParallelExplain:
    def test_serial_backend_matches_label_set(self, trained_mut_model, mut_database):
        config = Configuration().with_default_bound(0, 6)
        views = parallel_explain(
            trained_mut_model,
            mut_database,
            config=config,
            num_workers=1,
            backend="serial",
        )
        assert len(views) >= 1
        for view in views:
            for subgraph in view.subgraphs:
                assert trained_mut_model.predict(subgraph.source_graph) == view.label

    def test_thread_backend_two_workers(self, trained_mut_model, mut_database):
        config = Configuration().with_default_bound(0, 6)
        views = parallel_explain(
            trained_mut_model,
            mut_database,
            config=config,
            num_workers=2,
            backend="thread",
        )
        serial = parallel_explain(
            trained_mut_model,
            mut_database,
            config=config,
            num_workers=1,
            backend="serial",
        )
        # Sharding changes per-shard pattern mining but not which graphs are
        # explained for each label.
        for label in serial.labels():
            assert {s.source_graph.graph_id for s in views.view_for(label).subgraphs} == {
                s.source_graph.graph_id for s in serial.view_for(label).subgraphs
            }

    def test_process_backend_two_workers(self, trained_mut_model, mut_database):
        """The ProcessPoolExecutor path: workers get pickled models/graphs and
        the merged result matches the serial reference per label."""
        config = Configuration().with_default_bound(0, 6)
        views = parallel_explain(
            trained_mut_model,
            mut_database,
            config=config,
            num_workers=2,
            backend="process",
        )
        serial = parallel_explain(
            trained_mut_model,
            mut_database,
            config=config,
            num_workers=1,
            backend="serial",
        )
        assert set(views.labels()) == set(serial.labels())
        for label in serial.labels():
            merged = views.view_for(label)
            assert {s.source_graph.graph_id for s in merged.subgraphs} == {
                s.source_graph.graph_id for s in serial.view_for(label).subgraphs
            }
            # Merged patterns are deduplicated across the two shards.
            keys = [pattern.canonical_key() for pattern in merged.patterns]
            assert len(keys) == len(set(keys))
            # Chunked sharding hands each worker several smaller shards (load
            # balancing), so the merge sees at least one shard per worker.
            assert merged.metadata["merged_from"] >= 2
            # Rebuilt subgraphs reference the caller's graph objects, not
            # worker-side copies.
            for subgraph in merged.subgraphs:
                assert any(subgraph.source_graph is graph for graph in mut_database.graphs)

    def test_stream_algorithm_option(self, trained_mut_model, mut_database):
        config = Configuration().with_default_bound(0, 6)
        views = parallel_explain(
            trained_mut_model,
            mut_database,
            config=config,
            num_workers=2,
            backend="serial",
            algorithm="stream",
        )
        assert len(views) >= 1

    def test_invalid_arguments(self, trained_mut_model, mut_database):
        with pytest.raises(ExplanationError):
            parallel_explain(trained_mut_model, [], num_workers=1)
        with pytest.raises(ExplanationError):
            parallel_explain(trained_mut_model, mut_database, num_workers=0)
        with pytest.raises(ExplanationError):
            parallel_explain(trained_mut_model, mut_database, backend="gpu", num_workers=2)


class TestViewQueryEngine:
    def test_patterns_for_label(self, small_views, mut_database):
        engine = ViewQueryEngine(small_views, mut_database)
        label = small_views.labels()[0]
        assert engine.patterns_for_label(label) == small_views.view_for(label).patterns

    def test_summary_has_entry_per_label(self, small_views, mut_database):
        engine = ViewQueryEngine(small_views, mut_database)
        summary = engine.summary()
        assert set(summary) == set(small_views.labels())
        for stats in summary.values():
            assert stats["num_subgraphs"] >= 0

    def test_graphs_containing_pattern(self, small_views, mut_database):
        engine = ViewQueryEngine(small_views, mut_database)
        carbon = GraphPattern()
        carbon.add_node(0, "C")
        hits = engine.graphs_containing_pattern(carbon)
        assert len(hits) == len(mut_database)  # every molecule contains carbon

    def test_nitro_pattern_occurs_only_in_mutagen_label(self, small_views, mut_database, trained_mut_model):
        engine = ViewQueryEngine(small_views, mut_database)
        nitro = GraphPattern()
        nitro.add_node(0, "N")
        nitro.add_node(1, "O")
        nitro.add_node(2, "O")
        nitro.add_edge(0, 1, "double")
        nitro.add_edge(0, 2, "double")
        labels = engine.labels_with_pattern(nitro)
        assert 0 not in labels  # nonmutagen explanations never contain a nitro group

    def test_explanation_for_graph(self, small_views, mut_database):
        engine = ViewQueryEngine(small_views, mut_database)
        some_view = next(iter(small_views))
        graph_id = some_view.subgraphs[0].source_graph.graph_id
        result = engine.explanation_for_graph(graph_id)
        assert result is not None
        assert result["label"] == some_view.label
        assert engine.explanation_for_graph(10_000) is None

    def test_empty_database_rejected(self, small_views):
        with pytest.raises(ExplanationError):
            ViewQueryEngine(small_views, [])
