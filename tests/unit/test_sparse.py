"""Unit tests for the cached CSR sparse backend (repro.graphs.sparse)."""

import numpy as np
import pytest

from repro.core.config import Configuration
from repro.core.quality import GraphAnalysis
from repro.core.verification import EVerify
from repro.graphs import (
    Graph,
    GraphPattern,
    induced_subgraph,
    khop_subgraph,
    set_sparse_backend,
    sparse_backend,
    sparse_enabled,
)
from repro.graphs.sparse import BatchedGraphView
from repro.matching.coverage import covered_edges, covered_nodes


def build_test_graph() -> Graph:
    graph = Graph(graph_id=7)
    for node, node_type in [(4, "C"), (1, "N"), (9, "C"), (2, "O"), (6, "C")]:
        graph.add_node(node, node_type, features=[float(node), 1.0])
    graph.add_edge(4, 1, "single")
    graph.add_edge(1, 9, "double")
    graph.add_edge(9, 2, "single")
    graph.add_edge(4, 6, "single")
    return graph


class TestToggle:
    def test_context_manager_restores_state(self):
        initial = sparse_enabled()
        with sparse_backend(not initial):
            assert sparse_enabled() is (not initial)
        assert sparse_enabled() is initial

    def test_set_returns_previous(self):
        initial = sparse_enabled()
        assert set_sparse_backend(False) is initial
        assert sparse_enabled() is False
        set_sparse_backend(initial)


class TestSparseGraphView:
    def test_csr_structure_matches_adjacency(self):
        graph = build_test_graph()
        view = graph.sparse_view()
        assert view.node_ids == graph.nodes
        for row, node in enumerate(view.node_ids):
            neighbours = {view.node_ids[i] for i in view.indices[view.indptr[row] : view.indptr[row + 1]]}
            assert neighbours == graph.neighbors(node)

    def test_cached_until_mutation(self):
        graph = build_test_graph()
        view = graph.sparse_view()
        assert graph.sparse_view() is view  # cache hit
        graph.add_node(11, "H")
        rebuilt = graph.sparse_view()
        assert rebuilt is not view
        assert 11 in rebuilt.index

    @pytest.mark.parametrize("mutation", ["add_node", "add_edge", "remove_node", "remove_edge"])
    def test_every_mutation_bumps_version(self, mutation):
        graph = build_test_graph()
        before = graph.version
        if mutation == "add_node":
            graph.add_node(11, "H")
        elif mutation == "add_edge":
            graph.add_edge(4, 9, "single")
        elif mutation == "remove_node":
            graph.remove_node(6)
        else:
            graph.remove_edge(4, 1)
        assert graph.version > before

    def test_matrices_match_reference(self):
        graph = build_test_graph()
        with sparse_backend(False):
            reference_adj = graph.adjacency_matrix()
            reference_feat = graph.feature_matrix()
        with sparse_backend(True):
            np.testing.assert_array_equal(graph.adjacency_matrix(), reference_adj)
            np.testing.assert_array_equal(graph.feature_matrix(), reference_feat)

    def test_returned_matrices_are_safe_copies(self):
        graph = build_test_graph()
        with sparse_backend(True):
            matrix = graph.adjacency_matrix()
            matrix[0, 0] = 99.0
            assert graph.adjacency_matrix()[0, 0] == 0.0

    def test_dense_adjacency_self_loops(self):
        graph = build_test_graph()
        view = graph.sparse_view()
        expected = view.dense_adjacency() + np.eye(graph.num_nodes())
        np.testing.assert_array_equal(view.dense_adjacency_self_loops(), expected)

    def test_type_counts(self):
        graph = build_test_graph()
        assert graph.sparse_view().type_counts() == graph.type_counts()

    def test_warm_sparse_cache_prebuilds_views(self):
        from repro.graphs import GraphDatabase

        database = GraphDatabase()
        for index in range(3):
            database.add_graph(build_test_graph())
        assert database.warm_sparse_cache(feature_dim=2) == 3
        for graph in database.graphs:
            view = graph.sparse_view_if_cached()
            assert view is not None
            assert 2 in view._feature_cache

    def test_khop_rows_matches_bfs(self):
        graph = build_test_graph()
        view = graph.sparse_view()
        rows = view.khop_rows(view.index[4], 1)
        assert {view.node_ids[row] for row in rows} == {4, 1, 6}


class TestExtractionEquivalence:
    @pytest.mark.parametrize("nodes", [{4}, {4, 1, 9}, {4, 1, 9, 2, 6}, set()])
    def test_induced_subgraph_identical(self, nodes):
        graph = build_test_graph()
        with sparse_backend(False):
            reference = induced_subgraph(graph, nodes)
        with sparse_backend(True):
            fast = induced_subgraph(graph, nodes)
        assert fast.nodes == reference.nodes
        assert fast.edges == reference.edges
        assert fast.node_types() == reference.node_types()
        for u, v in reference.edges:
            assert fast.edge_type(u, v) == reference.edge_type(u, v)
        for node in reference.nodes:
            np.testing.assert_array_equal(fast.node_features(node), reference.node_features(node))

    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_khop_subgraph_identical(self, hops):
        graph = build_test_graph()
        with sparse_backend(False):
            reference = khop_subgraph(graph, 4, hops)
        with sparse_backend(True):
            fast = khop_subgraph(graph, 4, hops)
        assert fast.nodes == reference.nodes
        assert fast.edges == reference.edges


class TestCoverageEquivalence:
    def patterns(self):
        singleton = GraphPattern()
        singleton.add_node(0, "C")
        edge = GraphPattern()
        edge.add_node(0, "C")
        edge.add_node(1, "N")
        edge.add_edge(0, 1, "single")
        missing = GraphPattern()
        missing.add_node(0, "F")
        triangle = GraphPattern()
        for i, t in enumerate("CNC"):
            triangle.add_node(i, t)
        triangle.add_edge(0, 1, "single")
        triangle.add_edge(1, 2, "double")
        return [singleton, edge, missing, triangle]

    @pytest.mark.parametrize("max_matchings", [None, 1, 64])
    def test_covered_nodes_and_edges_identical(self, max_matchings):
        graph = build_test_graph()
        for pattern in self.patterns():
            with sparse_backend(False):
                ref_nodes = covered_nodes(pattern, graph, max_matchings=max_matchings)
                ref_edges = covered_edges(pattern, graph, max_matchings=max_matchings)
            with sparse_backend(True):
                assert covered_nodes(pattern, graph, max_matchings=max_matchings) == ref_nodes
                assert covered_edges(pattern, graph, max_matchings=max_matchings) == ref_edges


class TestModelEquivalence:
    def test_duplicate_node_ids_deduplicated(self, trained_mut_model, mut_database):
        graph = mut_database[0]
        nodes = graph.nodes[:4]
        with sparse_backend(True):
            reference = trained_mut_model.predict_proba_nodes(graph, nodes)
            duplicated = trained_mut_model.predict_proba_nodes(graph, nodes + nodes[:2])
        np.testing.assert_array_equal(duplicated, reference)

    def test_everify_cache_drops_superseded_versions(self, trained_mut_model):
        graph = build_test_graph()
        everify = EVerify(trained_mut_model.__class__(feature_dim=2, num_classes=2))
        everify.model.is_trained = True
        label = everify.predict(graph)
        everify.is_consistent(graph, set(graph.nodes[:3]), label)
        entries_before = everify.stats()["cache_entries"]
        graph.add_node(42, "C", features=[0.5, 0.5])
        everify.predict(graph)  # new version: superseded entries evicted
        assert everify.stats()["cache_entries"] <= entries_before

    def test_everify_and_gains_identical(self, trained_mut_model, mut_database):
        config = Configuration().with_default_bound(0, 6)
        graph = mut_database[0]
        probe_sets = [set(graph.nodes[:3]), set(graph.nodes[2:7]), set(graph.nodes)]
        results = {}
        for enabled in (False, True):
            with sparse_backend(enabled):
                everify = EVerify(trained_mut_model)
                label = everify.predict(graph)
                analysis = GraphAnalysis(trained_mut_model, graph, config)
                gains = analysis.marginal_gains(set(graph.nodes[:2]), graph.nodes[2:])
                results[enabled] = (
                    label,
                    [everify.is_consistent(graph, nodes, label) for nodes in probe_sets],
                    [everify.is_counterfactual(graph, nodes, label) for nodes in probe_sets],
                    gains.tolist(),
                )
        assert results[True] == results[False]


class TestBatchedGraphView:
    def test_block_adjacency_is_block_diagonal(self):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        graphs = [build_test_graph(), build_test_graph()]
        batch = BatchedGraphView.from_graphs(graphs)
        dense = np.zeros((batch.total_rows, batch.total_rows))
        offset = 0
        for graph in graphs:
            n = graph.num_nodes()
            dense[offset : offset + n, offset : offset + n] = graph.adjacency_matrix()
            offset += n
        adjacency = batch._block_adjacency()
        assert scipy_sparse.issparse(adjacency)
        np.testing.assert_array_equal(adjacency.toarray(), dense)

    def test_subset_blocks_match_induced_adjacency(self):
        pytest.importorskip("scipy.sparse")
        graph = build_test_graph()
        view = graph.sparse_view()
        rows = view.rows_for(graph.nodes[:3])
        batch = BatchedGraphView.from_subsets(view, [rows, np.arange(view.num_nodes)])
        blocks = batch._block_adjacency().toarray()
        np.testing.assert_array_equal(blocks[:3, :3], view.sub_adjacency(rows))
        np.testing.assert_array_equal(blocks[3:, 3:], view.dense_adjacency())

    def test_feature_matrix_concatenates_blocks(self):
        graph = build_test_graph()
        batch = BatchedGraphView.from_graphs([graph, graph])
        features = batch.feature_matrix(2)
        np.testing.assert_array_equal(features[:5], graph.feature_matrix(2))
        np.testing.assert_array_equal(features[5:], graph.feature_matrix(2))

    def test_segment_pool_handles_empty_blocks(self):
        graph = build_test_graph()
        empty = Graph()
        batch = BatchedGraphView.from_graphs([graph, empty, graph])
        hidden = np.arange(batch.total_rows * 2, dtype=float).reshape(batch.total_rows, 2)
        pooled = batch.segment_pool(hidden, "max")
        np.testing.assert_array_equal(pooled[0], hidden[:5].max(axis=0))
        np.testing.assert_array_equal(pooled[1], np.zeros(2))
        np.testing.assert_array_equal(pooled[2], hidden[5:].max(axis=0))
        summed = batch.segment_pool(hidden, "sum")
        np.testing.assert_array_equal(summed[2], hidden[5:].sum(axis=0))

    def test_gcn_propagate_matches_dense_normalisation(self):
        pytest.importorskip("scipy.sparse")
        from repro.gnn.tensor_ops import normalize_adjacency

        graph = build_test_graph()
        batch = BatchedGraphView.from_graphs([graph])
        hidden = graph.feature_matrix(2)
        expected = normalize_adjacency(graph.adjacency_matrix()) @ hidden
        np.testing.assert_allclose(batch.propagate("gcn", hidden), expected, atol=1e-12)
