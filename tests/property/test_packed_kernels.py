"""Property tests for the bit-packed coverage kernels (PR 7 tentpole).

The packed fast path of :mod:`repro.core.quality` must be *bit-identical* to
the boolean-mask oracle by construction: every float score is computed from
integer popcounts that must equal the oracle's boolean counts exactly.  These
tests fuzz that claim at three levels — the raw pack/unpack/popcount
helpers (including the odd-tail widths where padding bugs live), the
word-level AND / AND-NOT counting idiom the coverage deltas use, and the
public ``GraphAnalysis`` / ``CoverageState`` scores across both backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Configuration, GraphAnalysis
from repro.core.quality import pack_rows, unpack_bits, word_popcounts
from repro.gnn import GNNClassifier
from repro.graphs.sparse import sparse_backend

from tests.conftest import build_random_typed_graph

# Widths straddling the uint64 word boundary: empty, single bit, one word
# minus/exactly/plus one bit, two-word tails, and a several-word case.
_WIDTHS = [0, 1, 63, 64, 65, 127, 128, 200]

mask_params = st.tuples(
    st.sampled_from(_WIDTHS),
    st.integers(min_value=1, max_value=6),       # rows
    st.integers(min_value=0, max_value=10_000),  # seed
    st.sampled_from([0.0, 0.1, 0.5, 0.9, 1.0]),  # fill density (empty/full included)
)


def _random_mask(width: int, rows: int, seed: int, density: float) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((rows, width)) < density


@settings(max_examples=60, deadline=None)
@given(mask_params)
def test_pack_unpack_roundtrip(params):
    width, rows, seed, density = params
    mask = _random_mask(width, rows, seed, density)
    packed = pack_rows(mask)
    assert packed.dtype == np.uint64
    assert packed.shape == (rows, (width + 63) // 64)
    for row in range(rows):
        np.testing.assert_array_equal(unpack_bits(packed[row], width), mask[row])


@settings(max_examples=60, deadline=None)
@given(mask_params)
def test_word_popcounts_match_boolean_row_sums(params):
    width, rows, seed, density = params
    mask = _random_mask(width, rows, seed, density)
    packed = pack_rows(mask)
    per_row = word_popcounts(packed).sum(axis=1)
    np.testing.assert_array_equal(per_row, mask.sum(axis=1))


@settings(max_examples=60, deadline=None)
@given(mask_params)
def test_packed_and_andnot_counts_match_boolean(params):
    """The coverage-delta idiom: popcount(new & ~covered) over packed words.

    ``~covered`` flips the pad bits of the final word to 1, so the identity
    relies on the other operand's pad bits being 0 — exactly how
    ``CoverageState`` uses it.  Fuzz that exact expression shape.
    """
    width, rows, seed, density = params
    influence = _random_mask(width, rows, seed, density)
    covered = _random_mask(width, 1, seed + 1, 1.0 - density)[0]
    packed_influence = pack_rows(influence)
    packed_covered = pack_rows(covered[None, :])[0]
    for row in range(rows):
        newly = packed_influence[row] & ~packed_covered
        expected = int(np.count_nonzero(influence[row] & ~covered))
        assert int(word_popcounts(newly).sum()) == expected
        # Union-then-count, the diversity-delta shape.
        union = np.bitwise_or.reduce(packed_influence, axis=0) | packed_covered
        assert int(word_popcounts(union).sum()) == int(
            np.count_nonzero(influence.any(axis=0) | covered)
        )


@pytest.fixture(scope="module")
def model():
    return GNNClassifier(feature_dim=3, num_classes=2, hidden_dim=6, num_layers=2, seed=21)


analysis_params = st.tuples(
    st.integers(min_value=4, max_value=12),       # graph size
    st.integers(min_value=0, max_value=10_000),   # seed
    st.sampled_from([0.02, 0.1, 0.2]),            # theta
    st.sampled_from([0.0, 0.5, 1.0]),             # gamma
)


@settings(max_examples=25, deadline=None)
@given(analysis_params, st.data())
def test_scores_bit_identical_across_backends(model, params, data):
    num_nodes, seed, theta, gamma = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    config = Configuration(theta=theta, radius=0.3, gamma=gamma)
    subset = data.draw(st.sets(st.sampled_from(graph.nodes), max_size=num_nodes))
    results = {}
    for backend in (True, False):
        with sparse_backend(backend):
            analysis = GraphAnalysis(model, graph, config)
            results[backend] = (
                analysis.influence_score(subset),
                analysis.diversity_score(subset),
                analysis.explainability(subset),
                analysis.influenced_nodes(subset),
            )
    assert results[True] == results[False]


@settings(max_examples=20, deadline=None)
@given(analysis_params)
def test_coverage_state_greedy_trace_identical_across_backends(model, params):
    """Replay a full greedy trace (batch_gains -> gain -> commit) per backend.

    The packed ``CoverageState`` must reproduce the oracle's floats bit for
    bit at every step, not just on final totals — this is the exact call
    sequence the CELF loop issues.
    """
    num_nodes, seed, theta, gamma = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    config = Configuration(theta=theta, radius=0.3, gamma=gamma)
    traces = {}
    for backend in (True, False):
        with sparse_backend(backend):
            analysis = GraphAnalysis(model, graph, config)
            coverage = analysis.reset_coverage()
            trace = []
            selected: set[int] = set()
            for _ in range(min(4, num_nodes)):
                remaining = [node for node in graph.nodes if node not in selected]
                gains = coverage.batch_gains(remaining)
                best = max(range(len(remaining)), key=lambda slot: (gains[slot], -remaining[slot]))
                node = remaining[best]
                trace.append((tuple(gains.tolist()), coverage.gain(node), coverage.commit(node)))
                selected.add(node)
            trace.append(coverage.explainability())
            traces[backend] = trace
    assert traces[True] == traces[False]
