"""Statistical and identity properties of the sampled objective layer.

Three guarantees the estimator kernels declare, checked across seeds and
backends:

1. **Bounds hold** — for any node subset, the sampled influence fraction is
   within the *achieved* epsilon of the exact influence fraction, and the
   sampled diversity fraction within epsilon of its conditional estimand
   (the quantity it actually estimates; see the module docstring of
   :mod:`repro.core.sampling`).  Sample sizes are union-bounded over the
   population, so a single violation is a ~``delta / n`` event — an
   estimator bug, not noise.
2. **Sub-threshold identity** — graphs at or below ``sample_threshold``
   route to the plain exact analysis under ``objective="sampled"`` and
   select node-for-node identically to the exact configuration.
3. **Backend independence** — the sampled path always runs the packed
   kernels, so sampled scores and selections are identical whether the
   sparse backend is toggled on or off.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.core import Configuration
from repro.core.quality import GraphAnalysis
from repro.core.sampling import SampledGraphAnalysis, build_analysis
from repro.core.selection import lazy_greedy_select
from repro.gnn import GNNClassifier
from repro.graphs.generators import attach_motif, barabasi_albert_graph, house_motif
from repro.graphs.sparse import sparse_backend

SEEDS = (0, 1, 7, 23, 101)
BUDGET = 6

SAMPLED_CONFIG = Configuration(
    objective="sampled", sample_budget=128, epsilon=0.25, delta=0.1
)


@pytest.fixture(scope="module")
def model():
    return GNNClassifier(feature_dim=8, num_classes=2, hidden_dim=16, num_layers=2, seed=13)


def make_graph(num_nodes: int, seed: int):
    rng = random.Random(seed)
    graph = barabasi_albert_graph(num_nodes, 2, rng, node_type="base", feature_dim=8)
    attach_motif(graph, house_motif(), rng)
    graph.graph_id = 1000 + seed
    return graph


def greedy_nodes(analysis, budget: int) -> frozenset:
    return frozenset(
        lazy_greedy_select(
            analysis,
            list(analysis.node_list),
            set(),
            budget,
            vp_extend_many=lambda nodes, selected: [True] * len(nodes),
            choose_tied=lambda nodes, selected: min(nodes),
        )
    )


def subsets_under_test(graph, seed: int):
    """A spread of subset shapes: singletons, mid-size random, large random."""
    rng = random.Random(seed * 7919 + 3)
    nodes = list(graph.nodes)
    yield [nodes[0]]
    yield rng.sample(nodes, 5)
    yield rng.sample(nodes, 25)
    yield rng.sample(nodes, len(nodes) // 3)


@pytest.mark.parametrize("seed", SEEDS)
def test_influence_estimates_land_inside_the_declared_bound(model, seed):
    graph = make_graph(420, seed)
    sampled = build_analysis(model, graph, replace(SAMPLED_CONFIG, seed=seed))
    assert isinstance(sampled, SampledGraphAnalysis)
    exact = GraphAnalysis(model, graph, replace(SAMPLED_CONFIG, seed=seed))
    population = graph.num_nodes()
    for subset in subsets_under_test(graph, seed):
        estimate = sampled.influence_fraction(subset)
        truth = exact.influence_score(subset) / population
        assert abs(estimate - truth) <= sampled.achieved_epsilon, (
            f"influence estimate {estimate:.4f} vs exact {truth:.4f} "
            f"outside epsilon={sampled.achieved_epsilon:.4f} (seed {seed})"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_diversity_estimates_land_inside_the_declared_bound(model, seed):
    graph = make_graph(420, seed)
    sampled = build_analysis(model, graph, replace(SAMPLED_CONFIG, seed=seed))
    assert isinstance(sampled, SampledGraphAnalysis)
    for subset in subsets_under_test(graph, seed):
        estimate = sampled.diversity_fraction(subset)
        estimand = sampled.conditional_diversity_fraction(subset)
        assert abs(estimate - estimand) <= sampled.achieved_epsilon, (
            f"diversity estimate {estimate:.4f} vs conditional estimand "
            f"{estimand:.4f} outside epsilon={sampled.achieved_epsilon:.4f} "
            f"(seed {seed})"
        )


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_sub_threshold_selection_is_identical_to_exact(model, seed):
    graph = make_graph(80, seed)  # below the default sample_threshold of 256
    sampled_config = replace(SAMPLED_CONFIG, seed=seed)
    exact_config = replace(Configuration(), seed=seed)
    routed = build_analysis(model, graph, sampled_config)
    assert type(routed) is GraphAnalysis
    reference = GraphAnalysis(model, graph, exact_config)
    assert greedy_nodes(routed, BUDGET) == greedy_nodes(reference, BUDGET)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_sampled_results_are_backend_independent(model, seed):
    graph = make_graph(420, seed)
    config = replace(SAMPLED_CONFIG, seed=seed)
    with sparse_backend(True):
        fast = build_analysis(model, graph, config)
        fast_selection = greedy_nodes(fast, BUDGET)
        fast_score = fast.explainability(sorted(fast_selection))
    with sparse_backend(False):
        slow = build_analysis(model, graph, config)
        slow_selection = greedy_nodes(slow, BUDGET)
        slow_score = slow.explainability(sorted(slow_selection))
    assert fast_selection == slow_selection
    assert fast_score == slow_score


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_sampled_selection_quality_is_close_to_exact(model, seed):
    """End-to-end sanity: the sampled greedy run, re-scored under the exact
    objective, keeps most of the exact greedy value even at the loose test
    epsilon."""
    graph = make_graph(420, seed)
    sampled = build_analysis(model, graph, replace(SAMPLED_CONFIG, seed=seed))
    exact = GraphAnalysis(model, graph, replace(Configuration(), seed=seed))
    sampled_value = exact.explainability(sorted(greedy_nodes(sampled, BUDGET)))
    exact_value = exact.explainability(sorted(greedy_nodes(exact, BUDGET)))
    assert sampled_value >= 0.75 * exact_value
