"""Property-based tests for the graph substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, GraphPattern, induced_subgraph, remove_subgraph
from repro.matching import has_matching

from tests.conftest import build_random_typed_graph


graph_params = st.tuples(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=10_000))


@st.composite
def graph_and_node_subset(draw):
    num_nodes, seed = draw(graph_params)
    graph = build_random_typed_graph(num_nodes, seed=seed)
    subset = draw(st.sets(st.sampled_from(graph.nodes), min_size=0, max_size=num_nodes))
    return graph, subset


@settings(max_examples=40, deadline=None)
@given(graph_params)
def test_random_graphs_are_connected_and_consistent(params):
    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    assert graph.num_nodes() == num_nodes
    assert graph.is_connected()
    adjacency = graph.adjacency_matrix()
    assert adjacency.sum() == 2 * graph.num_edges()


@settings(max_examples=40, deadline=None)
@given(graph_and_node_subset())
def test_induced_and_residual_partition_the_graph(data):
    graph, subset = data
    kept = induced_subgraph(graph, subset)
    residual = remove_subgraph(graph, subset)
    assert set(kept.nodes) == set(subset)
    assert set(kept.nodes) | set(residual.nodes) == set(graph.nodes)
    assert set(kept.nodes) & set(residual.nodes) == set()
    # Every original edge is in exactly one of: kept, residual, or crosses the cut.
    crossing = sum(
        1 for u, v in graph.edges if (u in subset) != (v in subset)
    )
    assert kept.num_edges() + residual.num_edges() + crossing == graph.num_edges()


@settings(max_examples=40, deadline=None)
@given(graph_and_node_subset())
def test_induced_subgraph_preserves_types_and_degrees_bound(data):
    graph, subset = data
    sub = induced_subgraph(graph, subset)
    for node in sub.nodes:
        assert sub.node_type(node) == graph.node_type(node)
        assert sub.degree(node) <= graph.degree(node)


@settings(max_examples=40, deadline=None)
@given(graph_params)
def test_serialisation_round_trip(params):
    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    clone = Graph.from_dict(graph.to_dict())
    assert clone.nodes == graph.nodes
    assert clone.edges == graph.edges
    assert clone.structural_signature() == graph.structural_signature()


@settings(max_examples=30, deadline=None)
@given(graph_params)
def test_relabeling_preserves_signature_and_matching(params):
    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    rng = random.Random(seed)
    permutation = list(range(100, 100 + num_nodes))
    rng.shuffle(permutation)
    mapping = {node: permutation[index] for index, node in enumerate(graph.nodes)}
    relabelled = graph.relabel(mapping)
    assert graph.structural_signature() == relabelled.structural_signature()
    # A pattern extracted from the original graph matches the relabelled copy.
    pattern = GraphPattern.from_graph(induced_subgraph(graph, graph.nodes[:3]))
    if pattern.is_connected():
        assert has_matching(pattern, relabelled)


@settings(max_examples=30, deadline=None)
@given(graph_params)
def test_connected_components_partition_nodes(params):
    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    # Remove a random node to possibly disconnect the graph.
    graph.remove_node(graph.nodes[seed % num_nodes])
    components = graph.connected_components()
    all_nodes = [node for component in components for node in component]
    assert sorted(all_nodes) == sorted(graph.nodes)
    assert sum(len(component) for component in components) == graph.num_nodes()
