"""Property-based tests for pattern matching and summarisation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.summarize import summarize_subgraphs
from repro.graphs import GraphPattern, induced_subgraph
from repro.matching import (
    covered_nodes,
    find_matchings,
    has_matching,
    pattern_set_covers_nodes,
)
from repro.mining import PatternGenerator, enumerate_connected_patterns

from tests.conftest import build_random_typed_graph

graph_params = st.tuples(
    st.integers(min_value=3, max_value=10), st.integers(min_value=0, max_value=10_000)
)


@settings(max_examples=30, deadline=None)
@given(graph_params, st.data())
def test_pattern_extracted_from_graph_always_matches_it(params, data):
    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    size = data.draw(st.integers(min_value=1, max_value=min(4, num_nodes)))
    # Grow a connected node set so the extracted pattern is connected.
    nodes = {graph.nodes[seed % num_nodes]}
    while len(nodes) < size:
        frontier = set()
        for node in nodes:
            frontier |= graph.neighbors(node)
        frontier -= nodes
        if not frontier:
            break
        nodes.add(min(frontier))
    pattern = GraphPattern.from_graph(induced_subgraph(graph, nodes))
    assert has_matching(pattern, graph)
    # And every matching is type-preserving and injective.
    for mapping in find_matchings(pattern, graph, max_matchings=5):
        assert len(set(mapping.values())) == len(mapping)
        for pattern_node, graph_node in mapping.items():
            assert pattern.node_type(pattern_node) == graph.node_type(graph_node)


@settings(max_examples=25, deadline=None)
@given(graph_params)
def test_enumerated_patterns_match_their_source(params):
    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    for pattern in enumerate_connected_patterns(graph, max_pattern_size=3, max_patterns_per_graph=40):
        assert pattern.is_connected()
        assert has_matching(pattern, graph)


@settings(max_examples=25, deadline=None)
@given(graph_params)
def test_covered_nodes_is_subset_of_graph_nodes(params):
    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    generator = PatternGenerator(max_pattern_size=2, max_candidates=5)
    for pattern in generator.generate([graph]):
        covered = covered_nodes(pattern, graph)
        assert covered <= set(graph.nodes)


@settings(max_examples=20, deadline=None)
@given(graph_params, st.data())
def test_summarize_always_achieves_full_node_coverage(params, data):
    """Psum invariant (Lemma 4.3): the selected patterns cover every node of
    every explanation subgraph, for arbitrary subgraph collections."""
    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    num_subgraphs = data.draw(st.integers(min_value=1, max_value=3))
    subgraphs = []
    for index in range(num_subgraphs):
        size = data.draw(st.integers(min_value=1, max_value=num_nodes))
        nodes = data.draw(st.sets(st.sampled_from(graph.nodes), min_size=1, max_size=size))
        subgraphs.append(induced_subgraph(graph, nodes))
    result = summarize_subgraphs(subgraphs)
    assert result.node_coverage == 1.0
    assert pattern_set_covers_nodes(result.patterns, subgraphs)
    assert 0.0 <= result.edge_loss <= 1.0
