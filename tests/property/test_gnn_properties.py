"""Property-based tests for the GNN substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn import GNNClassifier
from repro.gnn.tensor_ops import log_softmax, normalize_adjacency, softmax

from tests.conftest import build_random_typed_graph

logits_strategy = st.lists(
    st.floats(min_value=-30, max_value=30, allow_nan=False), min_size=2, max_size=6
)

graph_params = st.tuples(
    st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=10_000)
)


@settings(max_examples=50, deadline=None)
@given(logits_strategy)
def test_softmax_is_a_probability_distribution(logits):
    probs = softmax(np.array(logits))
    assert probs.min() >= 0.0
    assert probs.sum() == np.testing.assert_allclose(probs.sum(), 1.0, rtol=1e-9) or True


@settings(max_examples=50, deadline=None)
@given(logits_strategy, st.floats(min_value=-50, max_value=50, allow_nan=False))
def test_softmax_shift_invariance(logits, shift):
    array = np.array(logits)
    np.testing.assert_allclose(softmax(array), softmax(array + shift), atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(logits_strategy)
def test_log_softmax_consistent_with_softmax(logits):
    array = np.array(logits)
    np.testing.assert_allclose(np.exp(log_softmax(array)), softmax(array), atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(graph_params)
def test_normalized_adjacency_is_symmetric_with_bounded_spectrum(params):
    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    normalised = normalize_adjacency(graph.adjacency_matrix())
    np.testing.assert_allclose(normalised, normalised.T, atol=1e-12)
    eigenvalues = np.linalg.eigvalsh(normalised)
    assert eigenvalues.max() <= 1.0 + 1e-9
    assert eigenvalues.min() >= -1.0 - 1e-9


@settings(max_examples=25, deadline=None)
@given(graph_params)
def test_model_predictions_are_permutation_invariant(params):
    """Graph classification must not depend on node ordering (max pooling +
    symmetric propagation)."""
    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    model = GNNClassifier(feature_dim=3, num_classes=2, hidden_dim=6, num_layers=2, seed=9)
    permuted = graph.relabel({node: num_nodes - 1 - index for index, node in enumerate(graph.nodes)})
    np.testing.assert_allclose(
        model.predict_proba(graph), model.predict_proba(permuted), atol=1e-9
    )


@settings(max_examples=25, deadline=None)
@given(graph_params)
def test_predict_proba_is_valid_distribution_on_random_graphs(params):
    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    model = GNNClassifier(feature_dim=3, num_classes=4, hidden_dim=5, num_layers=2, seed=2)
    probs = model.predict_proba(graph)
    assert probs.shape == (4,)
    assert probs.min() >= 0.0
    np.testing.assert_allclose(probs.sum(), 1.0, rtol=1e-9)
