"""Property tests: the match engine agrees with the reference matcher.

Random graphs x random patterns, asserting `has_matching`,
`matched_node_sets` and `count_matchings` agree between the engine and the
reference backtracking search — on both backends, with and without the
vectorized prefilters — plus memo invalidation under graph mutation.
Capped queries must agree *as ordered lists* (the engine replays the
reference enumeration order when a cap binds); uncapped queries as sets.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import GraphPattern, induced_subgraph
from repro.graphs.sparse import sparse_backend
from repro.matching import isomorphism as reference
from repro.matching.engine import MatchEngine, get_engine, match_many

from tests.conftest import build_random_typed_graph

graph_params = st.tuples(
    st.integers(min_value=3, max_value=12), st.integers(min_value=0, max_value=10_000)
)


def grow_connected_pattern(graph, seed, max_size=4):
    """Extract a connected induced pattern of up to ``max_size`` nodes."""
    rng = random.Random(seed)
    nodes = {graph.nodes[seed % graph.num_nodes()]}
    target = rng.randint(1, max_size)
    while len(nodes) < target:
        frontier = set()
        for node in nodes:
            frontier |= graph.neighbors(node)
        frontier -= nodes
        if not frontier:
            break
        nodes.add(min(frontier))
    return GraphPattern.from_graph(induced_subgraph(graph, nodes))


@settings(max_examples=40, deadline=None)
@given(graph_params, st.booleans(), st.data())
def test_engine_agrees_with_reference_matcher(params, use_prefilters, data):
    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    # Patterns from this graph (guaranteed matches) and from an unrelated
    # graph (frequently non-matching — exercises the emptiness certificates).
    other = build_random_typed_graph(max(3, num_nodes // 2), seed=seed + 1, num_types=4)
    patterns = [
        grow_connected_pattern(graph, seed),
        grow_connected_pattern(other, seed + 2),
    ]
    engine = MatchEngine()
    engine.use_prefilters = use_prefilters
    # cutoff 0 forces the indexed masked search even on tiny graphs; the
    # default delegates small graphs to the reference matcher (plus memo).
    engine.small_graph_cutoff = data.draw(st.sampled_from([0, 24]))
    cap = data.draw(st.one_of(st.none(), st.integers(min_value=1, max_value=6)))
    for pattern in patterns:
        assert engine.has_matching(pattern, graph) == reference.has_matching(
            pattern, graph
        )
        assert engine.count_matchings(pattern, graph, limit=cap) == reference.count_matchings(
            pattern, graph, limit=cap
        )
        engine_sets = engine.matched_node_sets(pattern, graph, max_matchings=cap)
        reference_sets = reference.matched_node_sets(pattern, graph, max_matchings=cap)
        if cap is None:
            assert {frozenset(s) for s in engine_sets} == {
                frozenset(s) for s in reference_sets
            }
        else:
            assert engine_sets == reference_sets


@settings(max_examples=25, deadline=None)
@given(graph_params)
def test_coverage_identical_across_backends(params):
    from repro.matching.coverage import covered_edges, covered_nodes

    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    pattern = grow_connected_pattern(graph, seed, max_size=4)
    for cap in (None, 1, 64):
        with sparse_backend(True):
            sparse_nodes = covered_nodes(pattern, graph, max_matchings=cap)
            sparse_edges = covered_edges(pattern, graph, max_matchings=cap)
        with sparse_backend(False):
            legacy_nodes = covered_nodes(pattern, graph, max_matchings=cap)
            legacy_edges = covered_edges(pattern, graph, max_matchings=cap)
        assert sparse_nodes == legacy_nodes
        assert sparse_edges == legacy_edges


@settings(max_examples=20, deadline=None)
@given(graph_params)
def test_memo_invalidates_on_graph_version_bumps(params):
    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    pattern = grow_connected_pattern(graph, seed, max_size=3)
    engine = MatchEngine()
    before = engine.covered_nodes(pattern, graph)
    # Mutate: append a pendant node of the pattern's first type, attached to
    # node 0 — the graph version bumps, so the memo entry must be recomputed.
    new_node = max(graph.nodes) + 1
    graph.add_node(new_node, pattern.node_type(pattern.nodes[0]))
    graph.add_edge(new_node, graph.nodes[0])
    after = engine.covered_nodes(pattern, graph)
    assert after == reference_covered(pattern, graph)
    assert new_node not in before  # the pre-mutation result was not rewritten


def reference_covered(pattern, graph):
    covered = set()
    for mapping in reference.iter_matchings(pattern, graph):
        covered.update(mapping.values())
    return covered


@settings(max_examples=20, deadline=None)
@given(graph_params, st.integers(min_value=2, max_value=5))
def test_match_many_equals_per_graph_reference(params, num_graphs):
    num_nodes, seed = params
    graphs = [
        build_random_typed_graph(num_nodes + offset % 3, seed=seed + offset)
        for offset in range(num_graphs)
    ]
    pattern = grow_connected_pattern(graphs[0], seed, max_size=3)
    with sparse_backend(True):
        flags = match_many(pattern, graphs)
    assert flags == [reference.has_matching(pattern, graph) for graph in graphs]


@settings(max_examples=15, deadline=None)
@given(graph_params)
def test_shared_engine_dispatch_is_consistent(params):
    """The process-wide engine (used by all call sites) matches the reference."""
    from repro.matching import has_matching as dispatched

    num_nodes, seed = params
    graph = build_random_typed_graph(num_nodes, seed=seed)
    pattern = grow_connected_pattern(graph, seed, max_size=4)
    with sparse_backend(True):
        engine_answer = dispatched(pattern, graph)
    with sparse_backend(False):
        legacy_answer = dispatched(pattern, graph)
    assert engine_answer == legacy_answer
    assert get_engine().stats()["size"] >= 0
