"""Property-based tests for Lemma 3.3: the explainability objective is a
non-negative, monotone, submodular set function of the selected nodes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Configuration, GraphAnalysis
from repro.gnn import GNNClassifier

from tests.conftest import build_random_typed_graph


@pytest.fixture(scope="module")
def model():
    return GNNClassifier(feature_dim=3, num_classes=2, hidden_dim=6, num_layers=2, seed=21)


def make_analysis(model, num_nodes, seed, theta, gamma):
    graph = build_random_typed_graph(num_nodes, seed=seed)
    config = Configuration(theta=theta, radius=0.3, gamma=gamma)
    return GraphAnalysis(model, graph, config), graph


scenario = st.tuples(
    st.integers(min_value=4, max_value=10),          # graph size
    st.integers(min_value=0, max_value=10_000),       # seed
    st.sampled_from([0.02, 0.05, 0.1, 0.2]),           # theta
    st.sampled_from([0.0, 0.5, 1.0]),                  # gamma
)


@settings(max_examples=30, deadline=None)
@given(scenario, st.data())
def test_non_negativity_and_upper_bound(model, params, data):
    num_nodes, seed, theta, gamma = params
    analysis, graph = make_analysis(model, num_nodes, seed, theta, gamma)
    subset = data.draw(st.sets(st.sampled_from(graph.nodes), max_size=num_nodes))
    value = analysis.explainability(subset)
    assert value >= 0.0
    assert value <= 1.0 + gamma + 1e-9


@settings(max_examples=30, deadline=None)
@given(scenario, st.data())
def test_monotonicity(model, params, data):
    num_nodes, seed, theta, gamma = params
    analysis, graph = make_analysis(model, num_nodes, seed, theta, gamma)
    subset = data.draw(st.sets(st.sampled_from(graph.nodes), max_size=num_nodes - 1))
    extra = data.draw(st.sampled_from([node for node in graph.nodes if node not in subset]))
    assert analysis.explainability(subset | {extra}) >= analysis.explainability(subset) - 1e-12


@settings(max_examples=30, deadline=None)
@given(scenario, st.data())
def test_submodularity_diminishing_returns(model, params, data):
    """f(S'' + u) - f(S'') >= f(S' + u) - f(S') for S'' subset of S'."""
    num_nodes, seed, theta, gamma = params
    analysis, graph = make_analysis(model, num_nodes, seed, theta, gamma)
    larger = data.draw(st.sets(st.sampled_from(graph.nodes), max_size=num_nodes - 1))
    smaller = data.draw(st.sets(st.sampled_from(sorted(larger)), max_size=len(larger))) if larger else set()
    outside = [node for node in graph.nodes if node not in larger]
    extra = data.draw(st.sampled_from(outside))
    gain_small = analysis.explainability(smaller | {extra}) - analysis.explainability(smaller)
    gain_large = analysis.explainability(larger | {extra}) - analysis.explainability(larger)
    assert gain_small >= gain_large - 1e-9


@settings(max_examples=20, deadline=None)
@given(scenario)
def test_full_set_maximises_the_objective(model, params):
    num_nodes, seed, theta, gamma = params
    analysis, graph = make_analysis(model, num_nodes, seed, theta, gamma)
    full_value = analysis.explainability(set(graph.nodes))
    for node in graph.nodes:
        assert analysis.explainability({node}) <= full_value + 1e-12


@settings(max_examples=20, deadline=None)
@given(scenario, st.data())
def test_influence_and_diversity_components_are_monotone(model, params, data):
    num_nodes, seed, theta, gamma = params
    analysis, graph = make_analysis(model, num_nodes, seed, theta, gamma)
    subset = data.draw(st.sets(st.sampled_from(graph.nodes), max_size=num_nodes - 1))
    extra = data.draw(st.sampled_from([node for node in graph.nodes if node not in subset]))
    assert analysis.influence_score(subset | {extra}) >= analysis.influence_score(subset)
    assert analysis.diversity_score(subset | {extra}) >= analysis.diversity_score(subset)
