"""Shared fixtures: small graphs, datasets, and a trained classifier.

Expensive fixtures (dataset construction, model training) are session-scoped
so the whole suite trains each model once.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import Configuration
from repro.datasets import make_mutagenicity, make_reddit_binary
from repro.gnn import GNNClassifier, Trainer
from repro.graphs import Graph


def build_triangle_graph() -> Graph:
    """A 3-node typed triangle with simple features."""
    graph = Graph(graph_id=0)
    graph.add_node(0, "A", [1.0, 0.0])
    graph.add_node(1, "B", [0.0, 1.0])
    graph.add_node(2, "A", [1.0, 0.0])
    graph.add_edge(0, 1, "x")
    graph.add_edge(1, 2, "x")
    graph.add_edge(0, 2, "y")
    return graph


def build_path_graph(length: int = 5, feature_dim: int = 2) -> Graph:
    """A typed path graph of the requested length."""
    graph = Graph(graph_id=1)
    for node in range(length):
        features = np.zeros(feature_dim)
        features[node % feature_dim] = 1.0
        graph.add_node(node, "P", features)
    for node in range(length - 1):
        graph.add_edge(node, node + 1)
    return graph


def build_random_typed_graph(num_nodes: int, seed: int = 0, num_types: int = 3) -> Graph:
    """A connected random typed graph used by property-based tests."""
    rng = random.Random(seed)
    graph = Graph()
    for node in range(num_nodes):
        features = np.zeros(num_types)
        features[node % num_types] = 1.0
        graph.add_node(node, f"T{node % num_types}", features)
    for node in range(1, num_nodes):
        graph.add_edge(node, rng.randrange(node))
    extra_edges = max(0, num_nodes // 2)
    for _ in range(extra_edges):
        u, v = rng.sample(range(num_nodes), 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


@pytest.fixture
def triangle_graph() -> Graph:
    return build_triangle_graph()


@pytest.fixture
def path_graph() -> Graph:
    return build_path_graph()


@pytest.fixture(scope="session")
def mut_database():
    """A small MUTAGENICITY-like database."""
    return make_mutagenicity(num_graphs=16, seed=3)


@pytest.fixture(scope="session")
def red_database():
    """A small REDDIT-BINARY-like database."""
    return make_reddit_binary(num_graphs=10, seed=3, base_size=14)


@pytest.fixture(scope="session")
def trained_mut_model(mut_database):
    """A GCN trained to high accuracy on the small MUT database."""
    model = GNNClassifier(feature_dim=14, num_classes=2, hidden_dim=16, num_layers=3, seed=5)
    trainer = Trainer(model, learning_rate=0.01, epochs=40, seed=5)
    trainer.fit(mut_database, train_indices=list(range(len(mut_database))))
    return model


@pytest.fixture(scope="session")
def untrained_small_model():
    """An untrained 2-feature classifier for structural tests."""
    return GNNClassifier(feature_dim=2, num_classes=2, hidden_dim=8, num_layers=2, seed=1)


@pytest.fixture
def default_config() -> Configuration:
    return Configuration().with_default_bound(0, 8)
