"""Scale-stress substrate for the sampled-objective regime.

The seven Table-3 substrates are sized for exhaustive CPU runs (tens of
graphs, tens of nodes).  The sampled objective
(``Configuration(objective="sampled")``) only pays off past the exact
path's comfort zone, so this module generates the *web-scale-shaped*
regime the paper's scalability section targets: Barabasi-Albert graphs of
1k+ nodes, in databases that can stretch to 100k graphs.

Two properties matter more here than anywhere else:

* **Per-graph determinism** — each graph is derived from ``(seed, index)``
  alone, so a 100k-graph database can be generated lazily, in chunks, or
  in parallel workers and still be bit-identical to the monolithic build
  (:func:`iter_scale_stress` is the lazy form, :func:`make_scale_stress`
  the eager one).
* **Learnable labels** — the binary classes follow the SYNTHETIC
  construction (house vs. cycle motifs on a BA base), so the standard
  training loop produces a model whose explanations are meaningful at
  stress sizes too.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.exceptions import DatasetError
from repro.graphs.database import GraphDatabase
from repro.graphs.generators import (
    attach_motif,
    barabasi_albert_graph,
    cycle_motif,
    house_motif,
)
from repro.graphs.graph import Graph

__all__ = ["make_scale_stress", "iter_scale_stress"]

#: Mixing constant for the per-graph seed stream: graph ``index`` under
#: database ``seed`` always draws from ``Random(seed * _SEED_STRIDE + index)``,
#: independent of generation order.
_SEED_STRIDE = 1_000_003


def _build_graph(index: int, seed: int, base_size: int, motifs_per_graph: int) -> tuple[Graph, int]:
    label = index % 2
    rng = random.Random(seed * _SEED_STRIDE + index)
    feature_dim = 8
    graph = barabasi_albert_graph(
        base_size + rng.randint(-base_size // 16, base_size // 16),
        2,
        rng,
        node_type="base",
        feature_dim=feature_dim,
    )
    for _ in range(motifs_per_graph):
        motif = (
            house_motif(feature_dim=feature_dim)
            if label == 0
            else cycle_motif(6, feature_dim=feature_dim)
        )
        attach_motif(graph, motif, rng, num_bridges=1)
    graph.graph_id = index
    return graph, label


def iter_scale_stress(
    num_graphs: int = 6,
    seed: int = 0,
    base_size: int = 1200,
    motifs_per_graph: int = 3,
    start_index: int = 0,
) -> Iterator[tuple[Graph, int]]:
    """Yield ``(graph, label)`` pairs of the scale-stress stream lazily.

    ``start_index`` lets callers resume or shard the stream: the graph at
    any index is a pure function of ``(seed, index)``, so
    ``iter_scale_stress(k, start_index=i)`` produces exactly the slice
    ``[i, i + k)`` of the full database.  This is what makes a 100k-graph
    regime practical — consumers can stream graphs through ingestion or
    fan generation out across processes without materialising the whole
    database first.
    """
    if num_graphs < 1:
        raise DatasetError("need at least one graph")
    if base_size < 8:
        raise DatasetError(f"scale-stress graphs need base_size >= 8, got {base_size}")
    for index in range(start_index, start_index + num_graphs):
        yield _build_graph(index, seed, base_size, motifs_per_graph)


def make_scale_stress(
    num_graphs: int = 6,
    seed: int = 0,
    base_size: int = 1200,
    motifs_per_graph: int = 3,
) -> GraphDatabase:
    """The eager scale-stress database (binary house/cycle BA graphs).

    Defaults are sized for the ``--suite sampled`` benchmark: a handful of
    ~1200-node graphs, large enough that the exact objective's dense
    propagation powers and pairwise-distance tensors dominate while the
    sampled estimators stay sub-second.  All knobs are plumbed through
    ``load_dataset("SCALE", ...)``; pushing ``num_graphs`` to ``100_000``
    is supported but is better consumed through :func:`iter_scale_stress`.
    """
    if num_graphs < 2:
        raise DatasetError("need at least two graphs")
    database = GraphDatabase(name="SCALE-STRESS")
    for graph, label in iter_scale_stress(
        num_graphs, seed=seed, base_size=base_size, motifs_per_graph=motifs_per_graph
    ):
        database.add_graph(graph, label)
    return database
