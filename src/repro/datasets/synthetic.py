"""Synthetic stand-ins for the paper's seven benchmark datasets.

No network access is available in this environment, so each public dataset of
Table 3 is replaced by a generator that (a) matches the dataset's qualitative
structure — molecule graphs, discussion threads, protein interaction graphs,
call graphs, co-purchase ego-networks, BA+motif graphs — and (b) plants a
known class-discriminative motif in each class, so that a trained GNN has a
real signal to pick up and the explainers have a ground-truth substructure to
recover (exactly the role toxicophores play for MUTAGENICITY in the paper).

Graph sizes are scaled down relative to Table 3 so the full benchmark suite
runs on a CPU-only machine; every builder accepts ``num_graphs`` and size
parameters so larger instances can be generated for scalability sweeps.
"""

from __future__ import annotations

import random

import numpy as np

from repro.exceptions import DatasetError
from repro.graphs.database import GraphDatabase
from repro.graphs.generators import (
    attach_motif,
    barabasi_albert_graph,
    clique_motif,
    cycle_motif,
    erdos_renyi_graph,
    grid_motif,
    house_motif,
    one_hot,
    star_motif,
    tree_graph,
)
from repro.graphs.graph import Graph

__all__ = [
    "make_mutagenicity",
    "make_reddit_binary",
    "make_enzymes",
    "make_malnet_tiny",
    "make_pcqm4m",
    "make_products",
    "make_ba_motif_synthetic",
    "ATOM_TYPES",
]

# Atom vocabulary for the molecule-like datasets (14 types as in MUTAGENICITY).
ATOM_TYPES = ["C", "N", "O", "H", "Cl", "F", "Br", "S", "P", "I", "Na", "K", "Li", "Ca"]


def _atom_features(atom: str) -> np.ndarray:
    return one_hot(ATOM_TYPES.index(atom), len(ATOM_TYPES))


def _add_atom(graph: Graph, node_id: int, atom: str) -> None:
    graph.add_node(node_id, atom, _atom_features(atom))


def _carbon_chain(graph: Graph, length: int, start_id: int) -> list[int]:
    """Append a carbon chain, returning the new node ids."""
    ids = []
    for offset in range(length):
        node_id = start_id + offset
        _add_atom(graph, node_id, "C")
        if offset > 0:
            graph.add_edge(node_id - 1, node_id, "single")
        ids.append(node_id)
    return ids


def _carbon_ring(graph: Graph, size: int, start_id: int) -> list[int]:
    """Append a carbon ring (aromatic-like), returning the new node ids."""
    ids = _carbon_chain(graph, size, start_id)
    graph.add_edge(ids[-1], ids[0], "single")
    return ids


def _nitro_group(graph: Graph, carbon: int, start_id: int) -> list[int]:
    """Attach a nitro group (N with two O) to an existing carbon atom."""
    nitrogen = start_id
    oxygen_a = start_id + 1
    oxygen_b = start_id + 2
    _add_atom(graph, nitrogen, "N")
    _add_atom(graph, oxygen_a, "O")
    _add_atom(graph, oxygen_b, "O")
    graph.add_edge(carbon, nitrogen, "single")
    graph.add_edge(nitrogen, oxygen_a, "double")
    graph.add_edge(nitrogen, oxygen_b, "double")
    return [nitrogen, oxygen_a, oxygen_b]


def make_mutagenicity(num_graphs: int = 60, seed: int = 0, ring_size: int = 6) -> GraphDatabase:
    """Molecule graphs: mutagens (label 1) carry a nitro-group toxicophore.

    Both classes are built from carbon rings and chains with occasional
    hydrogen/chlorine decorations; only the mutagen class receives one or two
    nitro groups (the aromatic nitro toxicophore from the paper's Example 1.1),
    while nonmutagens receive hydroxyl-like O-H decorations instead.
    """
    if num_graphs < 2:
        raise DatasetError("need at least two graphs")
    rng = random.Random(seed)
    database = GraphDatabase(name="MUTAGENICITY")
    for index in range(num_graphs):
        label = index % 2
        graph = Graph()
        ring = _carbon_ring(graph, ring_size, 0)
        next_id = ring_size
        chain = _carbon_chain(graph, rng.randint(2, 4), next_id)
        graph.add_edge(rng.choice(ring), chain[0], "single")
        next_id = chain[-1] + 1
        # Decorations shared by both classes.
        for _ in range(rng.randint(1, 3)):
            carbon = rng.choice(ring + chain)
            _add_atom(graph, next_id, rng.choice(["H", "Cl", "F"]))
            graph.add_edge(carbon, next_id, "single")
            next_id += 1
        if label == 1:
            # Mutagens: one or two nitro groups attached to the ring.
            for _ in range(rng.randint(1, 2)):
                carbon = rng.choice(ring)
                added = _nitro_group(graph, carbon, next_id)
                next_id = added[-1] + 1
        else:
            # Nonmutagens: hydroxyl decorations (O-H), no nitro group.
            for _ in range(rng.randint(1, 2)):
                carbon = rng.choice(ring)
                _add_atom(graph, next_id, "O")
                _add_atom(graph, next_id + 1, "H")
                graph.add_edge(carbon, next_id, "single")
                graph.add_edge(next_id, next_id + 1, "single")
                next_id += 2
        graph.graph_id = index
        database.add_graph(graph, label)
    return database


def _degree_bucket_features(graph: Graph, num_buckets: int = 4) -> None:
    """Assign log-degree bucket one-hot features (default feature for
    datasets that ship without node features, giving the GCN a usable input)."""
    for node in graph.nodes:
        bucket = min(num_buckets - 1, int(np.log2(graph.degree(node) + 1)))
        graph.add_node(node, graph.node_type(node), one_hot(bucket, num_buckets))


def make_reddit_binary(num_graphs: int = 40, seed: int = 0, base_size: int = 24) -> GraphDatabase:
    """Discussion threads: Q&A threads (label 0) are biclique-like, online
    discussions (label 1) are star-like — the structures the paper's case
    study recovers as patterns P81 and P61."""
    if num_graphs < 2:
        raise DatasetError("need at least two graphs")
    rng = random.Random(seed)
    database = GraphDatabase(name="REDDIT-BINARY")
    for index in range(num_graphs):
        label = index % 2
        graph = Graph()
        size = base_size + rng.randint(-4, 4)
        for node in range(size):
            graph.add_node(node, "user")
        if label == 0:
            # Question-answer: a few experts each answer many questioners.
            experts = list(range(3))
            questioners = list(range(3, size))
            for questioner in questioners:
                for expert in rng.sample(experts, k=rng.randint(2, 3)):
                    if not graph.has_edge(expert, questioner):
                        graph.add_edge(expert, questioner)
        else:
            # Online discussion: star around one or two popular posters.
            hubs = list(range(2))
            others = list(range(2, size))
            for other in others:
                hub = rng.choice(hubs)
                graph.add_edge(hub, other)
            # Sprinkle a few replies between ordinary users.
            for _ in range(size // 6):
                u, v = rng.sample(others, 2)
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
        # Connect any stragglers so graphs stay connected.
        components = graph.connected_components()
        while len(components) > 1:
            graph.add_edge(next(iter(components[0])), next(iter(components[1])))
            components = graph.connected_components()
        _degree_bucket_features(graph)
        graph.graph_id = index
        database.add_graph(graph, label)
    return database


_ENZYME_MOTIFS = {
    0: lambda: cycle_motif(3, node_type="site"),
    1: lambda: cycle_motif(5, node_type="site"),
    2: lambda: clique_motif(4, node_type="site"),
    3: lambda: star_motif(4, node_type="site"),
    4: lambda: grid_motif(2, 3, node_type="site"),
    5: lambda: house_motif(node_type="site"),
}


def make_enzymes(num_graphs: int = 60, seed: int = 0, backbone: int = 14) -> GraphDatabase:
    """Protein-like graphs in six classes, each with a distinct active-site motif."""
    if num_graphs < len(_ENZYME_MOTIFS):
        raise DatasetError(f"need at least {len(_ENZYME_MOTIFS)} graphs")
    rng = random.Random(seed)
    feature_dim = 3
    database = GraphDatabase(name="ENZYMES")
    for index in range(num_graphs):
        label = index % len(_ENZYME_MOTIFS)
        graph = erdos_renyi_graph(
            backbone + rng.randint(-3, 3), 0.15, rng, node_type="residue", feature_dim=feature_dim
        )
        motif = _ENZYME_MOTIFS[label]()
        # Give motif nodes a distinct secondary-structure feature.
        for node in motif.nodes:
            motif.add_node(node, motif.node_type(node), one_hot(label % feature_dim, feature_dim))
        attach_motif(graph, motif, rng, num_bridges=2)
        graph.graph_id = index
        database.add_graph(graph, label)
    return database


_MALNET_MOTIFS = {
    0: lambda: clique_motif(5, node_type="func"),
    1: lambda: star_motif(8, node_type="func"),
    2: lambda: cycle_motif(7, node_type="func"),
    3: lambda: grid_motif(3, 3, node_type="func"),
    4: lambda: house_motif(node_type="func"),
}


def make_malnet_tiny(num_graphs: int = 30, seed: int = 0, tree_size: int = 40) -> GraphDatabase:
    """Function-call-graph-like trees in five classes (malware families),
    each family marked by a characteristic calling substructure."""
    if num_graphs < len(_MALNET_MOTIFS):
        raise DatasetError(f"need at least {len(_MALNET_MOTIFS)} graphs")
    rng = random.Random(seed)
    database = GraphDatabase(name="MALNET-TINY")
    for index in range(num_graphs):
        label = index % len(_MALNET_MOTIFS)
        graph = tree_graph(tree_size + rng.randint(-5, 5), branching=3, rng=rng, node_type="func")
        motif = _MALNET_MOTIFS[label]()
        attach_motif(graph, motif, rng, num_bridges=1)
        _degree_bucket_features(graph)
        graph.graph_id = index
        database.add_graph(graph, label)
    return database


def make_pcqm4m(num_graphs: int = 90, seed: int = 0) -> GraphDatabase:
    """Small quantum-chemistry-like molecules in three classes.

    Class 0: saturated chains; class 1: single aromatic-like ring; class 2:
    fused double ring.  Node features are 9-dimensional fingerprints: the
    one-hot atom group plus degree and aromaticity flags.
    """
    if num_graphs < 3:
        raise DatasetError("need at least three graphs")
    rng = random.Random(seed)
    database = GraphDatabase(name="PCQM4Mv2")

    def fingerprint(atom: str, in_ring: bool, degree_hint: int) -> np.ndarray:
        vector = np.zeros(9)
        vector[ATOM_TYPES.index(atom) % 6] = 1.0
        vector[6] = 1.0 if in_ring else 0.0
        vector[7] = min(degree_hint, 4) / 4.0
        vector[8] = 1.0
        return vector

    for index in range(num_graphs):
        label = index % 3
        graph = Graph()
        next_id = 0
        if label == 0:
            length = rng.randint(6, 10)
            for offset in range(length):
                graph.add_node(next_id + offset, "C", fingerprint("C", False, 2))
                if offset:
                    graph.add_edge(next_id + offset - 1, next_id + offset, "single")
            next_id += length
        else:
            ring_count = label  # one ring for class 1, two fused rings for class 2
            previous_ring: list[int] = []
            for _ in range(ring_count):
                ring_ids = list(range(next_id, next_id + 6))
                for node in ring_ids:
                    graph.add_node(node, "C", fingerprint("C", True, 2))
                for position, node in enumerate(ring_ids):
                    graph.add_edge(node, ring_ids[(position + 1) % 6], "aromatic")
                if previous_ring:
                    graph.add_edge(previous_ring[-1], ring_ids[0], "single")
                    graph.add_edge(previous_ring[-2], ring_ids[1], "single")
                previous_ring = ring_ids
                next_id += 6
        # Shared decorations.
        anchors = list(graph.nodes)
        for _ in range(rng.randint(1, 3)):
            anchor = rng.choice(anchors)
            graph.add_node(next_id, "O", fingerprint("O", False, 1))
            graph.add_edge(anchor, next_id, "single")
            next_id += 1
        graph.graph_id = index
        database.add_graph(graph, label)
    return database


def make_products(
    num_graphs: int = 40,
    seed: int = 0,
    num_classes: int = 4,
    ego_size: int = 30,
) -> GraphDatabase:
    """Co-purchase ego-network subgraphs sampled from a large BA host graph.

    The paper converts the PRODUCTS node-classification graph into a graph
    classification task by sampling neighbourhood subgraphs; here each sampled
    ego-net is additionally marked with a category motif so the classes are
    learnable without the original node attributes.
    """
    if num_classes < 2:
        raise DatasetError("need at least two classes")
    rng = random.Random(seed)
    motif_builders = [
        lambda: clique_motif(4, node_type="product"),
        lambda: star_motif(5, node_type="product"),
        lambda: cycle_motif(6, node_type="product"),
        lambda: grid_motif(2, 3, node_type="product"),
        lambda: house_motif(node_type="product"),
        lambda: cycle_motif(4, node_type="product"),
    ]
    database = GraphDatabase(name="PRODUCTS")
    for index in range(num_graphs):
        label = index % num_classes
        graph = barabasi_albert_graph(ego_size + rng.randint(-5, 5), 2, rng, node_type="product")
        motif = motif_builders[label % len(motif_builders)]()
        attach_motif(graph, motif, rng, num_bridges=2)
        _degree_bucket_features(graph)
        graph.graph_id = index
        database.add_graph(graph, label)
    return database


def make_ba_motif_synthetic(
    num_graphs: int = 40,
    seed: int = 0,
    base_size: int = 30,
    motifs_per_graph: int = 2,
) -> GraphDatabase:
    """The SYNTHETIC dataset: BA base graphs with House (label 0) or Cycle
    (label 1) motifs attached, following the GNNExplainer construction."""
    if num_graphs < 2:
        raise DatasetError("need at least two graphs")
    rng = random.Random(seed)
    feature_dim = 8
    database = GraphDatabase(name="SYNTHETIC")
    for index in range(num_graphs):
        label = index % 2
        graph = barabasi_albert_graph(
            base_size + rng.randint(-4, 4), 2, rng, node_type="base", feature_dim=feature_dim
        )
        for _ in range(motifs_per_graph):
            motif = (
                house_motif(feature_dim=feature_dim)
                if label == 0
                else cycle_motif(6, feature_dim=feature_dim)
            )
            attach_motif(graph, motif, rng, num_bridges=1)
        graph.graph_id = index
        database.add_graph(graph, label)
    return database
