"""Synthetic dataset substrates for the paper's seven benchmarks."""

from repro.datasets.registry import (
    DATASET_ALIASES,
    DATASET_BUILDERS,
    available_datasets,
    load_dataset,
)
from repro.datasets.scale import iter_scale_stress, make_scale_stress
from repro.datasets.synthetic import (
    ATOM_TYPES,
    make_ba_motif_synthetic,
    make_enzymes,
    make_malnet_tiny,
    make_mutagenicity,
    make_pcqm4m,
    make_products,
    make_reddit_binary,
)

__all__ = [
    "load_dataset",
    "available_datasets",
    "DATASET_BUILDERS",
    "DATASET_ALIASES",
    "ATOM_TYPES",
    "make_mutagenicity",
    "make_reddit_binary",
    "make_enzymes",
    "make_malnet_tiny",
    "make_pcqm4m",
    "make_products",
    "make_ba_motif_synthetic",
    "make_scale_stress",
    "iter_scale_stress",
]
