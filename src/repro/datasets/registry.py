"""Dataset registry: the paper's seven datasets plus the scale-stress
substrate, loadable by canonical name or paper alias."""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import DatasetError
from repro.datasets.scale import make_scale_stress
from repro.datasets.synthetic import (
    make_ba_motif_synthetic,
    make_enzymes,
    make_malnet_tiny,
    make_mutagenicity,
    make_pcqm4m,
    make_products,
    make_reddit_binary,
)
from repro.graphs.database import GraphDatabase

__all__ = ["DATASET_BUILDERS", "DATASET_ALIASES", "available_datasets", "load_dataset"]

DATASET_BUILDERS: dict[str, Callable[..., GraphDatabase]] = {
    "MUTAGENICITY": make_mutagenicity,
    "REDDIT-BINARY": make_reddit_binary,
    "ENZYMES": make_enzymes,
    "MALNET-TINY": make_malnet_tiny,
    "PCQM4Mv2": make_pcqm4m,
    "PRODUCTS": make_products,
    "SYNTHETIC": make_ba_motif_synthetic,
    # Not one of the paper's seven benchmarks: the web-scale-shaped stress
    # regime (1k+-node BA graphs) used by the sampled-objective benchmarks.
    "SCALE-STRESS": make_scale_stress,
}

# Short names used throughout the paper's figures.
DATASET_ALIASES: dict[str, str] = {
    "MUT": "MUTAGENICITY",
    "RED": "REDDIT-BINARY",
    "ENZ": "ENZYMES",
    "MAL": "MALNET-TINY",
    "PCQ": "PCQM4Mv2",
    "PRO": "PRODUCTS",
    "SYN": "SYNTHETIC",
    "SCALE": "SCALE-STRESS",
    "SCL": "SCALE-STRESS",
}


def available_datasets() -> list[str]:
    """Canonical dataset names, in the order used by the paper's Table 3."""
    return list(DATASET_BUILDERS)


def load_dataset(name: str, **kwargs) -> GraphDatabase:
    """Build a dataset by canonical name or paper alias (e.g. ``MUT``); the
    lookup is case-insensitive."""
    upper = name.upper()
    canonical = DATASET_ALIASES.get(upper, upper).upper()
    by_upper_name = {key.upper(): builder for key, builder in DATASET_BUILDERS.items()}
    builder = by_upper_name.get(canonical)
    if builder is None:
        raise DatasetError(
            f"unknown dataset '{name}'; available: {sorted(DATASET_BUILDERS) + sorted(DATASET_ALIASES)}"
        )
    return builder(**kwargs)
