"""Pattern candidate generation: the ``PGen`` / ``IncPGen`` operators.

``PGen`` (section 4) extracts candidate patterns from a set of explanation
subgraphs using constrained pattern mining under the MDL principle; the
candidates are then verified and greedily selected by ``Psum``.  ``IncPGen``
(section 5) is its streaming counterpart: it only mines the small subgraph
induced by the r-hop neighbourhood of a newly arrived node and only returns
patterns not already in the maintained pattern set.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern
from repro.graphs.subgraph import khop_subgraph
from repro.mining.frequent import enumerate_connected_patterns, iter_connected_pattern_keys
from repro.mining.mdl import mdl_rank

__all__ = ["PatternGenerator"]


class PatternGenerator:
    """Generates candidate summarising patterns from explanation subgraphs.

    Parameters
    ----------
    max_pattern_size:
        Upper bound on candidate pattern node count; small patterns are what
        makes the higher tier "queryable".
    max_candidates:
        Cap on the number of candidates returned per call (best-MDL first).
    max_patterns_per_graph:
        Safety bound on enumeration inside a single subgraph.
    """

    def __init__(
        self,
        max_pattern_size: int = 4,
        max_candidates: int = 32,
        max_patterns_per_graph: int = 128,
    ) -> None:
        self.max_pattern_size = max_pattern_size
        self.max_candidates = max_candidates
        self.max_patterns_per_graph = max_patterns_per_graph

    # ------------------------------------------------------------------
    # PGen
    # ------------------------------------------------------------------
    def generate(self, subgraphs: Sequence[Graph]) -> list[GraphPattern]:
        """Candidate patterns for a set of explanation subgraphs (MDL-ranked)."""
        candidates: dict[tuple, GraphPattern] = {}
        for graph in subgraphs:
            if graph.num_nodes() == 0:
                continue
            for pattern in enumerate_connected_patterns(
                graph,
                self.max_pattern_size,
                max_patterns_per_graph=self.max_patterns_per_graph,
            ):
                candidates.setdefault(pattern.canonical_key(), pattern)
        ranked = mdl_rank(list(candidates.values()), list(subgraphs))
        for index, pattern in enumerate(ranked):
            pattern.pattern_id = index
        return ranked[: self.max_candidates]

    # ------------------------------------------------------------------
    # IncPGen
    # ------------------------------------------------------------------
    def generate_incremental(
        self,
        subgraph: Graph,
        new_node: int,
        existing_patterns: Sequence[GraphPattern],
        hops: int = 1,
    ) -> list[GraphPattern]:
        """New candidate patterns around ``new_node`` (``delta P``).

        Only the ``hops``-hop neighbourhood of the newly arrived node inside
        the current explanation subgraph is mined, and patterns already in
        ``existing_patterns`` (up to isomorphism) are filtered out.
        """
        if subgraph.num_nodes() == 0 or not subgraph.has_node(new_node):
            return []
        local = khop_subgraph(subgraph, new_node, hops)
        known_keys = {pattern.canonical_key() for pattern in existing_patterns}
        fresh: dict[tuple, GraphPattern] = {}
        for pattern in enumerate_connected_patterns(
            local,
            self.max_pattern_size,
            max_patterns_per_graph=self.max_patterns_per_graph,
        ):
            key = pattern.canonical_key()
            if key not in known_keys:
                fresh.setdefault(key, pattern)
        ranked = mdl_rank(list(fresh.values()), [local])
        return ranked[: self.max_candidates]

    def has_novel_pattern(
        self,
        subgraph: Graph,
        new_node: int,
        existing_patterns: Sequence[GraphPattern],
        hops: int = 1,
    ) -> bool:
        """Whether :meth:`generate_incremental` would return any pattern.

        Short-circuiting membership probe: walks the same neighbourhood
        enumeration (same order, same truncation cap) but stops at the first
        canonical key not already in ``existing_patterns`` — no pattern is
        materialised and no MDL ranking runs.  ``max_candidates`` is >= 1,
        and dedup/ranking/truncation preserve emptiness, so the answer is
        exactly ``bool(self.generate_incremental(...))``.  The streaming
        swap loop (``IncUpdateVS`` case b) only needs this boolean.
        """
        if subgraph.num_nodes() == 0 or not subgraph.has_node(new_node):
            return False
        local = khop_subgraph(subgraph, new_node, hops)
        known_keys = {pattern.canonical_key() for pattern in existing_patterns}
        return any(
            key not in known_keys
            for key in iter_connected_pattern_keys(
                local,
                self.max_pattern_size,
                max_patterns_per_graph=self.max_patterns_per_graph,
            )
        )
