"""Minimum-description-length (MDL) scoring for candidate patterns.

``PGen`` ranks candidate patterns so that patterns which compress the
explanation subgraphs well — they cover many nodes/edges while being small —
are verified first.  The scores follow the classic two-part MDL formulation:
``L(P) + L(Gs | P)`` where the model cost is the encoded pattern size and the
data cost is whatever the pattern fails to cover.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern
from repro.matching.coverage import covered_edges, covered_nodes

__all__ = ["pattern_encoding_cost", "description_length", "mdl_rank"]


def pattern_encoding_cost(pattern: GraphPattern, num_types: int = 16) -> float:
    """Bits needed to encode the pattern itself (model cost ``L(P)``)."""
    num_nodes = pattern.num_nodes()
    num_edges = pattern.num_edges()
    if num_nodes == 0:
        return 0.0
    node_bits = num_nodes * math.log2(max(num_types, 2))
    # Each edge picks an unordered node pair plus an edge type.
    pair_space = max(num_nodes * (num_nodes - 1) / 2, 1)
    edge_bits = num_edges * (math.log2(pair_space) + math.log2(max(num_types, 2)))
    return node_bits + edge_bits


def description_length(
    pattern: GraphPattern,
    subgraphs: Sequence[Graph],
    num_types: int = 16,
    max_matchings: int | None = 64,
) -> float:
    """Two-part description length of the subgraphs given the pattern."""
    model_cost = pattern_encoding_cost(pattern, num_types=num_types)
    data_cost = 0.0
    for graph in subgraphs:
        nodes_covered = covered_nodes(pattern, graph, max_matchings=max_matchings)
        edges_covered = covered_edges(pattern, graph, max_matchings=max_matchings)
        uncovered_nodes = graph.num_nodes() - len(nodes_covered)
        uncovered_edges = graph.num_edges() - len(edges_covered)
        data_cost += uncovered_nodes * math.log2(max(num_types, 2))
        pair_space = max(graph.num_nodes() * (graph.num_nodes() - 1) / 2, 1)
        data_cost += uncovered_edges * (math.log2(pair_space) + math.log2(max(num_types, 2)))
    return model_cost + data_cost


def mdl_rank(
    patterns: Sequence[GraphPattern],
    subgraphs: Sequence[Graph],
    num_types: int = 16,
    max_matchings: int | None = 64,
) -> list[GraphPattern]:
    """Patterns sorted by ascending description length (best compressors first)."""
    scored = [
        (description_length(pattern, subgraphs, num_types=num_types, max_matchings=max_matchings), index, pattern)
        for index, pattern in enumerate(patterns)
    ]
    scored.sort(key=lambda item: (item[0], item[1]))
    return [pattern for _, _, pattern in scored]
