"""Graph pattern mining substrate (the PGen / IncPGen operators)."""

from repro.mining.candidates import PatternGenerator
from repro.mining.frequent import (
    FrequentPattern,
    enumerate_connected_patterns,
    frequent_patterns,
)
from repro.mining.mdl import description_length, mdl_rank, pattern_encoding_cost

__all__ = [
    "PatternGenerator",
    "FrequentPattern",
    "enumerate_connected_patterns",
    "frequent_patterns",
    "description_length",
    "mdl_rank",
    "pattern_encoding_cost",
]
