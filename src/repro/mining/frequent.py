"""Bounded frequent connected-pattern mining (gSpan-style pattern growth).

This is a simplified, size-bounded variant of gSpan: patterns are grown one
node at a time from single-node seeds, duplicates are pruned with an
isomorphism-invariant canonical key, and support is counted with the exact
matcher.  It is intentionally bounded (pattern size <= ``max_pattern_size``)
because GVEX only needs small summarising patterns, never a full frequent
subgraph lattice.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import MiningError
from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern
from repro.graphs.subgraph import induced_subgraph
from repro.matching.isomorphism import has_matching

__all__ = ["FrequentPattern", "enumerate_connected_patterns", "frequent_patterns"]


@dataclass
class FrequentPattern:
    """A mined pattern together with its support."""

    pattern: GraphPattern
    support: int
    supporting_graphs: list[int]


def enumerate_connected_patterns(
    graph: Graph,
    max_pattern_size: int,
    max_patterns_per_graph: int = 256,
) -> list[GraphPattern]:
    """All connected induced patterns of ``graph`` up to ``max_pattern_size`` nodes.

    Enumeration expands connected node sets breadth-first and deduplicates by
    canonical key; it stops early once ``max_patterns_per_graph`` distinct
    patterns were produced so pathological graphs cannot blow up the search.
    """
    if max_pattern_size < 1:
        raise MiningError("max_pattern_size must be at least 1")
    patterns: dict[tuple, GraphPattern] = {}
    visited_sets: set[frozenset[int]] = set()
    frontier: list[frozenset[int]] = [frozenset({node}) for node in graph.nodes]
    visited_sets.update(frontier)
    while frontier and len(patterns) < max_patterns_per_graph:
        node_set = frontier.pop()
        pattern = GraphPattern.from_graph(induced_subgraph(graph, node_set))
        patterns.setdefault(pattern.canonical_key(), pattern)
        if len(node_set) >= max_pattern_size:
            continue
        boundary: set[int] = set()
        for node in node_set:
            boundary |= graph.neighbors(node)
        for neighbour in boundary - node_set:
            extended = node_set | {neighbour}
            if extended not in visited_sets:
                visited_sets.add(extended)
                frontier.append(extended)
    return list(patterns.values())


def frequent_patterns(
    graphs: Sequence[Graph],
    min_support: int = 2,
    max_pattern_size: int = 5,
    max_patterns_per_graph: int = 256,
) -> list[FrequentPattern]:
    """Connected patterns appearing in at least ``min_support`` of the graphs.

    Results are sorted by descending support, then descending pattern size, so
    the most frequent and most informative patterns come first.
    """
    if min_support < 1:
        raise MiningError("min_support must be at least 1")
    candidate_index: dict[tuple, GraphPattern] = {}
    for graph in graphs:
        for pattern in enumerate_connected_patterns(
            graph, max_pattern_size, max_patterns_per_graph=max_patterns_per_graph
        ):
            candidate_index.setdefault(pattern.canonical_key(), pattern)
    results: list[FrequentPattern] = []
    for pattern in candidate_index.values():
        supporting = [
            index for index, graph in enumerate(graphs) if has_matching(pattern, graph)
        ]
        if len(supporting) >= min_support:
            results.append(
                FrequentPattern(pattern=pattern, support=len(supporting), supporting_graphs=supporting)
            )
    results.sort(key=lambda fp: (-fp.support, -fp.pattern.size()))
    return results
