"""Bounded frequent connected-pattern mining (gSpan-style pattern growth).

This is a simplified, size-bounded variant of gSpan: patterns are grown one
node at a time from single-node seeds, duplicates are pruned with an
isomorphism-invariant canonical key, and support is counted with the exact
matcher.  It is intentionally bounded (pattern size <= ``max_pattern_size``)
because GVEX only needs small summarising patterns, never a full frequent
subgraph lattice.

Enumeration expands connected node sets breadth-first (a deque — seeds in
node insertion order, boundary nodes in sorted order — so the enumeration
sequence, and therefore any ``max_patterns_per_graph`` truncation, is fully
deterministic and reproducible across runs).  With the sparse backend enabled
(the default) the canonical key of every candidate node set is maintained
*incrementally* while the set grows — adding one node updates a handful of
degree counters and appends the new induced edges' descriptors — so the old
per-set cost of re-inducing a subgraph, rebuilding a :class:`GraphPattern`
and re-canonicalising it from scratch is paid only for node sets whose key is
genuinely new.  Both paths traverse identical frontiers and produce identical
pattern lists; the reference path (``REPRO_SPARSE_BACKEND=0``) is the
correctness oracle the tests and benchmarks compare against.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import MiningError
from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern
from repro.graphs.sparse import sparse_enabled
from repro.graphs.subgraph import induced_subgraph
from repro.matching.engine import match_many

__all__ = [
    "FrequentPattern",
    "enumerate_connected_patterns",
    "frequent_patterns",
    "iter_connected_pattern_keys",
]


@dataclass
class FrequentPattern:
    """A mined pattern together with its support."""

    pattern: GraphPattern
    support: int
    supporting_graphs: list[int]


def _enumerate_reference(
    graph: Graph, max_pattern_size: int, max_patterns_per_graph: int
) -> list[GraphPattern]:
    """Breadth-first enumeration, one induce + canonicalise per node set."""
    patterns: dict[tuple, GraphPattern] = {}
    visited_sets: set[frozenset[int]] = set()
    frontier: deque[frozenset[int]] = deque(frozenset({node}) for node in graph.nodes)
    visited_sets.update(frontier)
    while frontier and len(patterns) < max_patterns_per_graph:
        node_set = frontier.popleft()
        pattern = GraphPattern.from_graph(induced_subgraph(graph, node_set))
        patterns.setdefault(pattern.canonical_key(), pattern)
        if len(node_set) >= max_pattern_size:
            continue
        boundary: set[int] = set()
        for node in node_set:
            boundary |= graph.neighbors(node)
        for neighbour in sorted(boundary - node_set):
            extended = node_set | {neighbour}
            if extended not in visited_sets:
                visited_sets.add(extended)
                frontier.append(extended)
    return list(patterns.values())


def _enumerate_incremental(
    graph: Graph, max_pattern_size: int, max_patterns_per_graph: int
) -> list[GraphPattern]:
    """Same traversal as :func:`_enumerate_reference`, incremental keys.

    Each frontier entry carries its node set *plus* the per-node induced
    degrees and the multiset of edge descriptors — exactly the ingredients of
    :meth:`Graph.structural_signature` — maintained incrementally as the set
    grows.  The canonical key then costs a sort of <= ``max_pattern_size``
    tuples, and a :class:`GraphPattern` is only materialised (one induced
    subgraph) for keys not seen before.  Identical output to the reference
    path: same frontier order, same keys, same first-occurrence node sets.
    """
    adjacency = {node: graph.neighbors(node) for node in graph.nodes}
    node_type = graph.node_types()
    patterns: dict[tuple, GraphPattern] = {}
    visited_sets: set[frozenset[int]] = set()
    # Frontier entries: (node set, {node: induced degree}, [edge descriptors]).
    frontier: deque[tuple[frozenset[int], dict[int, int], list[tuple]]] = deque(
        (frozenset({node}), {node: 0}, []) for node in graph.nodes
    )
    visited_sets.update(entry[0] for entry in frontier)
    while frontier and len(patterns) < max_patterns_per_graph:
        node_set, degrees, edge_descriptors = frontier.popleft()
        key = (
            tuple(sorted((node_type[node], degrees[node]) for node in node_set)),
            tuple(sorted(edge_descriptors)),
        )
        if key not in patterns:
            patterns[key] = GraphPattern.from_graph(induced_subgraph(graph, node_set))
        if len(node_set) >= max_pattern_size:
            continue
        boundary: set[int] = set()
        for node in node_set:
            boundary |= adjacency[node]
        for neighbour in sorted(boundary - node_set):
            extended = node_set | {neighbour}
            if extended in visited_sets:
                continue
            visited_sets.add(extended)
            new_links = adjacency[neighbour] & node_set
            new_degrees = dict(degrees)
            new_degrees[neighbour] = len(new_links)
            new_edges = list(edge_descriptors)
            for other in new_links:
                new_degrees[other] += 1
                type_pair = tuple(sorted((node_type[neighbour], node_type[other])))
                new_edges.append((graph.edge_type(neighbour, other), type_pair))
            frontier.append((extended, new_degrees, new_edges))
    return list(patterns.values())


def _iter_keys_reference(
    graph: Graph, max_pattern_size: int, max_patterns_per_graph: int
):
    """Distinct canonical keys of :func:`_enumerate_reference`, lazily."""
    seen: set[tuple] = set()
    visited_sets: set[frozenset[int]] = set()
    frontier: deque[frozenset[int]] = deque(frozenset({node}) for node in graph.nodes)
    visited_sets.update(frontier)
    while frontier and len(seen) < max_patterns_per_graph:
        node_set = frontier.popleft()
        key = GraphPattern.from_graph(induced_subgraph(graph, node_set)).canonical_key()
        if key not in seen:
            seen.add(key)
            yield key
        if len(node_set) >= max_pattern_size:
            continue
        boundary: set[int] = set()
        for node in node_set:
            boundary |= graph.neighbors(node)
        for neighbour in sorted(boundary - node_set):
            extended = node_set | {neighbour}
            if extended not in visited_sets:
                visited_sets.add(extended)
                frontier.append(extended)


def _iter_keys_incremental(
    graph: Graph, max_pattern_size: int, max_patterns_per_graph: int
):
    """Distinct canonical keys of :func:`_enumerate_incremental`, lazily.

    Exactly the fast path's traversal and incrementally-maintained keys, but
    no :class:`GraphPattern` is ever materialised — the incremental key tuple
    *is* :meth:`Graph.structural_signature` (same sorted ``(type, degree)``
    node part, same sorted edge-descriptor part), so the yielded keys compare
    equal to ``GraphPattern.canonical_key()`` values.
    """
    adjacency = {node: graph.neighbors(node) for node in graph.nodes}
    node_type = graph.node_types()
    seen: set[tuple] = set()
    visited_sets: set[frozenset[int]] = set()
    frontier: deque[tuple[frozenset[int], dict[int, int], list[tuple]]] = deque(
        (frozenset({node}), {node: 0}, []) for node in graph.nodes
    )
    visited_sets.update(entry[0] for entry in frontier)
    while frontier and len(seen) < max_patterns_per_graph:
        node_set, degrees, edge_descriptors = frontier.popleft()
        key = (
            tuple(sorted((node_type[node], degrees[node]) for node in node_set)),
            tuple(sorted(edge_descriptors)),
        )
        if key not in seen:
            seen.add(key)
            yield key
        if len(node_set) >= max_pattern_size:
            continue
        boundary: set[int] = set()
        for node in node_set:
            boundary |= adjacency[node]
        for neighbour in sorted(boundary - node_set):
            extended = node_set | {neighbour}
            if extended in visited_sets:
                continue
            visited_sets.add(extended)
            new_links = adjacency[neighbour] & node_set
            new_degrees = dict(degrees)
            new_degrees[neighbour] = len(new_links)
            new_edges = list(edge_descriptors)
            for other in new_links:
                new_degrees[other] += 1
                type_pair = tuple(sorted((node_type[neighbour], node_type[other])))
                new_edges.append((graph.edge_type(neighbour, other), type_pair))
            frontier.append((extended, new_degrees, new_edges))


def iter_connected_pattern_keys(
    graph: Graph,
    max_pattern_size: int,
    max_patterns_per_graph: int = 256,
):
    """Lazily yield the distinct canonical keys :func:`enumerate_connected_patterns`
    would produce, in the same order and under the same truncation cap.

    Lets callers that only need a *membership* answer ("does this graph
    contain any pattern whose key is not already known?") short-circuit the
    enumeration without materialising patterns — the streaming novelty probe
    (``PatternGenerator.has_novel_pattern``) is the hot consumer.
    """
    if max_pattern_size < 1:
        raise MiningError("max_pattern_size must be at least 1")
    if sparse_enabled():
        return _iter_keys_incremental(graph, max_pattern_size, max_patterns_per_graph)
    return _iter_keys_reference(graph, max_pattern_size, max_patterns_per_graph)


def enumerate_connected_patterns(
    graph: Graph,
    max_pattern_size: int,
    max_patterns_per_graph: int = 256,
) -> list[GraphPattern]:
    """All connected induced patterns of ``graph`` up to ``max_pattern_size`` nodes.

    Enumeration expands connected node sets breadth-first (deterministically:
    seeds in insertion order, boundary extensions in sorted node order) and
    deduplicates by canonical key; it stops early once
    ``max_patterns_per_graph`` distinct patterns were produced so
    pathological graphs cannot blow up the search.  The truncated prefix is
    reproducible across runs and identical between the incremental fast path
    and the reference path.
    """
    if max_pattern_size < 1:
        raise MiningError("max_pattern_size must be at least 1")
    if sparse_enabled():
        return _enumerate_incremental(graph, max_pattern_size, max_patterns_per_graph)
    return _enumerate_reference(graph, max_pattern_size, max_patterns_per_graph)


def frequent_patterns(
    graphs: Sequence[Graph],
    min_support: int = 2,
    max_pattern_size: int = 5,
    max_patterns_per_graph: int = 256,
) -> list[FrequentPattern]:
    """Connected patterns appearing in at least ``min_support`` of the graphs.

    Results are sorted by descending support, then descending pattern size, so
    the most frequent and most informative patterns come first.  Support is
    counted through :func:`repro.matching.engine.match_many`, which
    batch-prefilters the graph collection (type histograms) and memoises the
    surviving exact matches.
    """
    if min_support < 1:
        raise MiningError("min_support must be at least 1")
    graphs = list(graphs)
    candidate_index: dict[tuple, GraphPattern] = {}
    for graph in graphs:
        for pattern in enumerate_connected_patterns(
            graph, max_pattern_size, max_patterns_per_graph=max_patterns_per_graph
        ):
            candidate_index.setdefault(pattern.canonical_key(), pattern)
    results: list[FrequentPattern] = []
    for pattern in candidate_index.values():
        matched = match_many(pattern, graphs)
        supporting = [index for index, hit in enumerate(matched) if hit]
        if len(supporting) >= min_support:
            results.append(
                FrequentPattern(pattern=pattern, support=len(supporting), supporting_graphs=supporting)
            )
    results.sort(key=lambda fp: (-fp.support, -fp.pattern.size()))
    return results
