"""Evaluation metrics: faithfulness, conciseness, runtime."""

from repro.metrics.conciseness import compression, conciseness_report, edge_loss, sparsity
from repro.metrics.fidelity import fidelity_minus, fidelity_plus, fidelity_report
from repro.metrics.runtime import RuntimeRecord, Stopwatch, time_call

__all__ = [
    "fidelity_plus",
    "fidelity_minus",
    "fidelity_report",
    "sparsity",
    "compression",
    "edge_loss",
    "conciseness_report",
    "Stopwatch",
    "RuntimeRecord",
    "time_call",
]
