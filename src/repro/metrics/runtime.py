"""Runtime bookkeeping used by the efficiency and scalability experiments."""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "RuntimeRecord", "time_call"]


@dataclass
class RuntimeRecord:
    """One timed measurement."""

    name: str
    seconds: float
    metadata: dict[str, object] = field(default_factory=dict)


class Stopwatch:
    """Collects named wall-clock measurements for an experiment run."""

    def __init__(self) -> None:
        self.records: list[RuntimeRecord] = []

    def measure(self, name: str, func: Callable, *args, **kwargs):
        """Run ``func`` and record its duration under ``name``; returns its result."""
        start = time.perf_counter()
        result = func(*args, **kwargs)
        self.records.append(RuntimeRecord(name=name, seconds=time.perf_counter() - start))
        return result

    def total(self, name: str | None = None) -> float:
        """Total recorded seconds, optionally for one name only."""
        return float(
            sum(record.seconds for record in self.records if name is None or record.name == name)
        )

    def as_dict(self) -> dict[str, float]:
        """Total seconds per name."""
        totals: dict[str, float] = {}
        for record in self.records:
            totals[record.name] = totals.get(record.name, 0.0) + record.seconds
        return totals


def time_call(func: Callable, *args, **kwargs) -> tuple[object, float]:
    """Run a callable and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
