"""Conciseness metrics: Sparsity (Eq. 10), Compression (Eq. 11), edge loss.

Sparsity applies to lower-tier explanation subgraphs of any explainer;
Compression and edge loss only apply to two-tier explanation views, where the
higher-tier patterns summarise the subgraphs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.explanation import ExplanationSubgraph, ExplanationView
from repro.matching.coverage import coverage_summary

__all__ = ["sparsity", "compression", "edge_loss", "conciseness_report"]


def sparsity(explanations: Sequence[ExplanationSubgraph]) -> float:
    """Average ``1 - (|Vs| + |Es|) / (|V| + |E|)`` over the explanations."""
    if not explanations:
        return 0.0
    return float(np.mean([explanation.sparsity() for explanation in explanations]))


def compression(view: ExplanationView) -> float:
    """Size reduction of patterns relative to subgraphs (Eq. 11)."""
    return view.compression()


def edge_loss(view: ExplanationView, max_matchings: int | None = 64) -> float:
    """Fraction of explanation-subgraph edges not covered by the view's patterns."""
    subgraphs = view.subgraph_objects()
    if not subgraphs:
        return 0.0
    summary = coverage_summary(view.patterns, subgraphs, max_matchings=max_matchings)
    return 1.0 - summary["edge_coverage"]


def conciseness_report(view: ExplanationView) -> dict[str, float]:
    """Sparsity, compression and edge loss of one explanation view."""
    return {
        "sparsity": sparsity(view.subgraphs),
        "compression": compression(view),
        "edge_loss": edge_loss(view),
        "num_patterns": float(len(view.patterns)),
        "num_subgraphs": float(len(view.subgraphs)),
    }
