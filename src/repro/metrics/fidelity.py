"""Explanation faithfulness metrics: Fidelity+ and Fidelity- (Eqs. 8-9).

Fidelity+ measures the drop in the original prediction's probability when the
explanation is *removed* from the input (higher is better — the explanation
was necessary).  Fidelity- measures the drop when the input is *replaced by*
the explanation (lower, ideally <= 0, is better — the explanation is
sufficient).

With the sparse backend enabled the per-explanation model queries run through
``GNNClassifier.predict_proba_batch`` — one block-diagonal message-passing
pass over all source graphs and one over all residual/kept subgraphs —
instead of one forward per probe; with the backend disabled the reference
per-graph path is used (the A/B pairing the efficiency benchmarks rely on).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.explanation import ExplanationSubgraph
from repro.gnn.models import GNNClassifier
from repro.graphs.graph import Graph
from repro.graphs.sparse import sparse_enabled

__all__ = ["fidelity_plus", "fidelity_minus", "fidelity_report"]


def _original_probability(model: GNNClassifier, explanation: ExplanationSubgraph) -> tuple[int, float]:
    label = explanation.label
    probability = model.predict_proba(explanation.source_graph)[label]
    return label, float(probability)


def _batched_probabilities(
    model: GNNClassifier, graphs: Sequence[Graph], labels: Sequence[int]
) -> list[float] | None:
    """Per-graph probability of each graph's paired label, one batched pass.

    Returns ``None`` when batching is unavailable (sparse backend off, scipy
    missing, or a trivial batch) so callers fall back to per-graph forwards.
    """
    if not sparse_enabled() or len(graphs) < 2:
        return None
    probabilities = model.predict_proba_batch(graphs)
    return [float(probabilities[row, label]) for row, label in enumerate(labels)]


def fidelity_plus(model: GNNClassifier, explanations: Sequence[ExplanationSubgraph]) -> float:
    """Average probability drop after masking the explanation out (Eq. 8)."""
    if not explanations:
        return 0.0
    labels = [explanation.label for explanation in explanations]
    residuals = [explanation.residual() for explanation in explanations]
    originals = _batched_probabilities(
        model, [explanation.source_graph for explanation in explanations], labels
    )
    nonempty = [slot for slot, residual in enumerate(residuals) if residual.num_nodes() > 0]
    masked_rows = (
        _batched_probabilities(
            model, [residuals[slot] for slot in nonempty], [labels[slot] for slot in nonempty]
        )
        if len(nonempty) >= 2
        else None
    )
    row_of = {slot: row for row, slot in enumerate(nonempty)}
    drops = []
    for slot, explanation in enumerate(explanations):
        if originals is not None:
            original = originals[slot]
        else:
            _, original = _original_probability(model, explanation)
        residual = residuals[slot]
        if residual.num_nodes() == 0:
            masked = 1.0 / model.num_classes
        elif masked_rows is not None:
            masked = masked_rows[row_of[slot]]
        else:
            masked = float(model.predict_proba(residual)[labels[slot]])
        drops.append(original - masked)
    return float(np.mean(drops))


def fidelity_minus(model: GNNClassifier, explanations: Sequence[ExplanationSubgraph]) -> float:
    """Average probability drop when keeping only the explanation (Eq. 9)."""
    if not explanations:
        return 0.0
    labels = [explanation.label for explanation in explanations]
    originals = _batched_probabilities(
        model, [explanation.source_graph for explanation in explanations], labels
    )
    kept_rows = _batched_probabilities(
        model, [explanation.subgraph() for explanation in explanations], labels
    )
    drops = []
    for slot, explanation in enumerate(explanations):
        if originals is not None:
            original = originals[slot]
        else:
            _, original = _original_probability(model, explanation)
        if kept_rows is not None:
            kept = kept_rows[slot]
        else:
            kept = float(model.predict_proba(explanation.subgraph())[labels[slot]])
        drops.append(original - kept)
    return float(np.mean(drops))


def fidelity_report(model: GNNClassifier, explanations: Sequence[ExplanationSubgraph]) -> dict[str, float]:
    """Both fidelity metrics plus the fractions of consistent/counterfactual
    explanations (the paper's C2 properties, evaluated exactly)."""
    if not explanations:
        return {
            "fidelity_plus": 0.0,
            "fidelity_minus": 0.0,
            "consistent_fraction": 0.0,
            "counterfactual_fraction": 0.0,
        }
    kept_graphs = [explanation.subgraph() for explanation in explanations]
    residual_graphs = [explanation.residual() for explanation in explanations]
    if sparse_enabled() and len(explanations) >= 2:
        kept_labels = model.predict_batch(kept_graphs)
        residual_labels = model.predict_batch(residual_graphs)
    else:
        kept_labels = [model.predict(graph) for graph in kept_graphs]
        residual_labels = [model.predict(graph) for graph in residual_graphs]
    consistent = 0
    counterfactual = 0
    for slot, explanation in enumerate(explanations):
        label = explanation.label
        if kept_labels[slot] == label:
            consistent += 1
        if residual_graphs[slot].num_nodes() == 0 or residual_labels[slot] != label:
            counterfactual += 1
    return {
        "fidelity_plus": fidelity_plus(model, explanations),
        "fidelity_minus": fidelity_minus(model, explanations),
        "consistent_fraction": consistent / len(explanations),
        "counterfactual_fraction": counterfactual / len(explanations),
    }
