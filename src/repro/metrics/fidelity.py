"""Explanation faithfulness metrics: Fidelity+ and Fidelity- (Eqs. 8-9).

Fidelity+ measures the drop in the original prediction's probability when the
explanation is *removed* from the input (higher is better — the explanation
was necessary).  Fidelity- measures the drop when the input is *replaced by*
the explanation (lower, ideally <= 0, is better — the explanation is
sufficient).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.explanation import ExplanationSubgraph
from repro.gnn.models import GNNClassifier

__all__ = ["fidelity_plus", "fidelity_minus", "fidelity_report"]


def _original_probability(model: GNNClassifier, explanation: ExplanationSubgraph) -> tuple[int, float]:
    label = explanation.label
    probability = model.predict_proba(explanation.source_graph)[label]
    return label, float(probability)


def fidelity_plus(model: GNNClassifier, explanations: Sequence[ExplanationSubgraph]) -> float:
    """Average probability drop after masking the explanation out (Eq. 8)."""
    if not explanations:
        return 0.0
    drops = []
    for explanation in explanations:
        label, original = _original_probability(model, explanation)
        residual = explanation.residual()
        if residual.num_nodes() == 0:
            masked = 1.0 / model.num_classes
        else:
            masked = float(model.predict_proba(residual)[label])
        drops.append(original - masked)
    return float(np.mean(drops))


def fidelity_minus(model: GNNClassifier, explanations: Sequence[ExplanationSubgraph]) -> float:
    """Average probability drop when keeping only the explanation (Eq. 9)."""
    if not explanations:
        return 0.0
    drops = []
    for explanation in explanations:
        label, original = _original_probability(model, explanation)
        kept = float(model.predict_proba(explanation.subgraph())[label])
        drops.append(original - kept)
    return float(np.mean(drops))


def fidelity_report(model: GNNClassifier, explanations: Sequence[ExplanationSubgraph]) -> dict[str, float]:
    """Both fidelity metrics plus the fractions of consistent/counterfactual
    explanations (the paper's C2 properties, evaluated exactly)."""
    if not explanations:
        return {
            "fidelity_plus": 0.0,
            "fidelity_minus": 0.0,
            "consistent_fraction": 0.0,
            "counterfactual_fraction": 0.0,
        }
    consistent = 0
    counterfactual = 0
    for explanation in explanations:
        label = explanation.label
        if model.predict(explanation.subgraph()) == label:
            consistent += 1
        residual = explanation.residual()
        if residual.num_nodes() == 0 or model.predict(residual) != label:
            counterfactual += 1
    return {
        "fidelity_plus": fidelity_plus(model, explanations),
        "fidelity_minus": fidelity_minus(model, explanations),
        "consistent_fraction": consistent / len(explanations),
        "counterfactual_fraction": counterfactual / len(explanations),
    }
