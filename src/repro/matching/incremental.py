"""Incremental pattern matching (``IncPMatch`` of section 5).

The streaming algorithm repeatedly asks "which nodes of this growing
explanation subgraph are already covered by the current pattern set?".
Re-running full isomorphism search from scratch on every node arrival would
dominate the runtime, so :class:`IncrementalMatcher` caches, per (pattern,
graph) pair, the set of covered nodes and only recomputes a pattern's
matchings when the graph has grown since the cached result — mirroring the
incremental subgraph matching systems the paper cites.
"""

from __future__ import annotations

import weakref

from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern
from repro.matching.coverage import covered_nodes

__all__ = ["IncrementalMatcher"]


class IncrementalMatcher:
    """Caches pattern coverage over graphs that only ever grow."""

    def __init__(self, max_matchings: int | None = None) -> None:
        self.max_matchings = max_matchings
        # (pattern key, graph key) -> (graph version, covered node set, graph ref)
        self._cache: dict[tuple, tuple[int, frozenset[int], weakref.ref]] = {}
        self.recomputations = 0
        self.cache_hits = 0

    @staticmethod
    def _graph_key(graph: Graph) -> tuple:
        return (id(graph), graph.graph_id)

    def covered_nodes(self, pattern: GraphPattern, graph: Graph) -> set[int]:
        """Nodes of ``graph`` covered by ``pattern``, reusing cached results."""
        key = (pattern.canonical_key(), self._graph_key(graph))
        # The mutation counter invalidates on *any* change, unlike the old
        # node+edge count which a swap mutation could leave unchanged.  The
        # weakref guard covers what the counter cannot: the streaming path
        # feeds this matcher short-lived induced subgraphs that all share
        # their source's ``graph_id`` and construction-time version, so a
        # dead temporary whose ``id()`` the allocator hands to a *different*
        # temporary must never serve its coverage set.
        version = graph.version
        cached = self._cache.get(key)
        if cached is not None and cached[0] == version and cached[2]() is graph:
            self.cache_hits += 1
            return set(cached[1])
        self.recomputations += 1
        covered = covered_nodes(pattern, graph, max_matchings=self.max_matchings)
        self._cache[key] = (version, frozenset(covered), weakref.ref(graph))
        return covered

    def covered_by_set(self, patterns: list[GraphPattern], graph: Graph) -> set[int]:
        """Union of covered nodes over a pattern set."""
        covered: set[int] = set()
        for pattern in patterns:
            covered |= self.covered_nodes(pattern, graph)
            if len(covered) == graph.num_nodes():
                break
        return covered

    def covers_all_nodes(self, patterns: list[GraphPattern], graph: Graph) -> bool:
        """True when the pattern set covers every node of the graph."""
        return len(self.covered_by_set(patterns, graph)) == graph.num_nodes()

    def invalidate(self) -> None:
        """Drop all cached matchings (e.g. after patterns were swapped out)."""
        self._cache.clear()

    def forget_graph(self, graph_or_id: Graph | int | None) -> int:
        """Drop every cached entry for one graph; returns how many were dropped.

        Accepts either the graph object or its stable ``graph_id``, matching
        both components of the cache key — a long-lived matcher over a
        mutable :class:`~repro.graphs.database.GraphDatabase` calls this when
        a graph is removed, so retracted graphs (and any temporaries that
        carried their id) cannot pin coverage rows forever.
        """
        if graph_or_id is None:
            return 0
        if isinstance(graph_or_id, Graph):
            matches = {id(graph_or_id), graph_or_id.graph_id}
            # A None graph_id must not sweep up other id-less graphs' rows.
            matches.discard(None)
        else:
            matches = {graph_or_id}
        victims = [
            key
            for key in self._cache
            if key[1][0] in matches or key[1][1] in matches
        ]
        for key in victims:
            del self._cache[key]
        return len(victims)

    def stats(self) -> dict[str, int]:
        """Cache statistics, useful in the efficiency benchmarks."""
        return {
            "cache_hits": self.cache_hits,
            "recomputations": self.recomputations,
            "entries": len(self._cache),
        }
