"""Indexed pattern-matching engine: the fast ``PMatch`` / ``IncPMatch`` substrate.

:mod:`repro.matching.isomorphism` is the paper-literal reference matcher — a
plain VF2-style backtracking search that re-derives everything per call.  It
is correct and kept untouched as the correctness oracle, but GVEX hammers it:
coverage predicates, view verification, explanation queries, mining support
counts and IncPGen dedup all funnel through ``has_matching``-shaped calls,
frequently with the *same* (pattern, graph) pair.  :class:`MatchEngine` makes
those calls cheap with three layers:

1. **Memoisation** — match results (existence, matched node/edge sets,
   matching counts) are memoised in a process-wide LRU
   (:class:`repro.core.caching.LRUCache`) keyed by the exact pattern and
   graph identities plus their mutation counters, weakref-guarded against
   garbage-collected objects recycling an ``id()``.  ``canonical_key()`` is
   deliberately *not* the key: it is a cheap heuristic invariant that
   non-isomorphic patterns can share, so keying on it would serve one
   pattern's results to a structurally different pattern.  Call sites hold
   on to their pattern objects across queries, which is what makes the memo
   effective despite the identity-based key.

2. **Vectorized prefilters** — per :class:`~repro.graphs.sparse.SparseGraphView`
   the engine consults cached type histograms, degree arrays and
   neighbour-type signature matrices (all built once per view) to compute a
   numpy candidate mask per pattern node.  A pattern whose type multiset
   exceeds the graph's histogram, or any pattern node with an empty candidate
   mask, is an exact emptiness certificate — no search runs at all.  This
   generalises the old 2-node-only ``_type_prefilter_fails`` to arbitrary
   patterns.

3. **Ordered masked search** — for uncapped queries the backtracking orders
   pattern nodes VF2++-style (fewest surviving candidates first, staying
   connected) and walks numpy candidate masks / CSR neighbour arrays instead
   of Python set intersections.  Queries with a ``max_matchings`` cap are
   *enumeration-order sensitive* (a cap truncates the sequence), so they run
   the reference matcher's exact node ordering and candidate order with the
   masks applied only as skip-filters — pruned candidates cannot occur in any
   complete matching, hence the yielded sequence (and therefore the truncated
   result) is bit-identical to the reference.

4. **Optional compiled kernel** — with the ``[perf]`` extra installed
   (``numba``), order-insensitive *counting* queries (existence, capped and
   uncapped counts) run an njit-compiled flat-array backtracker
   (:mod:`repro.matching.compiled`) instead of the interpreted search.  The
   kernel applies the exact same compatibility predicate, so counts are
   identical; :func:`compiled_available` reports whether it is active, and
   everything works unchanged (interpreted) when numba is absent.

The module-level :func:`has_matching` / :func:`count_matchings` /
:func:`matched_node_sets` / :func:`match_many` dispatchers route through the
engine when the sparse backend is enabled (the default) and fall back to the
reference matcher under ``REPRO_SPARSE_BACKEND=0`` /
:func:`repro.graphs.sparse.sparse_backend` — the same A/B toggle every other
vectorized path uses, which is how benchmarks and tests assert identity.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import Counter
from collections.abc import Iterator, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern
from repro.graphs.sparse import SparseGraphView, sparse_enabled
from repro.matching.compiled import compiled_available, compiled_count
from repro.matching.isomorphism import _compatible as _reference_compatible
from repro.matching.isomorphism import _order_pattern_nodes as _reference_order
from repro.matching.isomorphism import has_matching as _reference_has_matching
from repro.matching.isomorphism import iter_matchings as _reference_iter_matchings

__all__ = [
    "MatchEngine",
    "compiled_available",
    "get_engine",
    "set_match_cache_size",
    "warm_match_indices",
    "has_matching",
    "count_matchings",
    "matched_node_sets",
    "match_many",
]

DEFAULT_MATCH_CACHE_SIZE = 4096

# Below this node count the indexed search cannot recoup its setup cost (mask
# construction, per-view tables): the engine memoises but delegates the search
# itself to the reference matcher.  The streaming algorithm's IncPGen scoring
# probes thousands of *fresh* <=10-node neighbourhood subgraphs per run —
# exactly the shape where index setup would be pure overhead.
SMALL_GRAPH_NODES = 24

_MISS = object()


def type_histogram_deficit(pattern_counts: dict, graph_counts: dict) -> bool:
    """True when type histograms alone rule out any matching.

    A matching maps pattern nodes to *distinct* graph nodes of the same
    type, so a pattern needing more nodes of some type than the graph has
    cannot match — an exact emptiness certificate, independent of matching
    caps.  The single implementation behind the coverage fast path, the
    pattern-index feasibility check and the ``match_many`` batch prefilter.
    """
    return any(
        needed > graph_counts.get(node_type, 0)
        for node_type, needed in pattern_counts.items()
    )


class _PatternIndex:
    """Per-(pattern, view) candidate structure: masks, codes, adjacency.

    ``feasible`` is ``False`` when the prefilters alone certify that no
    matching exists (missing type/edge-type vocabulary, type histogram
    deficit, or an empty candidate mask for some pattern node).
    """

    __slots__ = ("nodes", "adj", "edge_codes", "masks", "feasible")

    def __init__(
        self, pattern: GraphPattern, view: SparseGraphView, use_prefilters: bool = True
    ) -> None:
        pattern_graph = pattern.graph
        self.nodes = list(pattern.nodes)
        self.adj = {node: pattern_graph.neighbors(node) for node in self.nodes}
        self.edge_codes: dict[tuple[int, int], int] = {}
        self.masks: dict[int, np.ndarray] = {}
        self.feasible = True

        # Type vocabulary + histogram certificates (exact, independent of caps).
        node_codes: dict[int, int] = {}
        for node in self.nodes:
            code = view.node_type_code(pattern.node_type(node))
            if code is None:
                self.feasible = False
                return
            node_codes[node] = code
        if type_histogram_deficit(pattern_graph.type_counts(), view.type_counts()):
            self.feasible = False
            return
        for u, v in pattern.edges:
            code = view.edge_type_code(pattern.edge_type(u, v))
            if code is None:
                self.feasible = False
                return
            key = (u, v) if u <= v else (v, u)
            self.edge_codes[key] = code

        # Candidate masks: type always; degree + neighbourhood signature when
        # prefiltering is on (it can be disabled to exercise the bare search).
        degrees = view.degrees() if use_prefilters else None
        neighbour_counts = view.neighbour_type_counts() if use_prefilters else None
        for node in self.nodes:
            mask = view.node_type_codes == node_codes[node]
            if use_prefilters and self.adj[node]:
                mask = mask & (degrees >= len(self.adj[node]))
                signature = Counter(node_codes[nbr] for nbr in self.adj[node])
                for code, needed in signature.items():
                    mask = mask & (neighbour_counts[:, code] >= needed)
            if not mask.any():
                self.feasible = False
                return
            self.masks[node] = mask

    def pattern_edge_code(self, u: int, v: int) -> int:
        return self.edge_codes[(u, v) if u <= v else (v, u)]

    def search_order(self) -> list[int]:
        """Most-constrained-first node order (VF2++-style).

        Start from the node with the fewest surviving candidates; then keep
        extending with a node adjacent to the ordered prefix (connectivity
        keeps the partial mapping anchored) again minimising the candidate
        count, breaking ties towards higher pattern degree then lower id so
        the order — and thus the engine's own enumeration — is deterministic.
        """
        counts = {node: int(self.masks[node].sum()) for node in self.nodes}
        ordered: list[int] = []
        ordered_set: set[int] = set()
        remaining = set(self.nodes)
        while remaining:
            pool = [
                node for node in remaining if self.adj[node] & ordered_set
            ] or sorted(remaining)
            chosen = min(pool, key=lambda node: (counts[node], -len(self.adj[node]), node))
            ordered.append(chosen)
            ordered_set.add(chosen)
            remaining.discard(chosen)
        return ordered


def _kernel_inputs(
    index: _PatternIndex, view: SparseGraphView
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flat arrays for :mod:`repro.matching.compiled`'s counting kernel.

    Stacks the candidate masks in the VF2++ search order and encodes the
    pattern's adjacency as an edge-code matrix (``-1`` = non-adjacent)
    between ordered positions — together with the view's dense adjacency
    code matrix this is everything the kernel's exact compatibility check
    needs.  Cheap to build (patterns are <= a handful of nodes), so it is
    rebuilt per query rather than memoised.
    """
    order = index.search_order()
    masks = np.stack([index.masks[node] for node in order])
    size = len(order)
    pattern_adj = np.full((size, size), -1, dtype=np.int64)
    for i, u in enumerate(order):
        for j in range(i):
            v = order[j]
            if v in index.adj[u]:
                code = index.pattern_edge_code(u, v)
                pattern_adj[i, j] = code
                pattern_adj[j, i] = code
    return masks, pattern_adj, view.adjacency_code_matrix()


def _iter_row_mappings(
    index: _PatternIndex, view: SparseGraphView, max_matchings: int | None = None
) -> Iterator[dict[int, int]]:
    """Yield ``{pattern node -> graph row}`` mappings via the masked search.

    The *set* of complete mappings equals the reference matcher's; only the
    enumeration order differs, so this path serves every order-insensitive
    query (existence, uncapped unions/dedups, counts — a count capped at
    ``limit`` is ``min(total, limit)`` regardless of order).
    """
    order = index.search_order()
    neighbour_sets = view.row_neighbour_sets()
    edge_codes = view.edge_code_map()
    num_nodes = view.num_nodes
    # Candidate row lists, materialised lazily per pattern node: only nodes
    # with no mapped pattern neighbour scan the whole mask (the root — and,
    # for disconnected patterns, each component's first node); everyone else
    # walks an anchor's neighbour set.  Python ints + set lookups beat
    # per-step numpy scalar machinery by a wide margin at GVEX graph sizes.
    candidate_rows: dict[int, list[int]] = {}
    used: set[int] = set()
    mask_of = {node: index.masks[node] for node in order}
    mapping: dict[int, int] = {}
    yielded = 0

    def compatible(pattern_node: int, row: int) -> bool:
        pattern_neighbours = index.adj[pattern_node]
        for assigned, assigned_row in mapping.items():
            pattern_adjacent = assigned in pattern_neighbours
            if pattern_adjacent != (row in neighbour_sets[assigned_row]):
                return False
            if pattern_adjacent:
                lo, hi = (row, assigned_row) if row <= assigned_row else (assigned_row, row)
                if edge_codes[lo * num_nodes + hi] != index.pattern_edge_code(
                    pattern_node, assigned
                ):
                    return False
        return True

    def backtrack(position: int) -> Iterator[dict[int, int]]:
        nonlocal yielded
        if max_matchings is not None and yielded >= max_matchings:
            return
        if position == len(order):
            yielded += 1
            yield dict(mapping)
            return
        pattern_node = order[position]
        mapped_neighbours = [node for node in index.adj[pattern_node] if node in mapping]
        mask = mask_of[pattern_node]
        if mapped_neighbours:
            # Walk the neighbours of the mapped neighbour with the smallest
            # adjacency, keeping rows that survive the prefilter mask.
            anchor = min(
                mapped_neighbours, key=lambda node: len(neighbour_sets[mapping[node]])
            )
            candidates = [
                row
                for row in neighbour_sets[mapping[anchor]]
                if mask[row] and row not in used
            ]
        else:
            rows = candidate_rows.get(pattern_node)
            if rows is None:
                rows = index.masks[pattern_node].nonzero()[0].tolist()
                candidate_rows[pattern_node] = rows
            candidates = [row for row in rows if row not in used]
        for row in candidates:
            if compatible(pattern_node, row):
                mapping[pattern_node] = row
                used.add(row)
                yield from backtrack(position + 1)
                used.discard(row)
                del mapping[pattern_node]
                if max_matchings is not None and yielded >= max_matchings:
                    return

    yield from backtrack(0)


def _iter_reference_order(
    pattern: GraphPattern,
    graph: Graph,
    view: SparseGraphView,
    index: _PatternIndex,
    max_matchings: int | None,
) -> Iterator[dict[int, int]]:
    """Reference-identical enumeration with prefilter masks as skip-filters.

    This mirrors :func:`repro.matching.isomorphism.iter_matchings` — same
    pattern-node order, same candidate pools, same candidate order — and only
    *skips* candidates whose mask says they cannot occur in any complete
    matching.  Skipping such candidates never changes the sequence of
    complete matchings yielded, so results truncated by ``max_matchings`` are
    bit-identical to the reference matcher's.  Yields node-id mappings.
    """
    order = _reference_order(pattern, graph)
    graph_nodes = graph.nodes
    row_of = view.index
    masks = index.masks
    yielded = 0

    def backtrack(position: int, mapping: dict[int, int]) -> Iterator[dict[int, int]]:
        nonlocal yielded
        if max_matchings is not None and yielded >= max_matchings:
            return
        if position == len(order):
            yielded += 1
            yield dict(mapping)
            return
        pattern_node = order[position]
        candidate_pool: list[int] | None = None
        for neighbor in pattern.graph.neighbors(pattern_node):
            if neighbor in mapping:
                neighbourhood = graph.neighbors(mapping[neighbor])
                candidate_pool = (
                    [node for node in candidate_pool if node in neighbourhood]
                    if candidate_pool is not None
                    else sorted(neighbourhood)
                )
        candidates = candidate_pool if candidate_pool is not None else graph_nodes
        mask = masks[pattern_node]
        for graph_node in candidates:
            if not mask[row_of[graph_node]]:
                continue
            if _reference_compatible(pattern, graph, pattern_node, graph_node, mapping):
                mapping[pattern_node] = graph_node
                yield from backtrack(position + 1, mapping)
                del mapping[pattern_node]
                if max_matchings is not None and yielded >= max_matchings:
                    return

    yield from backtrack(0, {})


class MatchEngine:
    """Memoising, index-backed matcher shared process-wide.

    Thread-safe around the memo (the HTTP service handles requests on a
    thread pool); the searches themselves are pure functions of immutable
    snapshots.  ``use_prefilters`` exists so the property tests can exercise
    the bare ordered search against the reference matcher.
    """

    def __init__(self, capacity: int = DEFAULT_MATCH_CACHE_SIZE) -> None:
        # Imported lazily: repro.core pulls in the matching package through
        # the explainers, so a module-level import here would be circular.
        from repro.core.caching import LRUCache

        self._memo: LRUCache = LRUCache(capacity)
        self._lock = threading.Lock()
        self.use_prefilters = True
        # Route order-insensitive counting queries through the numba kernel
        # when it actually compiled (the [perf] extra); tests force this off
        # to exercise the interpreted search explicitly.
        self.use_compiled = True
        self.small_graph_cutoff = SMALL_GRAPH_NODES

    # ------------------------------------------------------------------
    # memo plumbing
    # ------------------------------------------------------------------
    def resize(self, capacity: int) -> None:
        """Apply a new LRU capacity (keeps entries on grow, trims on shrink)."""
        with self._lock:
            self._memo.resize(capacity)

    def clear(self) -> None:
        """Drop every memoised match result."""
        with self._lock:
            self._memo.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return self._memo.stats()

    @staticmethod
    def _key(pattern: GraphPattern, graph: Graph, kind: str, cap) -> tuple:
        # Exact object identities + mutation counters (weakref-guarded in
        # _get).  Deliberately NOT pattern.canonical_key(): that is only a
        # cheap *heuristic* invariant — two non-isomorphic patterns can share
        # a structural signature — so keying on it would let one pattern's
        # cached results serve a structurally different pattern.
        return (
            id(pattern),
            pattern.graph.version,
            id(graph),
            graph.version,
            kind,
            cap,
        )

    def _get(self, key: tuple, pattern: GraphPattern, graph: Graph):
        with self._lock:
            entry = self._memo.get(key)
        if entry is None:
            return _MISS
        pattern_ref, graph_ref, payload = entry
        # A dead (or recycled-id) pattern/graph must never serve another
        # object's results; the versions in the key handle in-place mutation.
        if graph_ref() is not graph or pattern_ref() is not pattern:
            return _MISS
        return payload

    def _put(self, key: tuple, pattern: GraphPattern, graph: Graph, payload) -> None:
        with self._lock:
            self._memo.put(key, (weakref.ref(pattern), weakref.ref(graph), payload))

    # ------------------------------------------------------------------
    # shared search scaffolding
    # ------------------------------------------------------------------
    def _prepare(
        self, pattern: GraphPattern, graph: Graph
    ) -> tuple[SparseGraphView, _PatternIndex] | None:
        """Build (or recall) the per-(pattern, view) index; ``None`` certifies
        "no matching".  The index — candidate masks, edge codes, adjacency —
        is shared by every query kind against the same pair, so it lives in
        the same LRU as the results."""
        view = graph.sparse_view()
        key = self._key(pattern, graph, "index", self.use_prefilters)
        index = self._get(key, pattern, graph)
        if index is _MISS:
            index = _PatternIndex(pattern, view, use_prefilters=self.use_prefilters)
            self._put(key, pattern, graph, index)
        return (view, index) if index.feasible else None

    @staticmethod
    def _trivially_empty(pattern: GraphPattern, graph: Graph) -> bool:
        return pattern.num_nodes() == 0 or pattern.num_nodes() > graph.num_nodes()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_matching(self, pattern: GraphPattern, graph: Graph) -> bool:
        """True when the pattern matches the graph at least once."""
        if self._trivially_empty(pattern, graph):
            return False
        key = self._key(pattern, graph, "has", None)
        cached = self._get(key, pattern, graph)
        if cached is not _MISS:
            return cached
        if graph.num_nodes() <= self.small_graph_cutoff:
            result = _reference_has_matching(pattern, graph)
        else:
            prepared = self._prepare(pattern, graph)
            if prepared is None:
                result = False
            elif self.use_compiled and compiled_available():
                view, index = prepared
                result = compiled_count(*_kernel_inputs(index, view), 1) > 0
            else:
                view, index = prepared
                result = (
                    next(_iter_row_mappings(index, view, max_matchings=1), None) is not None
                )
        self._put(key, pattern, graph, result)
        return result

    def count_matchings(self, pattern: GraphPattern, graph: Graph, limit: int | None = None) -> int:
        """Number of matching functions, optionally capped at ``limit``.

        A capped count is ``min(total, limit)`` whatever the enumeration
        order, so the fast ordered search is always safe here.
        """
        if self._trivially_empty(pattern, graph):
            return 0
        key = self._key(pattern, graph, "count", limit)
        cached = self._get(key, pattern, graph)
        if cached is not _MISS:
            return cached
        if graph.num_nodes() <= self.small_graph_cutoff:
            result = sum(
                1 for _ in _reference_iter_matchings(pattern, graph, max_matchings=limit)
            )
        else:
            prepared = self._prepare(pattern, graph)
            if prepared is None:
                result = 0
            elif self.use_compiled and compiled_available():
                view, index = prepared
                cap = -1 if limit is None else limit
                result = compiled_count(*_kernel_inputs(index, view), cap)
            else:
                view, index = prepared
                result = sum(1 for _ in _iter_row_mappings(index, view, max_matchings=limit))
        self._put(key, pattern, graph, result)
        return result

    def _iter_node_mappings(
        self,
        pattern: GraphPattern,
        graph: Graph,
        view: SparseGraphView,
        index: _PatternIndex,
        max_matchings: int | None,
    ) -> Iterator[dict[int, int]]:
        """Mappings onto *node ids*; reference order when a cap binds."""
        if max_matchings is None:
            node_ids = view.node_ids
            for mapping in _iter_row_mappings(index, view):
                yield {p: node_ids[row] for p, row in mapping.items()}
        else:
            yield from _iter_reference_order(pattern, graph, view, index, max_matchings)

    def _iter_capped_union(
        self,
        pattern: GraphPattern,
        graph: Graph,
        view: SparseGraphView,
        index: _PatternIndex,
        max_matchings: int | None,
    ) -> Iterator[dict[int, int]]:
        """Node-id mappings for *set-valued* capped queries (coverage unions).

        A cap only changes the result when it **binds** (more matchings exist
        than the cap).  The fast ordered search probes for ``cap + 1``
        matchings first: when the cap does not bind the union over all
        matchings is order-independent, so the collected fast-path mappings
        are the exact answer; only genuinely-truncated queries replay the
        reference enumeration order.  Never use this for ``matched_node_sets``
        — its *list order* is part of the contract whenever a cap is given.
        """
        if max_matchings is None:
            yield from self._iter_node_mappings(pattern, graph, view, index, None)
            return
        probe: list[dict[int, int]] = []
        for mapping in _iter_row_mappings(index, view, max_matchings=max_matchings + 1):
            probe.append(mapping)
        if len(probe) <= max_matchings:
            node_ids = view.node_ids
            for mapping in probe:
                yield {p: node_ids[row] for p, row in mapping.items()}
            return
        yield from _iter_reference_order(pattern, graph, view, index, max_matchings)

    def matched_node_sets(
        self, pattern: GraphPattern, graph: Graph, max_matchings: int | None = None
    ) -> list[set[int]]:
        """Distinct node sets covered by individual matchings.

        Capped queries reproduce the reference matcher's list exactly
        (including order); uncapped queries yield the same sets, possibly in
        a different discovery order.
        """
        if self._trivially_empty(pattern, graph):
            return []
        key = self._key(pattern, graph, "nodesets", max_matchings)
        cached = self._get(key, pattern, graph)
        if cached is not _MISS:
            return [set(node_set) for node_set in cached]
        sets: list[frozenset[int]] = []
        seen: set[frozenset[int]] = set()
        if graph.num_nodes() <= self.small_graph_cutoff:
            mappings: Iterator[dict[int, int]] = _reference_iter_matchings(
                pattern, graph, max_matchings=max_matchings
            )
            for mapping in mappings:
                node_set = frozenset(mapping.values())
                if node_set not in seen:
                    seen.add(node_set)
                    sets.append(node_set)
        else:
            prepared = self._prepare(pattern, graph)
            if prepared is not None:
                view, index = prepared
                for mapping in self._iter_node_mappings(
                    pattern, graph, view, index, max_matchings
                ):
                    node_set = frozenset(mapping.values())
                    if node_set not in seen:
                        seen.add(node_set)
                        sets.append(node_set)
        self._put(key, pattern, graph, tuple(sets))
        return [set(node_set) for node_set in sets]

    def covered_nodes(
        self, pattern: GraphPattern, graph: Graph, max_matchings: int | None = None
    ) -> set[int]:
        """Graph nodes covered by at least one matching (memoised)."""
        if self._trivially_empty(pattern, graph):
            return set()
        key = self._key(pattern, graph, "covered_nodes", max_matchings)
        cached = self._get(key, pattern, graph)
        if cached is not _MISS:
            return set(cached)
        covered: set[int] = set()
        total = graph.num_nodes()
        if total <= self.small_graph_cutoff:
            for mapping in _reference_iter_matchings(
                pattern, graph, max_matchings=max_matchings
            ):
                covered.update(mapping.values())
                if len(covered) == total:
                    break
        else:
            prepared = self._prepare(pattern, graph)
            if prepared is not None:
                view, index = prepared
                for mapping in self._iter_capped_union(
                    pattern, graph, view, index, max_matchings
                ):
                    covered.update(mapping.values())
                    if len(covered) == total and max_matchings is None:
                        break
        self._put(key, pattern, graph, frozenset(covered))
        return covered

    def covered_edges(
        self, pattern: GraphPattern, graph: Graph, max_matchings: int | None = None
    ) -> set[tuple[int, int]]:
        """Graph edges covered by at least one matching (memoised)."""
        if self._trivially_empty(pattern, graph):
            return set()
        key = self._key(pattern, graph, "covered_edges", max_matchings)
        cached = self._get(key, pattern, graph)
        if cached is not _MISS:
            return set(cached)
        covered: set[tuple[int, int]] = set()
        total = graph.num_edges()
        pattern_edges = pattern.edges
        if graph.num_nodes() <= self.small_graph_cutoff:
            for mapping in _reference_iter_matchings(
                pattern, graph, max_matchings=max_matchings
            ):
                for u, v in pattern_edges:
                    a, b = mapping[u], mapping[v]
                    covered.add((a, b) if a <= b else (b, a))
                if len(covered) == total:
                    break
        else:
            prepared = self._prepare(pattern, graph)
            if prepared is not None:
                view, index = prepared
                for mapping in self._iter_capped_union(
                    pattern, graph, view, index, max_matchings
                ):
                    for u, v in pattern_edges:
                        a, b = mapping[u], mapping[v]
                        covered.add((a, b) if a <= b else (b, a))
                    if len(covered) == total and max_matchings is None:
                        break
        self._put(key, pattern, graph, frozenset(covered))
        return covered

    def match_many(self, pattern: GraphPattern, graphs: Sequence[Graph]) -> list[bool]:
        """``has_matching`` over a whole graph collection.

        The batch prefilter compares the pattern's type histogram against
        every graph's cached histogram first, so the backtracking search only
        runs on the survivors — the call shape of mining support counts over
        a :class:`~repro.graphs.database.GraphDatabase`.
        """
        if pattern.num_nodes() == 0:
            return [False for _ in graphs]
        pattern_counts = pattern.graph.type_counts()
        pattern_size = pattern.num_nodes()
        results: list[bool] = []
        for graph in graphs:
            if pattern_size > graph.num_nodes():
                results.append(False)
                continue
            # Small graphs never build a CSR view here: they run the
            # reference search anyway, so a dict histogram is all we need.
            if graph.num_nodes() <= self.small_graph_cutoff:
                graph_counts = graph.type_counts()
            else:
                graph_counts = graph.sparse_view().type_counts()
            if type_histogram_deficit(pattern_counts, graph_counts):
                results.append(False)
                continue
            results.append(self.has_matching(pattern, graph))
        return results


# ----------------------------------------------------------------------
# process-wide engine + dispatchers (A/B'd by the sparse-backend toggle)
# ----------------------------------------------------------------------
_ENGINE: MatchEngine | None = None
_ENGINE_LOCK = threading.Lock()


def _env_cache_size() -> int:
    """Initial memo capacity, honouring ``REPRO_MATCH_CACHE_SIZE``.

    A malformed value fails loudly and names the env var — the first
    symptom would otherwise be a bare ``ValueError`` deep inside a match
    dispatch with no hint of its origin.
    """
    raw = os.environ.get("REPRO_MATCH_CACHE_SIZE")
    if raw is None:
        return DEFAULT_MATCH_CACHE_SIZE
    try:
        capacity = int(raw)
    except ValueError:
        capacity = -1
    if capacity < 0:  # same validation Configuration.match_cache_size applies
        from repro.exceptions import ConfigurationError

        raise ConfigurationError(
            f"REPRO_MATCH_CACHE_SIZE must be a non-negative integer, got {raw!r}; "
            "unset it or use e.g. REPRO_MATCH_CACHE_SIZE=8192 (0 disables memoisation)"
        ) from None
    return capacity


def get_engine() -> MatchEngine:
    """The process-wide match engine (created on first use)."""
    global _ENGINE
    if _ENGINE is None:
        with _ENGINE_LOCK:
            if _ENGINE is None:
                _ENGINE = MatchEngine(_env_cache_size())
    return _ENGINE


def set_match_cache_size(capacity: int) -> None:
    """Resize the process-wide match memo immediately.

    Later explainer constructions re-apply their own
    ``Configuration.match_cache_size`` (the configuration field owns the
    knob); set the ``REPRO_MATCH_CACHE_SIZE`` environment variable instead
    to pin a size against those configuration-driven resizes.
    """
    get_engine().resize(capacity)


def apply_config_cache_size(capacity: int) -> None:
    """Apply a ``Configuration.match_cache_size`` to the shared engine.

    Explainer constructors route through this so that an operator-pinned
    ``REPRO_MATCH_CACHE_SIZE`` environment override is never silently undone
    (or a warm cache evicted) by constructing an explainer with a default
    configuration.  Without the override, last-applied-configuration wins —
    the engine is process-wide, as documented on the configuration field.
    """
    if os.environ.get("REPRO_MATCH_CACHE_SIZE") is not None:
        return
    get_engine().resize(capacity)


def warm_match_indices(graphs: Sequence[Graph]) -> int:
    """Prebuild every graph's match-side indices (degree / neighbour-type
    signatures / row-neighbour sets / edge-code tables on the CSR view) so
    the first matcher query pays no setup cost — the match-engine analogue
    of ``GraphDatabase.warm_sparse_cache``.  Graphs at or below the engine's
    small-graph cutoff are skipped (they run the reference search and never
    consult these indices); returns the number of graphs actually warmed
    (0 when the sparse backend is disabled).
    """
    if not sparse_enabled():
        return 0
    cutoff = get_engine().small_graph_cutoff
    built = 0
    for graph in graphs:
        if graph.num_nodes() <= cutoff:
            continue
        view = graph.sparse_view()
        view.degrees()
        view.neighbour_type_counts()
        view.row_neighbour_sets()
        view.edge_code_map()
        built += 1
    return built


def has_matching(pattern: GraphPattern, graph: Graph) -> bool:
    """True when the pattern matches the graph at least once (engine-backed)."""
    if sparse_enabled():
        return get_engine().has_matching(pattern, graph)
    return _reference_has_matching(pattern, graph)


def count_matchings(pattern: GraphPattern, graph: Graph, limit: int | None = None) -> int:
    """Number of matching functions (optionally capped at ``limit``)."""
    if sparse_enabled():
        return get_engine().count_matchings(pattern, graph, limit=limit)
    from repro.matching.isomorphism import count_matchings as reference_count

    return reference_count(pattern, graph, limit=limit)


def matched_node_sets(
    pattern: GraphPattern, graph: Graph, max_matchings: int | None = None
) -> list[set[int]]:
    """Distinct sets of graph nodes covered by individual matchings."""
    if sparse_enabled():
        return get_engine().matched_node_sets(pattern, graph, max_matchings=max_matchings)
    from repro.matching.isomorphism import matched_node_sets as reference_sets

    return reference_sets(pattern, graph, max_matchings=max_matchings)


def match_many(pattern: GraphPattern, graphs: Sequence[Graph]) -> list[bool]:
    """``has_matching`` across a graph collection, batch-prefiltered."""
    if sparse_enabled():
        return get_engine().match_many(pattern, list(graphs))
    return [_reference_has_matching(pattern, graph) for graph in graphs]
