"""Node-induced subgraph isomorphism (the paper's graph pattern matching).

A matching function ``h`` maps every pattern node to a distinct graph node so
that (1) node types agree, (2) every pattern edge maps to a graph edge with
the same edge type, and (3) — because matching is *node-induced* — every graph
edge between two mapped nodes corresponds to a pattern edge.  This is the
``PMatch`` primitive operator of section 4.

The search is a VF2-style backtracking with candidate ordering by type
rarity; it is exponential in the worst case (the problem is NP-hard) but the
patterns GVEX produces are small, which keeps matching fast in practice.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern

__all__ = [
    "find_matchings",
    "iter_matchings",
    "has_matching",
    "count_matchings",
    "matched_node_sets",
]


def _compatible(
    pattern: GraphPattern,
    graph: Graph,
    pattern_node: int,
    graph_node: int,
    mapping: dict[int, int],
) -> bool:
    """Check type agreement and induced-edge consistency for one assignment."""
    if pattern.node_type(pattern_node) != graph.node_type(graph_node):
        return False
    mapped_targets = set(mapping.values())
    if graph_node in mapped_targets:
        return False
    graph_neighbors = graph.neighbors(graph_node)
    pattern_neighbors = pattern.graph.neighbors(pattern_node)
    for assigned_pattern_node, assigned_graph_node in mapping.items():
        pattern_adjacent = assigned_pattern_node in pattern_neighbors
        graph_adjacent = assigned_graph_node in graph_neighbors
        # Node-induced isomorphism: adjacency must agree in both directions.
        if pattern_adjacent != graph_adjacent:
            return False
        if pattern_adjacent:
            if pattern.edge_type(pattern_node, assigned_pattern_node) != graph.edge_type(
                graph_node, assigned_graph_node
            ):
                return False
    return True


def _order_pattern_nodes(pattern: GraphPattern, graph: Graph) -> list[int]:
    """Order pattern nodes so rare types and well-connected nodes come first."""
    type_frequency = graph.type_counts()
    ordered: list[int] = []
    remaining = set(pattern.nodes)
    if not remaining:
        return ordered
    start = min(
        remaining,
        key=lambda node: (type_frequency.get(pattern.node_type(node), 0), -pattern.graph.degree(node)),
    )
    ordered.append(start)
    remaining.discard(start)
    while remaining:
        # Prefer nodes adjacent to already-ordered nodes to keep the partial
        # mapping connected (cuts the branching factor drastically).
        adjacent = [
            node
            for node in remaining
            if any(neighbor in ordered for neighbor in pattern.graph.neighbors(node))
        ]
        pool = adjacent or sorted(remaining)
        chosen = min(
            pool,
            key=lambda node: (type_frequency.get(pattern.node_type(node), 0), -pattern.graph.degree(node)),
        )
        ordered.append(chosen)
        remaining.discard(chosen)
    return ordered


def iter_matchings(
    pattern: GraphPattern,
    graph: Graph,
    max_matchings: int | None = None,
) -> Iterator[dict[int, int]]:
    """Yield matching functions ``{pattern node -> graph node}`` lazily."""
    if pattern.num_nodes() == 0 or pattern.num_nodes() > graph.num_nodes():
        return
    order = _order_pattern_nodes(pattern, graph)
    graph_nodes = graph.nodes
    yielded = 0

    def backtrack(position: int, mapping: dict[int, int]) -> Iterator[dict[int, int]]:
        nonlocal yielded
        if max_matchings is not None and yielded >= max_matchings:
            return
        if position == len(order):
            yielded += 1
            yield dict(mapping)
            return
        pattern_node = order[position]
        # Restrict candidates to neighbours of already-mapped adjacent nodes
        # when possible; otherwise scan all graph nodes.
        candidate_pool: list[int] | None = None
        for neighbor in pattern.graph.neighbors(pattern_node):
            if neighbor in mapping:
                neighbourhood = graph.neighbors(mapping[neighbor])
                candidate_pool = (
                    [node for node in candidate_pool if node in neighbourhood]
                    if candidate_pool is not None
                    else sorted(neighbourhood)
                )
        candidates = candidate_pool if candidate_pool is not None else graph_nodes
        for graph_node in candidates:
            if _compatible(pattern, graph, pattern_node, graph_node, mapping):
                mapping[pattern_node] = graph_node
                yield from backtrack(position + 1, mapping)
                del mapping[pattern_node]
                if max_matchings is not None and yielded >= max_matchings:
                    return

    yield from backtrack(0, {})


def find_matchings(
    pattern: GraphPattern,
    graph: Graph,
    max_matchings: int | None = None,
) -> list[dict[int, int]]:
    """All (or the first ``max_matchings``) matching functions."""
    return list(iter_matchings(pattern, graph, max_matchings=max_matchings))


def has_matching(pattern: GraphPattern, graph: Graph) -> bool:
    """True when the pattern matches the graph at least once."""
    return next(iter_matchings(pattern, graph, max_matchings=1), None) is not None


def count_matchings(pattern: GraphPattern, graph: Graph, limit: int | None = None) -> int:
    """Number of matching functions (optionally capped at ``limit``)."""
    return sum(1 for _ in iter_matchings(pattern, graph, max_matchings=limit))


def matched_node_sets(pattern: GraphPattern, graph: Graph, max_matchings: int | None = None) -> list[set[int]]:
    """Distinct sets of graph nodes covered by individual matchings."""
    seen: set[frozenset[int]] = set()
    result: list[set[int]] = []
    for mapping in iter_matchings(pattern, graph, max_matchings=max_matchings):
        key = frozenset(mapping.values())
        if key not in seen:
            seen.add(key)
            result.append(set(key))
    return result
