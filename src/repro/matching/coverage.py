"""Node and edge coverage of graphs by pattern sets (paper section 2.1).

A pattern ``P`` *covers* a node ``v`` (edge ``e``) of a graph when some
matching function of ``P`` maps a pattern node (edge) onto it.  A pattern set
covers a graph collection when every node is covered by at least one pattern.
These predicates drive the view-verification constraint C1/C3 and the Psum
summarisation objective.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern
from repro.matching.isomorphism import iter_matchings

__all__ = [
    "covered_nodes",
    "covered_edges",
    "pattern_set_covered_nodes",
    "pattern_set_covers_nodes",
    "coverage_summary",
]


def covered_nodes(pattern: GraphPattern, graph: Graph, max_matchings: int | None = None) -> set[int]:
    """Graph nodes covered by at least one matching of ``pattern``."""
    covered: set[int] = set()
    for mapping in iter_matchings(pattern, graph, max_matchings=max_matchings):
        covered.update(mapping.values())
        if len(covered) == graph.num_nodes():
            break
    return covered


def covered_edges(
    pattern: GraphPattern, graph: Graph, max_matchings: int | None = None
) -> set[tuple[int, int]]:
    """Graph edges covered by at least one matching of ``pattern``."""
    covered: set[tuple[int, int]] = set()
    for mapping in iter_matchings(pattern, graph, max_matchings=max_matchings):
        for u, v in pattern.edges:
            a, b = mapping[u], mapping[v]
            covered.add((a, b) if a <= b else (b, a))
        if len(covered) == graph.num_edges():
            break
    return covered


def pattern_set_covered_nodes(
    patterns: Iterable[GraphPattern],
    graphs: Sequence[Graph],
    max_matchings: int | None = None,
) -> dict[int, set[int]]:
    """Covered nodes per graph index for a whole pattern set."""
    coverage: dict[int, set[int]] = {index: set() for index in range(len(graphs))}
    for pattern in patterns:
        for index, graph in enumerate(graphs):
            if len(coverage[index]) == graph.num_nodes():
                continue
            coverage[index] |= covered_nodes(pattern, graph, max_matchings=max_matchings)
    return coverage


def pattern_set_covers_nodes(
    patterns: Iterable[GraphPattern],
    graphs: Sequence[Graph],
    max_matchings: int | None = None,
) -> bool:
    """True when the pattern set covers every node of every graph."""
    patterns = list(patterns)
    coverage = pattern_set_covered_nodes(patterns, graphs, max_matchings=max_matchings)
    return all(
        len(coverage[index]) == graph.num_nodes() for index, graph in enumerate(graphs)
    )


def coverage_summary(
    patterns: Iterable[GraphPattern],
    graphs: Sequence[Graph],
    max_matchings: int | None = None,
) -> dict[str, float]:
    """Fractions of nodes and edges covered by the pattern set.

    The edge fraction is the quantity behind the paper's *edge loss* metric
    (Fig. 8c/8d): ``edge_loss = 1 - covered_edge_fraction``.
    """
    patterns = list(patterns)
    total_nodes = sum(graph.num_nodes() for graph in graphs)
    total_edges = sum(graph.num_edges() for graph in graphs)
    node_hits = 0
    edge_hits = 0
    for graph in graphs:
        nodes_hit: set[int] = set()
        edges_hit: set[tuple[int, int]] = set()
        for pattern in patterns:
            nodes_hit |= covered_nodes(pattern, graph, max_matchings=max_matchings)
            edges_hit |= covered_edges(pattern, graph, max_matchings=max_matchings)
        node_hits += len(nodes_hit)
        edge_hits += len(edges_hit)
    return {
        "node_coverage": node_hits / total_nodes if total_nodes else 1.0,
        "edge_coverage": edge_hits / total_edges if total_edges else 1.0,
        "covered_nodes": float(node_hits),
        "covered_edges": float(edge_hits),
        "total_nodes": float(total_nodes),
        "total_edges": float(total_edges),
    }
