"""Node and edge coverage of graphs by pattern sets (paper section 2.1).

A pattern ``P`` *covers* a node ``v`` (edge ``e``) of a graph when some
matching function of ``P`` maps a pattern node (edge) onto it.  A pattern set
covers a graph collection when every node is covered by at least one pattern.
These predicates drive the view-verification constraint C1/C3 and the Psum
summarisation objective.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern
from repro.graphs.sparse import SparseGraphView, sparse_enabled
from repro.matching.engine import get_engine, type_histogram_deficit
from repro.matching.isomorphism import iter_matchings

__all__ = [
    "covered_nodes",
    "covered_edges",
    "pattern_set_covered_nodes",
    "pattern_set_covers_nodes",
    "coverage_summary",
]


def _type_prefilter_fails(pattern: GraphPattern, view: SparseGraphView) -> bool:
    """True when the type histograms alone rule out any matching.

    Thin wrapper over the single shared certificate implementation in
    :func:`repro.matching.engine.type_histogram_deficit`.
    """
    return type_histogram_deficit(pattern.graph.type_counts(), view.type_counts())


def _matched_edge_mask(pattern: GraphPattern, view: SparseGraphView) -> np.ndarray | None:
    """Boolean mask over the graph's edge list matched by a 2-node pattern.

    Returns ``None`` when some pattern type does not occur in the graph (the
    mask would be all-false, which the caller handles the same way).
    """
    u, v = pattern.edges[0]
    type_u = view.node_type_code(pattern.node_type(u))
    type_v = view.node_type_code(pattern.node_type(v))
    edge_code = view.edge_type_code(pattern.edge_type(u, v))
    if type_u is None or type_v is None or edge_code is None:
        return None
    ends_u = view.node_type_codes[view.edge_u]
    ends_v = view.node_type_codes[view.edge_v]
    mask = view.edge_type_codes == edge_code
    return mask & (
        ((ends_u == type_u) & (ends_v == type_v)) | ((ends_u == type_v) & (ends_v == type_u))
    )


def _fast_covered_nodes(
    pattern: GraphPattern, graph: Graph, max_matchings: int | None
) -> set[int] | None:
    """Vectorized coverage for the pattern shapes that dominate in practice.

    Handles singleton patterns (one type-array scan) and single-edge patterns
    (one mask over the flat edge arrays) exactly, plus the type-histogram
    emptiness certificate for larger patterns.  Returns ``None`` when the
    general backtracking search is required — either a larger pattern, or a
    matching cap that this path cannot reproduce faithfully.
    """
    if pattern.num_nodes() == 0 or pattern.num_nodes() > graph.num_nodes():
        return set()
    view = graph.sparse_view()
    if _type_prefilter_fails(pattern, view):
        return set()
    if pattern.num_nodes() == 1:
        code = view.node_type_code(pattern.node_type(pattern.nodes[0]))
        if code is None:
            return set()
        rows = view.rows_of_type(code)
        # The backtracking search visits nodes in insertion order, so a cap
        # keeps the first ``max_matchings`` rows — reproduced exactly here.
        if max_matchings is not None:
            rows = rows[:max_matchings]
        return {view.node_ids[row] for row in rows}
    if pattern.num_nodes() == 2 and pattern.num_edges() == 1:
        mask = _matched_edge_mask(pattern, view)
        if mask is None or not mask.any():
            return set()
        if max_matchings is not None:
            u, v = pattern.edges[0]
            same_types = pattern.node_type(u) == pattern.node_type(v)
            num_matchings = int(mask.sum()) * (2 if same_types else 1)
            if num_matchings > max_matchings:
                # A cap below the matching count truncates enumeration
                # order-dependently; defer to the reference search.
                return None
        rows = np.union1d(view.edge_u[mask], view.edge_v[mask])
        return {view.node_ids[row] for row in rows}
    return None


def covered_nodes(pattern: GraphPattern, graph: Graph, max_matchings: int | None = None) -> set[int]:
    """Graph nodes covered by at least one matching of ``pattern``."""
    if sparse_enabled():
        fast = _fast_covered_nodes(pattern, graph, max_matchings)
        if fast is not None:
            return fast
        # Larger patterns (and capped small ones the closed forms defer on)
        # go through the memoised, prefiltered match engine; capped queries
        # replay the reference enumeration order so truncation is identical.
        return get_engine().covered_nodes(pattern, graph, max_matchings=max_matchings)
    covered: set[int] = set()
    for mapping in iter_matchings(pattern, graph, max_matchings=max_matchings):
        covered.update(mapping.values())
        if len(covered) == graph.num_nodes():
            break
    return covered


def _fast_covered_edges(
    pattern: GraphPattern, graph: Graph, max_matchings: int | None
) -> set[tuple[int, int]] | None:
    """Vectorized edge coverage for edgeless and single-edge patterns."""
    if pattern.num_nodes() == 0 or pattern.num_nodes() > graph.num_nodes():
        return set()
    if pattern.num_edges() == 0:
        # Matchings of an edgeless pattern never cover an edge.
        return set()
    view = graph.sparse_view()
    if _type_prefilter_fails(pattern, view):
        return set()
    if pattern.num_nodes() == 2 and pattern.num_edges() == 1:
        mask = _matched_edge_mask(pattern, view)
        if mask is None or not mask.any():
            return set()
        if max_matchings is not None:
            u, v = pattern.edges[0]
            same_types = pattern.node_type(u) == pattern.node_type(v)
            num_matchings = int(mask.sum()) * (2 if same_types else 1)
            if num_matchings > max_matchings:
                return None
        node_ids = view.node_ids
        covered: set[tuple[int, int]] = set()
        for row_u, row_v in zip(view.edge_u[mask], view.edge_v[mask]):
            a, b = node_ids[row_u], node_ids[row_v]
            covered.add((a, b) if a <= b else (b, a))
        return covered
    return None


def covered_edges(
    pattern: GraphPattern, graph: Graph, max_matchings: int | None = None
) -> set[tuple[int, int]]:
    """Graph edges covered by at least one matching of ``pattern``."""
    if sparse_enabled():
        fast = _fast_covered_edges(pattern, graph, max_matchings)
        if fast is not None:
            return fast
        return get_engine().covered_edges(pattern, graph, max_matchings=max_matchings)
    covered: set[tuple[int, int]] = set()
    for mapping in iter_matchings(pattern, graph, max_matchings=max_matchings):
        for u, v in pattern.edges:
            a, b = mapping[u], mapping[v]
            covered.add((a, b) if a <= b else (b, a))
        if len(covered) == graph.num_edges():
            break
    return covered


def pattern_set_covered_nodes(
    patterns: Iterable[GraphPattern],
    graphs: Sequence[Graph],
    max_matchings: int | None = None,
) -> dict[int, set[int]]:
    """Covered nodes per graph index for a whole pattern set."""
    coverage: dict[int, set[int]] = {index: set() for index in range(len(graphs))}
    for pattern in patterns:
        for index, graph in enumerate(graphs):
            if len(coverage[index]) == graph.num_nodes():
                continue
            coverage[index] |= covered_nodes(pattern, graph, max_matchings=max_matchings)
    return coverage


def pattern_set_covers_nodes(
    patterns: Iterable[GraphPattern],
    graphs: Sequence[Graph],
    max_matchings: int | None = None,
) -> bool:
    """True when the pattern set covers every node of every graph."""
    patterns = list(patterns)
    coverage = pattern_set_covered_nodes(patterns, graphs, max_matchings=max_matchings)
    return all(
        len(coverage[index]) == graph.num_nodes() for index, graph in enumerate(graphs)
    )


def coverage_summary(
    patterns: Iterable[GraphPattern],
    graphs: Sequence[Graph],
    max_matchings: int | None = None,
) -> dict[str, float]:
    """Fractions of nodes and edges covered by the pattern set.

    The edge fraction is the quantity behind the paper's *edge loss* metric
    (Fig. 8c/8d): ``edge_loss = 1 - covered_edge_fraction``.
    """
    patterns = list(patterns)
    total_nodes = sum(graph.num_nodes() for graph in graphs)
    total_edges = sum(graph.num_edges() for graph in graphs)
    node_hits = 0
    edge_hits = 0
    for graph in graphs:
        nodes_hit: set[int] = set()
        edges_hit: set[tuple[int, int]] = set()
        for pattern in patterns:
            nodes_hit |= covered_nodes(pattern, graph, max_matchings=max_matchings)
            edges_hit |= covered_edges(pattern, graph, max_matchings=max_matchings)
        node_hits += len(nodes_hit)
        edge_hits += len(edges_hit)
    return {
        "node_coverage": node_hits / total_nodes if total_nodes else 1.0,
        "edge_coverage": edge_hits / total_edges if total_edges else 1.0,
        "covered_nodes": float(node_hits),
        "covered_edges": float(edge_hits),
        "total_nodes": float(total_nodes),
        "total_edges": float(total_edges),
    }
