"""Graph pattern matching substrate (the PMatch / IncPMatch operators).

The package-level ``has_matching`` / ``count_matchings`` /
``matched_node_sets`` / ``match_many`` route through the indexed, memoising
:mod:`repro.matching.engine` when the sparse backend is enabled (the default)
and fall back to the reference matcher in
:mod:`repro.matching.isomorphism` under the ``REPRO_SPARSE_BACKEND=0`` /
:func:`repro.graphs.sparse.sparse_backend` toggle.  ``find_matchings`` /
``iter_matchings`` expose full matching *functions* and always run the
reference search (the engine memoises derived results, not raw mappings).
"""

from repro.matching.coverage import (
    coverage_summary,
    covered_edges,
    covered_nodes,
    pattern_set_covered_nodes,
    pattern_set_covers_nodes,
)
from repro.matching.engine import (
    MatchEngine,
    count_matchings,
    get_engine,
    has_matching,
    match_many,
    matched_node_sets,
    set_match_cache_size,
    warm_match_indices,
)
from repro.matching.incremental import IncrementalMatcher
from repro.matching.isomorphism import find_matchings, iter_matchings

__all__ = [
    "find_matchings",
    "iter_matchings",
    "has_matching",
    "count_matchings",
    "matched_node_sets",
    "match_many",
    "MatchEngine",
    "get_engine",
    "set_match_cache_size",
    "warm_match_indices",
    "covered_nodes",
    "covered_edges",
    "pattern_set_covered_nodes",
    "pattern_set_covers_nodes",
    "coverage_summary",
    "IncrementalMatcher",
]
