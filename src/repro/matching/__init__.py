"""Graph pattern matching substrate (the PMatch / IncPMatch operators)."""

from repro.matching.coverage import (
    coverage_summary,
    covered_edges,
    covered_nodes,
    pattern_set_covered_nodes,
    pattern_set_covers_nodes,
)
from repro.matching.incremental import IncrementalMatcher
from repro.matching.isomorphism import (
    count_matchings,
    find_matchings,
    has_matching,
    iter_matchings,
    matched_node_sets,
)

__all__ = [
    "find_matchings",
    "iter_matchings",
    "has_matching",
    "count_matchings",
    "matched_node_sets",
    "covered_nodes",
    "covered_edges",
    "pattern_set_covered_nodes",
    "pattern_set_covers_nodes",
    "coverage_summary",
    "IncrementalMatcher",
]
