"""Optional numba-compiled backtracking kernel for the match engine.

The interpreted masked search in :mod:`repro.matching.engine`
(``_iter_row_mappings``) spends its time in Python-level set lookups and
dict churn.  For *order-insensitive counting* queries — existence probes and
(capped) matching counts — the whole search collapses to a tight iterative
backtracker over three flat arrays:

* ``masks`` — ``(k, n)`` candidate mask per pattern position in VF2++ search
  order (type / degree / neighbour-signature prefilters already applied),
* ``pattern_adj`` — ``(k, k)`` edge-type codes between ordered pattern
  positions, ``-1`` where non-adjacent,
* ``adj_codes`` — ``(n, n)`` edge-type codes between graph rows, ``-1``
  where non-adjacent (``SparseGraphView.adjacency_code_matrix``).

That shape is exactly what ``numba.njit`` compiles well: no objects, no
allocation in the inner loop, plain int64/bool arrays.  numba is an
*optional* dependency (the ``[perf]`` extra): when it is missing, or the JIT
fails to compile on this platform, :func:`compiled_available` reports
``False`` and the engine keeps using the interpreted search — the kernel
below still runs as plain Python, which is how the identity tests exercise
it without numba installed.

Correctness containment: the kernel enumerates the same *set* of complete
mappings as the reference matcher (it is a plain VF2 over exact
compatibility checks; the masks only remove rows that cannot occur in any
complete matching), so any query that depends only on that set — existence,
and counts where a cap means ``min(total, cap)`` — is safe to route here.
Enumeration-*order*-sensitive queries (capped set-valued results) never
reach this module; the engine replays the reference order for those.
"""

from __future__ import annotations

import numpy as np

__all__ = ["compiled_available", "compiled_count", "match_count_kernel"]

try:  # pragma: no cover - exercised only with the [perf] extra installed
    import numba as _numba

    _NUMBA_IMPORTED = True
except ImportError:
    _numba = None
    _NUMBA_IMPORTED = False


def _match_count_impl(masks, pattern_adj, adj_codes, max_matchings):
    """Count complete mappings via iterative backtracking (njit-compatible).

    ``max_matchings < 0`` means uncapped.  Positions are visited in the
    order of ``masks``' rows; a candidate row must pass its mask, be unused,
    and agree with every already-assigned position on both adjacency and
    edge-type code — the same exact compatibility predicate the reference
    matcher applies, so the set of complete mappings (and hence the count)
    is identical.
    """
    num_pattern, num_rows = masks.shape
    if num_pattern == 0 or max_matchings == 0:
        return 0
    assignment = np.full(num_pattern, -1, dtype=np.int64)
    used = np.zeros(num_rows, dtype=np.bool_)
    cursor = np.zeros(num_pattern, dtype=np.int64)
    count = 0
    depth = 0
    while True:
        advanced = False
        row = cursor[depth]
        while row < num_rows:
            if masks[depth, row] and not used[row]:
                ok = True
                for position in range(depth):
                    graph_code = adj_codes[row, assignment[position]]
                    pattern_code = pattern_adj[depth, position]
                    if (pattern_code >= 0) != (graph_code >= 0):
                        ok = False
                        break
                    if pattern_code >= 0 and pattern_code != graph_code:
                        ok = False
                        break
                if ok:
                    cursor[depth] = row + 1
                    assignment[depth] = row
                    used[row] = True
                    advanced = True
                    break
            row += 1
        if advanced:
            if depth == num_pattern - 1:
                count += 1
                used[assignment[depth]] = False
                assignment[depth] = -1
                if max_matchings >= 0 and count >= max_matchings:
                    return count
            else:
                depth += 1
                cursor[depth] = 0
        else:
            cursor[depth] = 0
            depth -= 1
            if depth < 0:
                return count
            used[assignment[depth]] = False
            assignment[depth] = -1


def match_count_kernel(masks, pattern_adj, adj_codes, max_matchings=-1):
    """The kernel as plain interpreted Python (always available).

    Exists so the identity tests can compare kernel semantics against the
    reference matcher on any machine; the engine itself only routes here
    *compiled* (see :func:`compiled_count`).
    """
    return _match_count_impl(
        np.ascontiguousarray(masks, dtype=np.bool_),
        np.ascontiguousarray(pattern_adj, dtype=np.int64),
        np.ascontiguousarray(adj_codes, dtype=np.int64),
        int(max_matchings),
    )


_compiled_kernel = None
_compiled_state: bool | None = None


def compiled_available() -> bool:
    """True when the numba-compiled kernel is importable *and* compiles.

    The first call attempts the JIT compilation on a one-node warmup problem
    and verifies its answer; any failure (numba missing, unsupported
    platform, LLVM error) latches ``False`` so the engine never retries a
    broken toolchain in a hot loop.
    """
    global _compiled_kernel, _compiled_state
    if _compiled_state is None:
        if not _NUMBA_IMPORTED:
            _compiled_state = False
        else:  # pragma: no cover - requires the [perf] extra
            try:
                jitted = _numba.njit(cache=False, nogil=True)(_match_count_impl)
                warm_masks = np.ones((1, 1), dtype=np.bool_)
                warm_codes = np.full((1, 1), -1, dtype=np.int64)
                if jitted(warm_masks, warm_codes, warm_codes, -1) != 1:
                    raise RuntimeError("compiled matcher warmup mismatch")
                _compiled_kernel = jitted
                _compiled_state = True
            except Exception:
                _compiled_kernel = None
                _compiled_state = False
    return _compiled_state


def compiled_count(masks, pattern_adj, adj_codes, max_matchings=-1) -> int:
    """Run the *compiled* kernel; call only after :func:`compiled_available`."""
    if not compiled_available():  # defensive: keeps misuse loud, not wrong
        return match_count_kernel(masks, pattern_adj, adj_codes, max_matchings)
    return int(  # pragma: no cover - requires the [perf] extra
        _compiled_kernel(
            np.ascontiguousarray(masks, dtype=np.bool_),
            np.ascontiguousarray(pattern_adj, dtype=np.int64),
            np.ascontiguousarray(adj_codes, dtype=np.int64),
            int(max_matchings),
        )
    )
