"""SubgraphX baseline (Yuan et al., ICML 2021).

SubgraphX searches the space of connected subgraphs with Monte Carlo tree
search, scoring candidate subgraphs with a Shapley-value approximation of
their contribution to the prediction.  This implementation keeps the three
essential ingredients:

* search states are connected node subsets, expanded by pruning one node at a
  time (children of a state are its connected subsets with one fewer node);
* leaves (states at or below ``max_nodes``) are scored with a Monte Carlo
  Shapley estimate: the average marginal gain in the predicted probability of
  the target label when the subgraph's nodes join a random coalition of the
  remaining nodes;
* the best-scoring subgraph of admissible size found during the search is
  returned.
"""

from __future__ import annotations

import math
import random

from repro.baselines.base import BaseExplainer
from repro.gnn.models import GNNClassifier
from repro.graphs.graph import Graph
from repro.graphs.subgraph import induced_subgraph

__all__ = ["SubgraphXBaseline"]


class _SearchNode:
    """One MCTS state: a connected node subset of the input graph."""

    def __init__(self, nodes: frozenset[int]) -> None:
        self.nodes = nodes
        self.visits = 0
        self.total_reward = 0.0
        self.children: list["_SearchNode"] = []
        self.expanded = False

    def mean_reward(self) -> float:
        return self.total_reward / self.visits if self.visits else 0.0


class SubgraphXBaseline(BaseExplainer):
    """Monte Carlo tree search + Shapley scoring explainer."""

    name = "SubgraphX"

    def __init__(
        self,
        model: GNNClassifier,
        max_nodes: int = 10,
        iterations: int = 20,
        shapley_samples: int = 8,
        exploration: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(model, max_nodes=max_nodes)
        self.iterations = iterations
        self.shapley_samples = shapley_samples
        self.exploration = exploration
        self.seed = seed

    # ------------------------------------------------------------------
    # Shapley-style subgraph scoring
    # ------------------------------------------------------------------
    def _shapley_score(self, graph: Graph, nodes: frozenset[int], label: int, rng: random.Random) -> float:
        """Average marginal contribution of ``nodes`` to P(label)."""
        others = [node for node in graph.nodes if node not in nodes]
        contributions = []
        for _ in range(self.shapley_samples):
            coalition_size = rng.randint(0, len(others)) if others else 0
            coalition = set(rng.sample(others, coalition_size)) if coalition_size else set()
            with_nodes = coalition | set(nodes)
            prob_with = self.model.predict_proba(induced_subgraph(graph, with_nodes))[label]
            prob_without = (
                self.model.predict_proba(induced_subgraph(graph, coalition))[label]
                if coalition
                else 1.0 / self.model.num_classes
            )
            contributions.append(prob_with - prob_without)
        return float(sum(contributions) / len(contributions)) if contributions else 0.0

    # ------------------------------------------------------------------
    # MCTS over connected subgraphs
    # ------------------------------------------------------------------
    def _children_of(self, graph: Graph, state: _SearchNode) -> list[frozenset[int]]:
        """Connected subsets obtained by removing a single node."""
        children = []
        for node in sorted(state.nodes):
            remaining = set(state.nodes) - {node}
            if not remaining:
                continue
            candidate = induced_subgraph(graph, remaining)
            if candidate.is_connected():
                children.append(frozenset(remaining))
        return children

    def select_nodes(self, graph: Graph, label: int) -> set[int]:
        rng = random.Random(self.seed)
        # Start the search from the largest connected component.
        component = max(graph.connected_components(), key=len)
        root = _SearchNode(frozenset(component))
        index: dict[frozenset[int], _SearchNode] = {root.nodes: root}
        best_nodes: frozenset[int] = root.nodes
        best_score = -math.inf

        for _ in range(self.iterations):
            path = [root]
            current = root
            # Selection / expansion until a small-enough state is reached.
            while len(current.nodes) > self.max_nodes:
                if not current.expanded:
                    for child_nodes in self._children_of(graph, current):
                        child = index.setdefault(child_nodes, _SearchNode(child_nodes))
                        current.children.append(child)
                    current.expanded = True
                if not current.children:
                    break
                total_visits = sum(child.visits for child in current.children) + 1
                current = max(
                    current.children,
                    key=lambda child: child.mean_reward()
                    + self.exploration * math.sqrt(math.log(total_visits + 1) / (child.visits + 1)),
                )
                path.append(current)
            # Evaluation.
            reward = self._shapley_score(graph, current.nodes, label, rng)
            if len(current.nodes) <= self.max_nodes and reward > best_score:
                best_score = reward
                best_nodes = current.nodes
            # Backpropagation.
            for node in path:
                node.visits += 1
                node.total_reward += reward

        if len(best_nodes) > self.max_nodes:
            # The search never reached an admissible size (tiny iteration
            # budgets); fall back to the highest-degree connected core.
            scores = {node: float(graph.degree(node)) for node in best_nodes}
            return self._grow_connected(graph, scores)
        return set(best_nodes)
