"""GCFExplainer baseline (Huang et al., WSDM 2023).

GCFExplainer provides *global counterfactual* explanations: a small set of
representative counterfactual graphs such that every input graph of a class
is close (in edit distance) to some counterfactual that the model labels
differently.  The per-graph ingredient is a counterfactual search — edit the
graph until the prediction flips — and the global ingredient is a greedy
summary that keeps few representative counterfactuals.

On this substrate the edit operation is node removal (which our node-induced
subgraph machinery supports exactly); the nodes removed to flip a graph's
prediction double as that graph's explanation subgraph, which is how this
baseline is scored against the instance-level explainers in the fidelity
benchmarks (the same adaptation the paper applies for a fair comparison).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.base import BaseExplainer
from repro.gnn.models import GNNClassifier
from repro.graphs.graph import Graph
from repro.graphs.subgraph import induced_subgraph, remove_subgraph

__all__ = ["GCFExplainerBaseline", "GlobalCounterfactualSummary"]


@dataclass
class GlobalCounterfactualSummary:
    """A set of representative counterfactual graphs for one class."""

    label: int
    counterfactuals: list[Graph]
    covered_graphs: int
    total_graphs: int

    @property
    def coverage(self) -> float:
        return self.covered_graphs / self.total_graphs if self.total_graphs else 0.0


class GCFExplainerBaseline(BaseExplainer):
    """Counterfactual-search explainer with a global summarisation step."""

    name = "GCFExplainer"

    def __init__(
        self,
        model: GNNClassifier,
        max_nodes: int = 10,
        restarts: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__(model, max_nodes=max_nodes)
        self.restarts = restarts
        self.seed = seed

    # ------------------------------------------------------------------
    # per-graph counterfactual search
    # ------------------------------------------------------------------
    def counterfactual_nodes(self, graph: Graph, label: int) -> set[int]:
        """Smallest node set found whose removal flips the prediction."""
        rng = random.Random(self.seed)
        best: set[int] | None = None
        for restart in range(self.restarts):
            removed: set[int] = set()
            order = list(graph.nodes)
            # Remove high-degree nodes first on the first restart, then use
            # random restarts to escape bad greedy choices.
            if restart == 0:
                order.sort(key=lambda node: (-graph.degree(node), node))
            else:
                rng.shuffle(order)
            for node in order:
                if len(removed) >= self.max_nodes:
                    break
                removed.add(node)
                remaining = set(graph.nodes) - removed
                if not remaining:
                    break
                if self.model.predict(induced_subgraph(graph, remaining)) != label:
                    if best is None or len(removed) < len(best):
                        best = set(removed)
                    break
        if best is None:
            # No flip found within the budget: fall back to the removal set
            # tried on the degree-ordered pass (capped at max_nodes).
            ordered = sorted(graph.nodes, key=lambda node: (-graph.degree(node), node))
            best = set(ordered[: self.max_nodes])
        return best

    def select_nodes(self, graph: Graph, label: int) -> set[int]:
        return self.counterfactual_nodes(graph, label)

    # ------------------------------------------------------------------
    # global summary (the "GCF" part)
    # ------------------------------------------------------------------
    def global_summary(
        self,
        graphs: list[Graph],
        label: int,
        max_counterfactuals: int = 5,
    ) -> GlobalCounterfactualSummary:
        """Greedy selection of representative counterfactual residual graphs.

        Each input graph contributes one candidate counterfactual (its
        residual after the flip-inducing removal).  Candidates are then chosen
        greedily by how many *other* graphs they also serve as counterfactuals
        for, measured by structural-signature equality of the residuals — a
        cheap stand-in for the edit-distance neighbourhoods of the original
        method.
        """
        group = [graph for graph in graphs if self.model.predict(graph) == label]
        candidates: list[tuple[Graph, set[int]]] = []
        for graph in group:
            removed = self.counterfactual_nodes(graph, label)
            residual = remove_subgraph(graph, removed)
            if residual.num_nodes() and self.model.predict(residual) != label:
                signature_matches = {
                    other.graph_id
                    for other in group
                    if remove_subgraph(other, self.counterfactual_nodes(other, label)).structural_signature()
                    == residual.structural_signature()
                }
                candidates.append((residual, signature_matches))
        chosen: list[Graph] = []
        covered: set[int] = set()
        while candidates and len(chosen) < max_counterfactuals:
            residual, matches = max(candidates, key=lambda item: len(item[1] - covered))
            if not matches - covered:
                break
            chosen.append(residual)
            covered |= matches
            candidates = [item for item in candidates if item[0] is not residual]
        return GlobalCounterfactualSummary(
            label=label,
            counterfactuals=chosen,
            covered_graphs=len(covered),
            total_graphs=len(group),
        )
