"""GNNExplainer baseline (Ying et al., NeurIPS 2019).

GNNExplainer learns soft masks that maximise the mutual information between
the masked input and the original prediction.  On this substrate we learn a
*node* mask ``m`` (sigmoid-parameterised), apply it multiplicatively to the
node feature matrix, and minimise

``CE(M(diag(m) X, A), l)  +  size_weight * ||m||_1  +  entropy_weight * H(m)``

by gradient descent, using the classifier's own backward pass to obtain
gradients with respect to the masked features.  The explanation is the
induced subgraph of the ``max_nodes`` highest-mask nodes — the standard way
masks are converted into subgraphs when comparing with subgraph explainers.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseExplainer
from repro.gnn.loss import cross_entropy_grad
from repro.gnn.models import GNNClassifier
from repro.graphs.graph import Graph

__all__ = ["GNNExplainerBaseline"]


def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-values))


class GNNExplainerBaseline(BaseExplainer):
    """Mask-learning explainer (node-mask variant of GNNExplainer)."""

    name = "GNNExplainer"

    def __init__(
        self,
        model: GNNClassifier,
        max_nodes: int = 10,
        epochs: int = 100,
        learning_rate: float = 0.1,
        size_weight: float = 0.05,
        entropy_weight: float = 0.1,
        seed: int = 0,
    ) -> None:
        super().__init__(model, max_nodes=max_nodes)
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.size_weight = size_weight
        self.entropy_weight = entropy_weight
        self.seed = seed

    def node_mask(self, graph: Graph, label: int) -> dict[int, float]:
        """Learn and return the soft node mask (node id -> importance)."""
        features = graph.feature_matrix(self.model.feature_dim)
        adjacency = graph.adjacency_matrix()
        num_nodes = features.shape[0]
        rng = np.random.default_rng(self.seed)
        mask_logits = rng.normal(0.0, 0.1, size=num_nodes)

        for _ in range(self.epochs):
            mask = _sigmoid(mask_logits)
            masked_features = features * mask[:, None]
            logits, cache = self.model.forward_matrices(masked_features, adjacency)
            grad_logits = cross_entropy_grad(logits, label)
            self.model.zero_grads()
            grad_features = self.model.backward(grad_logits, cache)
            if grad_features is None:
                break
            # Chain rule through the multiplicative mask and the sigmoid.
            grad_mask = (grad_features * features).sum(axis=1)
            grad_mask += self.size_weight
            # Entropy regulariser pushes the mask towards {0, 1}.
            grad_mask += self.entropy_weight * (np.log(np.clip(mask, 1e-6, 1 - 1e-6)) - np.log(
                np.clip(1 - mask, 1e-6, 1 - 1e-6)
            )) * -1.0
            grad_logits_sigmoid = mask * (1 - mask)
            mask_logits -= self.learning_rate * grad_mask * grad_logits_sigmoid

        mask = _sigmoid(mask_logits)
        return {node: float(mask[index]) for index, node in enumerate(graph.nodes)}

    def select_nodes(self, graph: Graph, label: int) -> set[int]:
        mask = self.node_mask(graph, label)
        ranked = sorted(mask, key=lambda node: (-mask[node], node))
        return set(ranked[: self.max_nodes])
