"""GStarX baseline (Zhang et al., NeurIPS 2022).

GStarX scores nodes with a structure-aware value from cooperative game
theory (the Hamiache-Navarro value), which — unlike the Shapley value —
restricts coalitions to *connected* subgraphs, so a node's payoff reflects
the structural role it plays.  We approximate the value by Monte Carlo
sampling of connected coalitions grown by random breadth-first expansion and
measuring each node's average marginal contribution to the predicted
probability of the target label.  The explanation is the connected subgraph
grown greedily from the top-scoring nodes.
"""

from __future__ import annotations

import random

from repro.baselines.base import BaseExplainer
from repro.gnn.models import GNNClassifier
from repro.graphs.graph import Graph
from repro.graphs.subgraph import induced_subgraph

__all__ = ["GStarXBaseline"]


class GStarXBaseline(BaseExplainer):
    """Structure-aware cooperative-game node scoring explainer."""

    name = "GStarX"

    def __init__(
        self,
        model: GNNClassifier,
        max_nodes: int = 10,
        coalition_samples: int = 24,
        max_coalition_size: int = 8,
        seed: int = 0,
    ) -> None:
        super().__init__(model, max_nodes=max_nodes)
        self.coalition_samples = coalition_samples
        self.max_coalition_size = max_coalition_size
        self.seed = seed

    def _random_connected_coalition(self, graph: Graph, rng: random.Random) -> set[int]:
        """Grow a random connected node set by breadth-first expansion."""
        start = rng.choice(graph.nodes)
        coalition = {start}
        target_size = rng.randint(1, self.max_coalition_size)
        while len(coalition) < target_size:
            frontier: set[int] = set()
            for node in coalition:
                frontier |= graph.neighbors(node)
            frontier -= coalition
            if not frontier:
                break
            coalition.add(rng.choice(sorted(frontier)))
        return coalition

    def node_scores(self, graph: Graph, label: int) -> dict[int, float]:
        """Monte Carlo structure-aware contribution score per node."""
        rng = random.Random(self.seed)
        totals = {node: 0.0 for node in graph.nodes}
        counts = {node: 0 for node in graph.nodes}
        baseline = 1.0 / self.model.num_classes
        for _ in range(self.coalition_samples):
            coalition = self._random_connected_coalition(graph, rng)
            prob_with = self.model.predict_proba(induced_subgraph(graph, coalition))[label]
            for node in coalition:
                without = coalition - {node}
                if without:
                    prob_without = self.model.predict_proba(induced_subgraph(graph, without))[label]
                else:
                    prob_without = baseline
                totals[node] += prob_with - prob_without
                counts[node] += 1
        return {
            node: (totals[node] / counts[node]) if counts[node] else 0.0 for node in graph.nodes
        }

    def select_nodes(self, graph: Graph, label: int) -> set[int]:
        scores = self.node_scores(graph, label)
        return self._grow_connected(graph, scores)
