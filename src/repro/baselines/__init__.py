"""Competitor explainers (Table 1 of the paper) and GVEX adapters.

The explainer classes are no longer re-exported from this package — the
deprecation window closed in this release.  Every baseline is obtained
through the registry (``repro.api.create_explainer("gnnexplainer")`` …),
which wraps them in the uniform :class:`~repro.api.types.Explainer`
surface; code that genuinely needs the raw classes imports them from the
concrete modules (``repro.baselines.gnnexplainer`` …).

Importing this package still registers every baseline with the default
registry (the ``BaseExplainer.__init_subclass__`` hook fires on module
import), so ``create_explainer`` keeps working unchanged.
"""

# The submodule imports stay eager for their registry-registration side
# effect; the class names themselves are intentionally not re-exported.
from repro.baselines import base as _base  # noqa: F401
from repro.baselines import gcfexplainer as _gcfexplainer  # noqa: F401
from repro.baselines import gnnexplainer as _gnnexplainer  # noqa: F401
from repro.baselines import gstarx as _gstarx  # noqa: F401
from repro.baselines import gvex_adapter as _gvex_adapter  # noqa: F401
from repro.baselines import random_explainer as _random_explainer  # noqa: F401
from repro.baselines import subgraphx as _subgraphx  # noqa: F401

__all__ = ["CAPABILITY_MATRIX"]


# Capability matrix reproduced from Table 1 of the paper, used by the
# table-1 benchmark and the documentation.
CAPABILITY_MATRIX: dict[str, dict[str, bool]] = {
    "SubgraphX": {
        "learning": False, "model_agnostic": True, "label_specific": False,
        "size_bound": False, "coverage": False, "configurable": False, "queryable": False,
    },
    "GNNExplainer": {
        "learning": True, "model_agnostic": True, "label_specific": False,
        "size_bound": False, "coverage": False, "configurable": False, "queryable": False,
    },
    "PGExplainer": {
        "learning": True, "model_agnostic": False, "label_specific": False,
        "size_bound": False, "coverage": False, "configurable": False, "queryable": False,
    },
    "GStarX": {
        "learning": False, "model_agnostic": True, "label_specific": False,
        "size_bound": False, "coverage": False, "configurable": False, "queryable": False,
    },
    "GCFExplainer": {
        "learning": False, "model_agnostic": True, "label_specific": True,
        "size_bound": False, "coverage": True, "configurable": False, "queryable": False,
    },
    "GVEX": {
        "learning": False, "model_agnostic": True, "label_specific": True,
        "size_bound": True, "coverage": True, "configurable": True, "queryable": True,
    },
}
