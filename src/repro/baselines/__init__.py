"""Competitor explainers (Table 1 of the paper) and GVEX adapters."""

from repro.baselines.base import BaseExplainer
from repro.baselines.gcfexplainer import GCFExplainerBaseline, GlobalCounterfactualSummary
from repro.baselines.gnnexplainer import GNNExplainerBaseline
from repro.baselines.gstarx import GStarXBaseline
from repro.baselines.gvex_adapter import ApproxGVEXAdapter, StreamGVEXAdapter
from repro.baselines.random_explainer import RandomExplainer
from repro.baselines.subgraphx import SubgraphXBaseline

__all__ = [
    "BaseExplainer",
    "GNNExplainerBaseline",
    "SubgraphXBaseline",
    "GStarXBaseline",
    "GCFExplainerBaseline",
    "GlobalCounterfactualSummary",
    "RandomExplainer",
    "ApproxGVEXAdapter",
    "StreamGVEXAdapter",
]

# Capability matrix reproduced from Table 1 of the paper, used by the
# table-1 benchmark and the documentation.
CAPABILITY_MATRIX: dict[str, dict[str, bool]] = {
    "SubgraphX": {
        "learning": False, "model_agnostic": True, "label_specific": False,
        "size_bound": False, "coverage": False, "configurable": False, "queryable": False,
    },
    "GNNExplainer": {
        "learning": True, "model_agnostic": True, "label_specific": False,
        "size_bound": False, "coverage": False, "configurable": False, "queryable": False,
    },
    "PGExplainer": {
        "learning": True, "model_agnostic": False, "label_specific": False,
        "size_bound": False, "coverage": False, "configurable": False, "queryable": False,
    },
    "GStarX": {
        "learning": False, "model_agnostic": True, "label_specific": False,
        "size_bound": False, "coverage": False, "configurable": False, "queryable": False,
    },
    "GCFExplainer": {
        "learning": False, "model_agnostic": True, "label_specific": True,
        "size_bound": False, "coverage": True, "configurable": False, "queryable": False,
    },
    "GVEX": {
        "learning": False, "model_agnostic": True, "label_specific": True,
        "size_bound": True, "coverage": True, "configurable": True, "queryable": True,
    },
}
