"""Competitor explainers (Table 1 of the paper) and GVEX adapters.

Importing the explainer classes from this package is deprecated — each
access emits :class:`DeprecationWarning`.  New code obtains every baseline
through the registry (``repro.api.create_explainer("gnnexplainer")`` …),
which wraps them in the uniform :class:`~repro.api.types.Explainer`
surface; code that genuinely needs the raw classes imports them from the
concrete modules (``repro.baselines.gnnexplainer`` …), which stay silent.

Importing this package still registers every baseline with the default
registry (the ``BaseExplainer.__init_subclass__`` hook fires on module
import), so ``create_explainer`` keeps working unchanged.
"""

# The underscore aliases keep the submodule imports (and with them the
# registry-registration side effect) eager while leaving the public class
# names to the deprecating __getattr__ below.
from repro.baselines.base import BaseExplainer as _BaseExplainer
from repro.baselines.gcfexplainer import (
    GCFExplainerBaseline as _GCFExplainerBaseline,
    GlobalCounterfactualSummary as _GlobalCounterfactualSummary,
)
from repro.baselines.gnnexplainer import GNNExplainerBaseline as _GNNExplainerBaseline
from repro.baselines.gstarx import GStarXBaseline as _GStarXBaseline
from repro.baselines.gvex_adapter import (
    ApproxGVEXAdapter as _ApproxGVEXAdapter,
    StreamGVEXAdapter as _StreamGVEXAdapter,
)
from repro.baselines.random_explainer import RandomExplainer as _RandomExplainer
from repro.baselines.subgraphx import SubgraphXBaseline as _SubgraphXBaseline

__all__ = [
    "BaseExplainer",
    "GNNExplainerBaseline",
    "SubgraphXBaseline",
    "GStarXBaseline",
    "GCFExplainerBaseline",
    "GlobalCounterfactualSummary",
    "RandomExplainer",
    "ApproxGVEXAdapter",
    "StreamGVEXAdapter",
]

_DEPRECATED: dict[str, tuple[object, str]] = {
    "BaseExplainer": (_BaseExplainer, "repro.baselines.base"),
    "GNNExplainerBaseline": (_GNNExplainerBaseline, "repro.baselines.gnnexplainer"),
    "SubgraphXBaseline": (_SubgraphXBaseline, "repro.baselines.subgraphx"),
    "GStarXBaseline": (_GStarXBaseline, "repro.baselines.gstarx"),
    "GCFExplainerBaseline": (_GCFExplainerBaseline, "repro.baselines.gcfexplainer"),
    "GlobalCounterfactualSummary": (_GlobalCounterfactualSummary, "repro.baselines.gcfexplainer"),
    "RandomExplainer": (_RandomExplainer, "repro.baselines.random_explainer"),
    "ApproxGVEXAdapter": (_ApproxGVEXAdapter, "repro.baselines.gvex_adapter"),
    "StreamGVEXAdapter": (_StreamGVEXAdapter, "repro.baselines.gvex_adapter"),
}


def __getattr__(name: str) -> object:
    try:
        obj, module = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import warnings

    warnings.warn(
        f"repro.baselines.{name} is deprecated; use repro.api.create_explainer(...) "
        f"(or, for the raw class, import it from {module})",
        DeprecationWarning,
        stacklevel=2,
    )
    return obj


# Capability matrix reproduced from Table 1 of the paper, used by the
# table-1 benchmark and the documentation.
CAPABILITY_MATRIX: dict[str, dict[str, bool]] = {
    "SubgraphX": {
        "learning": False, "model_agnostic": True, "label_specific": False,
        "size_bound": False, "coverage": False, "configurable": False, "queryable": False,
    },
    "GNNExplainer": {
        "learning": True, "model_agnostic": True, "label_specific": False,
        "size_bound": False, "coverage": False, "configurable": False, "queryable": False,
    },
    "PGExplainer": {
        "learning": True, "model_agnostic": False, "label_specific": False,
        "size_bound": False, "coverage": False, "configurable": False, "queryable": False,
    },
    "GStarX": {
        "learning": False, "model_agnostic": True, "label_specific": False,
        "size_bound": False, "coverage": False, "configurable": False, "queryable": False,
    },
    "GCFExplainer": {
        "learning": False, "model_agnostic": True, "label_specific": True,
        "size_bound": False, "coverage": True, "configurable": False, "queryable": False,
    },
    "GVEX": {
        "learning": False, "model_agnostic": True, "label_specific": True,
        "size_bound": True, "coverage": True, "configurable": True, "queryable": True,
    },
}
