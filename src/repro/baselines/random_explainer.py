"""Random explainer: the sanity-check lower bound for all comparisons."""

from __future__ import annotations

import random

from repro.baselines.base import BaseExplainer
from repro.gnn.models import GNNClassifier
from repro.graphs.graph import Graph

__all__ = ["RandomExplainer"]


class RandomExplainer(BaseExplainer):
    """Selects a random connected node set of at most ``max_nodes`` nodes."""

    name = "Random"

    def __init__(self, model: GNNClassifier, max_nodes: int = 10, seed: int = 0) -> None:
        super().__init__(model, max_nodes=max_nodes)
        self.seed = seed

    def select_nodes(self, graph: Graph, label: int) -> set[int]:
        rng = random.Random((self.seed, graph.graph_id).__hash__())
        start = rng.choice(graph.nodes)
        selected = {start}
        while len(selected) < self.max_nodes:
            frontier: set[int] = set()
            for node in selected:
                frontier |= graph.neighbors(node)
            frontier -= selected
            if not frontier:
                break
            selected.add(rng.choice(sorted(frontier)))
        return selected
