"""Common interface for instance-level explainer baselines.

Every explainer — GVEX and the four competitors from the paper's Table 1 —
produces, for a single input graph, a node set whose induced subgraph is the
explanation.  Wrapping the result as an
:class:`~repro.core.explanation.ExplanationSubgraph` lets one metric and
benchmark pipeline score all methods uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.core.explanation import ExplanationSubgraph
from repro.core.verification import EVerify
from repro.exceptions import ExplanationError
from repro.gnn.models import GNNClassifier
from repro.graphs.graph import Graph

__all__ = ["BaseExplainer"]


class BaseExplainer(ABC):
    """Abstract instance-level explainer.

    Parameters
    ----------
    model:
        The fixed GNN classifier being explained.
    max_nodes:
        Upper bound on the number of nodes the explanation may contain
        (corresponds to GVEX's ``u_l`` so comparisons are size-matched).
    """

    name = "base"

    def __init_subclass__(cls, **kwargs) -> None:
        """Auto-register every concrete subclass in the unified API registry.

        This is what keeps the legacy ``repro.baselines`` surface and the
        new ``repro.api`` surface in lockstep: defining (or importing) a
        ``BaseExplainer`` subclass makes it reachable as
        ``create_explainer(cls.name.lower())`` with no extra wiring —
        including user-defined explainers outside this package.
        """
        super().__init_subclass__(**kwargs)
        # ``__abstractmethods__`` is not populated yet at this point, so ask
        # the method itself whether it is still the abstract stub.
        select = getattr(cls, "select_nodes", None)
        if select is not None and not getattr(select, "__isabstractmethod__", False):
            from repro.api.registry import DEFAULT_REGISTRY

            DEFAULT_REGISTRY.register_instance_class(cls)

    def __init__(self, model: GNNClassifier, max_nodes: int = 10) -> None:
        if max_nodes < 1:
            raise ExplanationError(
                f"max_nodes must be at least 1, got {max_nodes}; it bounds the "
                "explanation's node count (GVEX's upper coverage bound u_l)"
            )
        self.model = model
        self.max_nodes = max_nodes
        self.everify = EVerify(model)

    # ------------------------------------------------------------------
    # the contract subclasses implement
    # ------------------------------------------------------------------
    @abstractmethod
    def select_nodes(self, graph: Graph, label: int) -> set[int]:
        """Return the explanation node set for one graph and its label."""

    # ------------------------------------------------------------------
    # shared driver
    # ------------------------------------------------------------------
    def explain_instance(self, graph: Graph) -> ExplanationSubgraph:
        """Explain one graph using its model-assigned label."""
        if graph.num_nodes() == 0:
            raise ExplanationError("cannot explain an empty graph")
        label = self.model.predict(graph)
        nodes = self.select_nodes(graph, label)
        nodes = self._clamp(graph, nodes)
        subgraph = ExplanationSubgraph(source_graph=graph, nodes=nodes, label=label)
        return self.everify.annotate(subgraph)

    def explain_many(self, graphs: Sequence[Graph]) -> list[ExplanationSubgraph]:
        """Explain several graphs (skipping empty ones)."""
        return [self.explain_instance(graph) for graph in graphs if graph.num_nodes() > 0]

    # ------------------------------------------------------------------
    # helpers available to subclasses
    # ------------------------------------------------------------------
    def _clamp(self, graph: Graph, nodes: set[int]) -> set[int]:
        """Guarantee a non-empty node set of at most ``max_nodes`` nodes."""
        nodes = {node for node in nodes if graph.has_node(node)}
        if not nodes:
            nodes = {max(graph.nodes, key=graph.degree)}
        if len(nodes) > self.max_nodes:
            # Keep the highest-degree nodes to stay structurally meaningful.
            nodes = set(sorted(nodes, key=lambda node: (-graph.degree(node), node))[: self.max_nodes])
        return nodes

    def _grow_connected(self, graph: Graph, scores: dict[int, float]) -> set[int]:
        """Greedy connected expansion by descending score (shared utility).

        Starts from the best-scoring node and repeatedly adds the
        best-scoring node adjacent to the current selection, which keeps the
        explanation connected — competitors such as SubgraphX and GStarX
        return connected subgraphs.
        """
        if not scores:
            return set()
        selected = {max(scores, key=lambda node: (scores[node], -node))}
        while len(selected) < self.max_nodes:
            frontier: set[int] = set()
            for node in selected:
                frontier |= graph.neighbors(node)
            frontier -= selected
            if not frontier:
                break
            best = max(frontier, key=lambda node: (scores.get(node, 0.0), -node))
            selected.add(best)
        return selected
