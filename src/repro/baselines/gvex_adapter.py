"""Adapters that expose ApproxGVEX / StreamGVEX through the baseline interface.

The comparison experiments score every method through the same
``explain_instance`` contract; these thin wrappers plug the two GVEX
algorithms into that pipeline with a size budget matching the competitors'
``max_nodes``.
"""

from __future__ import annotations

from repro.baselines.base import BaseExplainer
from repro.core.approx import ApproxGVEX
from repro.core.config import Configuration
from repro.core.streaming import StreamGVEX
from repro.gnn.models import GNNClassifier
from repro.graphs.graph import Graph

__all__ = ["ApproxGVEXAdapter", "StreamGVEXAdapter"]


class ApproxGVEXAdapter(BaseExplainer):
    """ApproxGVEX behind the instance-level explainer interface."""

    name = "ApproxGVEX"

    def __init__(
        self,
        model: GNNClassifier,
        max_nodes: int = 10,
        config: Configuration | None = None,
    ) -> None:
        super().__init__(model, max_nodes=max_nodes)
        base = config or Configuration()
        self.config = base.with_default_bound(base.default_bound.lower, max_nodes)
        self._explainer = ApproxGVEX(model, self.config)

    def select_nodes(self, graph: Graph, label: int) -> set[int]:
        explanation = self._explainer.explain_graph(graph, label)
        if explanation is None:
            explanation = self._explainer.explain_instance(graph)
        return set(explanation.nodes)


class StreamGVEXAdapter(BaseExplainer):
    """StreamGVEX behind the instance-level explainer interface."""

    name = "StreamGVEX"

    def __init__(
        self,
        model: GNNClassifier,
        max_nodes: int = 10,
        config: Configuration | None = None,
        batch_size: int = 8,
        seed: int = 0,
    ) -> None:
        super().__init__(model, max_nodes=max_nodes)
        base = config or Configuration()
        self.config = base.with_default_bound(base.default_bound.lower, max_nodes)
        self._explainer = StreamGVEX(model, self.config, batch_size=batch_size, seed=seed)

    def select_nodes(self, graph: Graph, label: int) -> set[int]:
        explanation, _, _ = self._explainer.explain_graph(graph, label)
        if explanation is None:
            explanation = self._explainer.explain_instance(graph)
        return set(explanation.nodes)
