"""GVEX reproduction: view-based explanations for graph neural networks.

The package is organised as

* :mod:`repro.graphs` — attributed graphs, patterns, databases, generators;
* :mod:`repro.gnn` — a from-scratch NumPy GNN substrate (the classifier ``M``);
* :mod:`repro.datasets` — synthetic stand-ins for the paper's benchmarks;
* :mod:`repro.matching` / :mod:`repro.mining` — PMatch / PGen primitive operators;
* :mod:`repro.core` — the GVEX explainers (ApproxGVEX, StreamGVEX) and view API;
* :mod:`repro.baselines` — GNNExplainer, SubgraphX, GStarX, GCFExplainer;
* :mod:`repro.metrics` — fidelity, sparsity, compression, edge loss;
* :mod:`repro.api` — **the public service layer**: explainer registry,
  serializable views, result cache, query facade, HTTP endpoint;
* :mod:`repro.experiments` — runners that regenerate the paper's tables and figures.

Quick start (service API)::

    from repro import ExplanationService

    service = ExplanationService("MUT", epochs=30)
    result = service.explain(algorithm="approx", label=1, max_nodes=8)
    service.query().witness(result.view.subgraphs[0].source_graph.graph_id)

The direct algorithm constructors are no longer re-exported from here (the
deprecation window closed in this release) — the registry is the supported
route, and code that genuinely needs the raw classes imports them from
their concrete modules::

    from repro.api import create_explainer          # supported
    from repro.core.approx import ApproxGVEX        # raw class, if needed
    from repro.core.streaming import StreamGVEX
    from repro.core.views import ViewQueryEngine
"""

from repro.api import (
    ExplainRequest,
    ExplanationResult,
    ExplanationService,
    available_explainers as available_explainer_names,
    create_explainer,
    load_artifact,
    save_artifact,
)
from repro.core import (
    Configuration,
    CoverageBound,
    ExplanationSubgraph,
    ExplanationView,
    ExplanationViewSet,
    GraphAnalysis,
    ViewMaintainer,
    parallel_explain,
    verify_view,
)
from repro.datasets import available_datasets, load_dataset
from repro.gnn import GNNClassifier, Trainer
from repro.graphs import DatabaseDelta, Graph, GraphDatabase, GraphPattern

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Graph",
    "GraphPattern",
    "GraphDatabase",
    "GNNClassifier",
    "Trainer",
    "load_dataset",
    "available_datasets",
    "Configuration",
    "CoverageBound",
    "GraphAnalysis",
    "ExplanationSubgraph",
    "ExplanationView",
    "ExplanationViewSet",
    "ViewMaintainer",
    "DatabaseDelta",
    "parallel_explain",
    "verify_view",
    "ExplanationService",
    "ExplainRequest",
    "ExplanationResult",
    "create_explainer",
    "available_explainer_names",
    "save_artifact",
    "load_artifact",
]
