"""GVEX reproduction: view-based explanations for graph neural networks.

The package is organised as

* :mod:`repro.graphs` — attributed graphs, patterns, databases, generators;
* :mod:`repro.gnn` — a from-scratch NumPy GNN substrate (the classifier ``M``);
* :mod:`repro.datasets` — synthetic stand-ins for the paper's benchmarks;
* :mod:`repro.matching` / :mod:`repro.mining` — PMatch / PGen primitive operators;
* :mod:`repro.core` — the GVEX explainers (ApproxGVEX, StreamGVEX) and view API;
* :mod:`repro.baselines` — GNNExplainer, SubgraphX, GStarX, GCFExplainer;
* :mod:`repro.metrics` — fidelity, sparsity, compression, edge loss;
* :mod:`repro.api` — **the public service layer**: explainer registry,
  serializable views, result cache, query facade, HTTP endpoint;
* :mod:`repro.experiments` — runners that regenerate the paper's tables and figures.

Quick start (service API)::

    from repro import ExplanationService

    service = ExplanationService("MUT", epochs=30)
    result = service.explain(algorithm="approx", label=1, max_nodes=8)
    service.query().witness(result.view.subgraphs[0].source_graph.graph_id)

The direct algorithm constructors remain available as a deprecated path
(importing them from here emits :class:`DeprecationWarning`; the registry —
``create_explainer("approx")`` — is the supported route)::

    from repro import load_dataset, GNNClassifier, Trainer, ApproxGVEX, Configuration

    database = load_dataset("MUT", num_graphs=40)
    model = GNNClassifier(feature_dim=14, num_classes=2)
    Trainer(model, epochs=30).fit(database)
    views = ApproxGVEX(model, Configuration()).explain(database)
"""

from repro.api import (
    ExplainRequest,
    ExplanationResult,
    ExplanationService,
    available_explainers as available_explainer_names,
    create_explainer,
    load_artifact,
    save_artifact,
)
from repro.core import (
    Configuration,
    CoverageBound,
    ExplanationSubgraph,
    ExplanationView,
    ExplanationViewSet,
    GraphAnalysis,
    ViewMaintainer,
    parallel_explain,
    verify_view,
)
from repro.datasets import available_datasets, load_dataset
from repro.gnn import GNNClassifier, Trainer
from repro.graphs import DatabaseDelta, Graph, GraphDatabase, GraphPattern

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Graph",
    "GraphPattern",
    "GraphDatabase",
    "GNNClassifier",
    "Trainer",
    "load_dataset",
    "available_datasets",
    "Configuration",
    "CoverageBound",
    "GraphAnalysis",
    "ExplanationSubgraph",
    "ExplanationView",
    "ExplanationViewSet",
    "ApproxGVEX",
    "StreamGVEX",
    "ViewMaintainer",
    "DatabaseDelta",
    "parallel_explain",
    "verify_view",
    "ViewQueryEngine",
    "ExplanationService",
    "ExplainRequest",
    "ExplanationResult",
    "create_explainer",
    "available_explainer_names",
    "save_artifact",
    "load_artifact",
]

# Deprecated top-level re-exports (PR 3's two-PR window has elapsed):
# importable, but each access warns.  The concrete modules stay silent —
# internal code and tests import from there.
_DEPRECATED: dict[str, tuple[str, str]] = {
    "ApproxGVEX": ("repro.core.approx", 'create_explainer("approx")'),
    "StreamGVEX": ("repro.core.streaming", 'create_explainer("stream")'),
    "ViewQueryEngine": ("repro.core.views", "ExplanationService.query()"),
}


def __getattr__(name: str) -> object:
    try:
        module, replacement = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    import warnings

    warnings.warn(
        f"repro.{name} is deprecated; use {replacement} "
        f"(or, for the raw class, import it from {module})",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module), name)
