"""From-scratch NumPy GNN substrate: layers, models, training, influence analysis."""

from repro.gnn.influence import (
    influence_matrix,
    jacobian_l1_matrix,
    normalized_influence_matrix,
)
from repro.gnn.layers import DenseLayer, GCNLayer, GINLayer, SAGELayer
from repro.gnn.loss import accuracy, cross_entropy, cross_entropy_grad
from repro.gnn.models import GNNClassifier
from repro.gnn.optim import Adam, SGD
from repro.gnn.pooling import MaxPooling, MeanPooling, SumPooling, make_pooling
from repro.gnn.training import Trainer, TrainResult, train_test_split

__all__ = [
    "GCNLayer",
    "GINLayer",
    "SAGELayer",
    "DenseLayer",
    "MaxPooling",
    "MeanPooling",
    "SumPooling",
    "make_pooling",
    "GNNClassifier",
    "Adam",
    "SGD",
    "Trainer",
    "TrainResult",
    "train_test_split",
    "accuracy",
    "cross_entropy",
    "cross_entropy_grad",
    "influence_matrix",
    "normalized_influence_matrix",
    "jacobian_l1_matrix",
]
