"""Classification loss functions."""

from __future__ import annotations

import numpy as np

from repro.gnn.tensor_ops import log_softmax, softmax

__all__ = ["cross_entropy", "cross_entropy_grad", "accuracy"]


def cross_entropy(logits: np.ndarray, label: int) -> float:
    """Negative log-likelihood of ``label`` under ``softmax(logits)``."""
    log_probs = log_softmax(np.asarray(logits, dtype=float))
    return float(-log_probs[label])


def cross_entropy_grad(logits: np.ndarray, label: int) -> np.ndarray:
    """Gradient of :func:`cross_entropy` with respect to the logits."""
    probs = softmax(np.asarray(logits, dtype=float))
    grad = probs.copy()
    grad[label] -= 1.0
    return grad


def accuracy(predictions: np.ndarray | list[int], labels: np.ndarray | list[int]) -> float:
    """Fraction of matching entries between two label sequences."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if predictions.size == 0:
        return 0.0
    return float(np.mean(predictions == labels))
