"""Gradient-based optimisers for the GNN substrate.

The paper trains its GCN classifier with Adam (learning rate 0.001); SGD with
momentum is included for ablations and tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Adam", "SGD"]


class Adam:
    """Adam optimiser (Kingma & Ba, 2015) over a list of layers."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step = 0
        self._first_moment: dict[tuple[int, str], np.ndarray] = {}
        self._second_moment: dict[tuple[int, str], np.ndarray] = {}

    def step(self, layers: list) -> None:
        """Apply one update using the gradients accumulated in each layer."""
        self._step += 1
        for layer_index, layer in enumerate(layers):
            for name, param in layer.params.items():
                key = (layer_index, name)
                grad = layer.grads[name]
                if key not in self._first_moment:
                    self._first_moment[key] = np.zeros_like(param)
                    self._second_moment[key] = np.zeros_like(param)
                m = self._first_moment[key]
                v = self._second_moment[key]
                m[:] = self.beta1 * m + (1 - self.beta1) * grad
                v[:] = self.beta2 * v + (1 - self.beta2) * grad**2
                m_hat = m / (1 - self.beta1**self._step)
                v_hat = v / (1 - self.beta2**self._step)
                param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    def step(self, layers: list) -> None:
        """Apply one update using the gradients accumulated in each layer."""
        for layer_index, layer in enumerate(layers):
            for name, param in layer.params.items():
                key = (layer_index, name)
                grad = layer.grads[name]
                if key not in self._velocity:
                    self._velocity[key] = np.zeros_like(param)
                velocity = self._velocity[key]
                velocity[:] = self.momentum * velocity - self.learning_rate * grad
                param += velocity
