"""GNN-based graph classifier ``M``.

This is the "fixed GNN" of the paper: a message-passing network (GCN by
default, matching the experimental setup of three convolution layers, an
embedding dimension of 128 — configurable — a max-pooling readout and a fully
connected head).  The explainers only interact with it through
``predict`` / ``predict_proba`` / ``node_embeddings``, which keeps GVEX
model-agnostic exactly as the paper requires.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.gnn.layers import DenseLayer, GCNLayer, GINLayer, SAGELayer
from repro.gnn.pooling import make_pooling
from repro.gnn.tensor_ops import normalize_adjacency, softmax
from repro.graphs.graph import Graph

__all__ = ["GNNClassifier"]

_CONV_TYPES = ("gcn", "gin", "sage")


class GNNClassifier:
    """A k-layer message-passing graph classifier.

    Parameters
    ----------
    feature_dim:
        Dimensionality of the input node features.
    num_classes:
        Number of class labels |L|.
    hidden_dim:
        Embedding dimension of every convolution layer.
    num_layers:
        Number of message-passing layers ``k``.
    conv:
        One of ``gcn``, ``gin`` or ``sage``.
    pooling:
        One of ``max`` (paper default), ``mean`` or ``sum``.
    seed:
        Seed for weight initialisation, making training deterministic.
    """

    def __init__(
        self,
        feature_dim: int,
        num_classes: int,
        hidden_dim: int = 32,
        num_layers: int = 3,
        conv: str = "gcn",
        pooling: str = "max",
        seed: int = 0,
    ) -> None:
        if feature_dim <= 0:
            raise ModelError("feature_dim must be positive")
        if num_classes < 2:
            raise ModelError("a classifier needs at least two classes")
        if num_layers < 1:
            raise ModelError("num_layers must be at least 1")
        if conv not in _CONV_TYPES:
            raise ModelError(f"unknown conv '{conv}'; choose from {_CONV_TYPES}")
        self.feature_dim = feature_dim
        self.num_classes = num_classes
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.conv = conv
        self.pooling_name = pooling
        self.seed = seed
        self.is_trained = False

        rng = np.random.default_rng(seed)
        self.conv_layers: list[Any] = []
        in_dim = feature_dim
        for _ in range(num_layers):
            if conv == "gcn":
                layer: Any = GCNLayer(in_dim, hidden_dim, rng)
            elif conv == "gin":
                layer = GINLayer(in_dim, hidden_dim, rng)
            else:
                layer = SAGELayer(in_dim, hidden_dim, rng)
            self.conv_layers.append(layer)
            in_dim = hidden_dim
        self.pooling = make_pooling(pooling)
        self.head = DenseLayer(hidden_dim, num_classes, rng)

    # ------------------------------------------------------------------
    # forward passes
    # ------------------------------------------------------------------
    def all_layers(self) -> list[Any]:
        """All trainable layers (used by the optimisers)."""
        return [*self.conv_layers, self.head]

    def zero_grads(self) -> None:
        for layer in self.all_layers():
            layer.zero_grads()

    def _propagation_matrix(self, graph: Graph) -> np.ndarray:
        adjacency = graph.adjacency_matrix()
        if self.conv == "gcn":
            return normalize_adjacency(adjacency)
        return adjacency

    def forward(self, graph: Graph) -> tuple[np.ndarray, dict]:
        """Full forward pass returning class logits and a backprop cache."""
        if graph.num_nodes() == 0:
            pooled = np.zeros(self.hidden_dim)
            logits, head_cache = self.head.forward(pooled)
            return logits, {"empty": True, "head_cache": head_cache}
        features = graph.feature_matrix(self.feature_dim)
        propagation = self._propagation_matrix(graph)
        hidden = features
        conv_caches = []
        layer_outputs = []
        for layer in self.conv_layers:
            hidden, cache = layer.forward(hidden, propagation)
            conv_caches.append(cache)
            layer_outputs.append(hidden)
        pooled, pool_cache = self.pooling.forward(hidden)
        logits, head_cache = self.head.forward(pooled)
        cache = {
            "empty": False,
            "conv_caches": conv_caches,
            "pool_cache": pool_cache,
            "head_cache": head_cache,
            "layer_outputs": layer_outputs,
            "features": features,
        }
        return logits, cache

    def backward(self, grad_logits: np.ndarray, cache: dict) -> np.ndarray | None:
        """Backpropagate a gradient on the logits through the whole network.

        Returns the gradient with respect to the input node features (used by
        gradient-based explainers such as GNNExplainer), or ``None`` for the
        empty-graph short-circuit.
        """
        grad = self.head.backward(grad_logits, cache["head_cache"])
        if cache.get("empty"):
            return None
        grad = self.pooling.backward(grad, cache["pool_cache"])
        for layer, layer_cache in zip(reversed(self.conv_layers), reversed(cache["conv_caches"])):
            grad = layer.backward(grad, layer_cache)
        return grad

    def forward_matrices(self, features: np.ndarray, adjacency: np.ndarray) -> tuple[np.ndarray, dict]:
        """Forward pass on raw (features, adjacency) matrices.

        Used by mask-learning explainers that perturb the input matrices
        directly instead of materialising a new :class:`Graph`.
        """
        if features.shape[0] == 0:
            pooled = np.zeros(self.hidden_dim)
            logits, head_cache = self.head.forward(pooled)
            return logits, {"empty": True, "head_cache": head_cache}
        if self.conv == "gcn":
            propagation = normalize_adjacency(adjacency)
        else:
            propagation = adjacency
        hidden = features
        conv_caches = []
        layer_outputs = []
        for layer in self.conv_layers:
            hidden, layer_cache = layer.forward(hidden, propagation)
            conv_caches.append(layer_cache)
            layer_outputs.append(hidden)
        pooled, pool_cache = self.pooling.forward(hidden)
        logits, head_cache = self.head.forward(pooled)
        cache = {
            "empty": False,
            "conv_caches": conv_caches,
            "pool_cache": pool_cache,
            "head_cache": head_cache,
            "layer_outputs": layer_outputs,
            "features": features,
        }
        return logits, cache

    # ------------------------------------------------------------------
    # inference API used by the explainers
    # ------------------------------------------------------------------
    def predict_logits(self, graph: Graph) -> np.ndarray:
        """Class logits for a graph (no gradient bookkeeping)."""
        logits, _ = self.forward(graph)
        return logits

    def predict_proba(self, graph: Graph) -> np.ndarray:
        """Class probabilities ``softmax(logits)``."""
        return softmax(self.predict_logits(graph))

    def predict(self, graph: Graph) -> int:
        """The class label ``M(G)`` assigned to a graph."""
        return int(np.argmax(self.predict_logits(graph)))

    def predict_many(self, graphs: Sequence[Graph]) -> list[int]:
        """Labels for a sequence of graphs."""
        return [self.predict(graph) for graph in graphs]

    def node_embeddings(self, graph: Graph) -> np.ndarray:
        """Last-layer node representations ``X^k`` (rows follow node order).

        These are the only model internals GVEX reads, and they come from the
        output of the final message-passing layer — i.e. the same values a
        black-box deployment would expose for downstream pooling.
        """
        if graph.num_nodes() == 0:
            return np.zeros((0, self.hidden_dim))
        _, cache = self.forward(graph)
        return cache["layer_outputs"][-1]

    def propagation_matrix(self, graph: Graph) -> np.ndarray:
        """The message-passing operator used for this graph (public for analysis)."""
        return self._propagation_matrix(graph)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def get_weights(self) -> list[dict[str, np.ndarray]]:
        """Copy of all parameters, layer by layer."""
        return [{name: value.copy() for name, value in layer.params.items()} for layer in self.all_layers()]

    def set_weights(self, weights: list[dict[str, np.ndarray]]) -> None:
        """Restore parameters previously captured by :meth:`get_weights`."""
        layers = self.all_layers()
        if len(weights) != len(layers):
            raise ModelError(
                f"expected weights for {len(layers)} layers, got {len(weights)}"
            )
        for layer, layer_weights in zip(layers, weights):
            for name, value in layer_weights.items():
                if name not in layer.params:
                    raise ModelError(f"unexpected parameter '{name}'")
                if layer.params[name].shape != value.shape:
                    raise ModelError(
                        f"shape mismatch for '{name}': "
                        f"{layer.params[name].shape} vs {value.shape}"
                    )
                layer.params[name] = value.copy()

    def parameter_count(self) -> int:
        """Total number of trainable scalars."""
        return sum(layer.parameter_count() for layer in self.all_layers())

    def require_trained(self) -> None:
        """Raise :class:`NotFittedError` unless the model was trained."""
        if not self.is_trained:
            raise NotFittedError("the classifier has not been trained yet")
