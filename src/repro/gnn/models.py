"""GNN-based graph classifier ``M``.

This is the "fixed GNN" of the paper: a message-passing network (GCN by
default, matching the experimental setup of three convolution layers, an
embedding dimension of 128 — configurable — a max-pooling readout and a fully
connected head).  The explainers only interact with it through
``predict`` / ``predict_proba`` / ``node_embeddings``, which keeps GVEX
model-agnostic exactly as the paper requires.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.gnn.layers import DenseLayer, GCNLayer, GINLayer, SAGELayer
from repro.gnn.pooling import make_pooling
from repro.gnn.tensor_ops import normalize_adjacency, softmax
from repro.graphs.graph import Graph
from repro.graphs.sparse import BatchedGraphView, sparse_enabled

__all__ = ["GNNClassifier"]

_CONV_TYPES = ("gcn", "gin", "sage")

# Node-subset inference switches from dense submatrix aggregation to
# scipy-CSR aggregation above this subset size: message passing then costs
# O(|E| * d) per layer instead of O(k^2 * d), which is what keeps large
# residual-graph (counterfactual) probes cheap.
_SPARSE_FORWARD_MIN_NODES = 64

# Block-diagonal batched inference pays a constant assembly cost (stacked
# features + batched CSR); below this many total node rows the sequential
# per-graph/per-subset forwards win, so batching only engages above it.
_BATCH_MIN_ROWS = 128


class GNNClassifier:
    """A k-layer message-passing graph classifier.

    Parameters
    ----------
    feature_dim:
        Dimensionality of the input node features.
    num_classes:
        Number of class labels |L|.
    hidden_dim:
        Embedding dimension of every convolution layer.
    num_layers:
        Number of message-passing layers ``k``.
    conv:
        One of ``gcn``, ``gin`` or ``sage``.
    pooling:
        One of ``max`` (paper default), ``mean`` or ``sum``.
    seed:
        Seed for weight initialisation, making training deterministic.
    """

    def __init__(
        self,
        feature_dim: int,
        num_classes: int,
        hidden_dim: int = 32,
        num_layers: int = 3,
        conv: str = "gcn",
        pooling: str = "max",
        seed: int = 0,
    ) -> None:
        if feature_dim <= 0:
            raise ModelError("feature_dim must be positive")
        if num_classes < 2:
            raise ModelError("a classifier needs at least two classes")
        if num_layers < 1:
            raise ModelError("num_layers must be at least 1")
        if conv not in _CONV_TYPES:
            raise ModelError(f"unknown conv '{conv}'; choose from {_CONV_TYPES}")
        self.feature_dim = feature_dim
        self.num_classes = num_classes
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.conv = conv
        self.pooling_name = pooling
        self.seed = seed
        self.is_trained = False

        rng = np.random.default_rng(seed)
        self.conv_layers: list[Any] = []
        in_dim = feature_dim
        for _ in range(num_layers):
            if conv == "gcn":
                layer: Any = GCNLayer(in_dim, hidden_dim, rng)
            elif conv == "gin":
                layer = GINLayer(in_dim, hidden_dim, rng)
            else:
                layer = SAGELayer(in_dim, hidden_dim, rng)
            self.conv_layers.append(layer)
            in_dim = hidden_dim
        self.pooling = make_pooling(pooling)
        self.head = DenseLayer(hidden_dim, num_classes, rng)

    # ------------------------------------------------------------------
    # forward passes
    # ------------------------------------------------------------------
    def all_layers(self) -> list[Any]:
        """All trainable layers (used by the optimisers)."""
        return [*self.conv_layers, self.head]

    def zero_grads(self) -> None:
        for layer in self.all_layers():
            layer.zero_grads()

    def _propagation_matrix(self, graph: Graph) -> np.ndarray:
        if sparse_enabled():
            # Reuse the view's cached operator when a snapshot exists —
            # repeated forward passes over the same graph then skip the
            # normalisation — but do not build a snapshot just for one
            # forward (perturbation baselines predict on throwaway graphs).
            view = graph.sparse_view_if_cached()
            if view is not None:
                return view.propagation(self.conv)
        adjacency = graph.adjacency_matrix()
        if self.conv == "gcn":
            return normalize_adjacency(adjacency)
        return adjacency

    def forward(self, graph: Graph) -> tuple[np.ndarray, dict]:
        """Full forward pass returning class logits and a backprop cache."""
        if graph.num_nodes() == 0:
            pooled = np.zeros(self.hidden_dim)
            logits, head_cache = self.head.forward(pooled)
            return logits, {"empty": True, "head_cache": head_cache}
        view = graph.sparse_view_if_cached() if sparse_enabled() else None
        if view is not None:
            # Read-only borrow of the cached matrix; the layers never write
            # to their inputs, so the per-forward copy can be skipped.
            features = view.feature_matrix(self.feature_dim)
        else:
            features = graph.feature_matrix(self.feature_dim)
        propagation = self._propagation_matrix(graph)
        hidden = features
        conv_caches = []
        layer_outputs = []
        for layer in self.conv_layers:
            hidden, cache = layer.forward(hidden, propagation)
            conv_caches.append(cache)
            layer_outputs.append(hidden)
        pooled, pool_cache = self.pooling.forward(hidden)
        logits, head_cache = self.head.forward(pooled)
        cache = {
            "empty": False,
            "conv_caches": conv_caches,
            "pool_cache": pool_cache,
            "head_cache": head_cache,
            "layer_outputs": layer_outputs,
            "features": features,
        }
        return logits, cache

    def backward(self, grad_logits: np.ndarray, cache: dict) -> np.ndarray | None:
        """Backpropagate a gradient on the logits through the whole network.

        Returns the gradient with respect to the input node features (used by
        gradient-based explainers such as GNNExplainer), or ``None`` for the
        empty-graph short-circuit.
        """
        grad = self.head.backward(grad_logits, cache["head_cache"])
        if cache.get("empty"):
            return None
        grad = self.pooling.backward(grad, cache["pool_cache"])
        for layer, layer_cache in zip(reversed(self.conv_layers), reversed(cache["conv_caches"])):
            grad = layer.backward(grad, layer_cache)
        return grad

    def forward_matrices(self, features: np.ndarray, adjacency: np.ndarray) -> tuple[np.ndarray, dict]:
        """Forward pass on raw (features, adjacency) matrices.

        Used by mask-learning explainers that perturb the input matrices
        directly instead of materialising a new :class:`Graph`.
        """
        if features.shape[0] == 0:
            pooled = np.zeros(self.hidden_dim)
            logits, head_cache = self.head.forward(pooled)
            return logits, {"empty": True, "head_cache": head_cache}
        if self.conv == "gcn":
            propagation = normalize_adjacency(adjacency)
        else:
            propagation = adjacency
        hidden = features
        conv_caches = []
        layer_outputs = []
        for layer in self.conv_layers:
            hidden, layer_cache = layer.forward(hidden, propagation)
            conv_caches.append(layer_cache)
            layer_outputs.append(hidden)
        pooled, pool_cache = self.pooling.forward(hidden)
        logits, head_cache = self.head.forward(pooled)
        cache = {
            "empty": False,
            "conv_caches": conv_caches,
            "pool_cache": pool_cache,
            "head_cache": head_cache,
            "layer_outputs": layer_outputs,
            "features": features,
        }
        return logits, cache

    # ------------------------------------------------------------------
    # inference API used by the explainers
    # ------------------------------------------------------------------
    def predict_logits(self, graph: Graph) -> np.ndarray:
        """Class logits for a graph (no gradient bookkeeping)."""
        logits, _ = self.forward(graph)
        return logits

    def predict_proba(self, graph: Graph) -> np.ndarray:
        """Class probabilities ``softmax(logits)``."""
        return softmax(self.predict_logits(graph))

    def predict(self, graph: Graph) -> int:
        """The class label ``M(G)`` assigned to a graph."""
        return int(np.argmax(self.predict_logits(graph)))

    def predict_many(self, graphs: Sequence[Graph]) -> list[int]:
        """Labels for a sequence of graphs."""
        return [self.predict(graph) for graph in graphs]

    # ------------------------------------------------------------------
    # database-level batched inference
    # ------------------------------------------------------------------
    def _batched_logits(self, batch: BatchedGraphView) -> np.ndarray | None:
        """One message-passing pass over a block-diagonal batch.

        Returns one logits row per block, or ``None`` when the batched
        operator is unavailable (no scipy) so callers can fall back to
        per-graph inference.
        """
        if batch.total_rows == 0:
            pooled = np.zeros((len(batch.blocks), self.hidden_dim))
            return pooled @ self.head.params["weight"] + self.head.params["bias"]
        hidden = batch.feature_matrix(self.feature_dim)
        for layer in self.conv_layers:
            if isinstance(layer, GCNLayer):
                aggregated = batch.propagate("gcn", hidden)
                if aggregated is None:
                    return None
                pre = aggregated @ layer.params["weight"]
            elif isinstance(layer, GINLayer):
                aggregated = batch.propagate("gin", hidden)
                if aggregated is None:
                    return None
                pre = ((1.0 + layer.epsilon) * hidden + aggregated) @ layer.params["weight"]
            else:  # SAGELayer
                neighbours = batch.propagate("sage", hidden)
                if neighbours is None:
                    return None
                pre = (
                    hidden @ layer.params["weight_self"]
                    + neighbours @ layer.params["weight_neigh"]
                )
            hidden = np.maximum(pre, 0.0) if layer.activation else pre
        pooled = batch.segment_pool(hidden, self.pooling_name)
        return pooled @ self.head.params["weight"] + self.head.params["bias"]

    def _batch_of(self, graphs: Sequence[Graph]) -> BatchedGraphView:
        batched_view = getattr(graphs, "batched_view", None)
        if batched_view is not None:  # GraphDatabase: reuse its memoised batch
            return batched_view()
        return BatchedGraphView.from_graphs(graphs)

    def batch_logits(self, graphs: Sequence[Graph]) -> np.ndarray:
        """Class logits for a whole graph list from one batched forward pass.

        Stacks every graph into one block-diagonal CSR operator
        (``GraphDatabase.batched_view`` / ``BatchedGraphView``) so the label
        group pays one pass over the layers instead of one forward per graph.
        Falls back to sequential inference when the sparse backend is off or
        scipy is unavailable.
        """
        graph_list = list(graphs)
        if (
            sparse_enabled()
            and len(graph_list) > 1
            and sum(graph.num_nodes() for graph in graph_list) >= _BATCH_MIN_ROWS
        ):
            logits = self._batched_logits(self._batch_of(graphs))
            if logits is not None:
                return logits
        if not graph_list:
            return np.zeros((0, self.num_classes))
        return np.stack([self.predict_logits(graph) for graph in graph_list])

    def predict_batch(self, graphs: Sequence[Graph]) -> list[int]:
        """Labels ``M(G)`` for a whole graph list (one batched pass)."""
        logits = self.batch_logits(graphs)
        return [int(label) for label in logits.argmax(axis=1)]

    def predict_proba_batch(self, graphs: Sequence[Graph]) -> np.ndarray:
        """Class probabilities for a whole graph list (one batched pass)."""
        return softmax(self.batch_logits(graphs), axis=-1)

    def _subset_logits(self, graph: Graph, nodes: Iterable[int]) -> np.ndarray:
        """Logits of ``G[nodes]`` straight from the cached view.

        A lean inference-only pass: no backprop caches, minimal temporaries,
        in-place GCN normalisation.  Every operation mirrors the reference
        ``forward_matrices`` pipeline in the same order, so the logits are
        bit-identical to predicting on a materialised induced subgraph.
        """
        view = graph.sparse_view()
        index = view.index
        # The set comprehension deduplicates, matching induced_subgraph's
        # set-of-nodes semantics when callers pass an id twice.
        rows = np.array(sorted({index[node] for node in nodes}), dtype=np.intp)
        if rows.size == 0:
            logits, _ = self.head.forward(np.zeros(self.hidden_dim))
            return logits
        hidden = view.feature_matrix(self.feature_dim)[rows]
        if rows.size > _SPARSE_FORWARD_MIN_NODES and self.conv in ("gcn", "gin"):
            sparse_logits = self._subset_logits_scipy(view, rows, hidden)
            if sparse_logits is not None:
                return sparse_logits
        if self.conv == "gcn":
            # D^-1/2 (A+I) D^-1/2 on the fresh submatrix, in place; the
            # self loops guarantee every degree is at least one.
            propagation = view.dense_adjacency_self_loops()[rows[:, None], rows]
            inv_sqrt = propagation.sum(axis=1) ** -0.5
            propagation *= inv_sqrt[:, None]
            propagation *= inv_sqrt
        else:
            propagation = view.sub_adjacency(rows)
        for layer in self.conv_layers:
            if isinstance(layer, GCNLayer):
                pre = (propagation @ hidden) @ layer.params["weight"]
            elif isinstance(layer, GINLayer):
                aggregated = (1.0 + layer.epsilon) * hidden + propagation @ hidden
                pre = aggregated @ layer.params["weight"]
            else:
                hidden, _ = layer.forward(hidden, propagation)
                continue
            hidden = np.maximum(pre, 0.0) if layer.activation else pre
        if self.pooling_name == "max":
            pooled = hidden.max(axis=0)
        elif self.pooling_name == "mean":
            pooled = hidden.mean(axis=0)
        else:
            pooled, _ = self.pooling.forward(hidden)
        return pooled @ self.head.params["weight"] + self.head.params["bias"]

    def _subset_logits_scipy(self, view, rows: np.ndarray, hidden: np.ndarray) -> np.ndarray | None:
        """CSR message passing for large node subsets (or ``None`` sans scipy)."""
        adjacency = view.scipy_adjacency()
        if adjacency is None:
            return None
        from scipy import sparse as scipy_sparse

        operator = adjacency[rows][:, rows]
        if self.conv == "gcn":
            operator = operator + scipy_sparse.identity(rows.size, format="csr")
            inv_sqrt = np.asarray(operator.sum(axis=1)).ravel() ** -0.5
            scaling = scipy_sparse.diags(inv_sqrt)
            operator = scaling @ operator @ scaling
        for layer in self.conv_layers:
            if isinstance(layer, GCNLayer):
                pre = (operator @ hidden) @ layer.params["weight"]
            else:  # GINLayer (guarded by the caller)
                aggregated = (1.0 + layer.epsilon) * hidden + operator @ hidden
                pre = aggregated @ layer.params["weight"]
            hidden = np.maximum(pre, 0.0) if layer.activation else pre
        if self.pooling_name == "max":
            pooled = hidden.max(axis=0)
        elif self.pooling_name == "mean":
            pooled = hidden.mean(axis=0)
        else:
            pooled, _ = self.pooling.forward(hidden)
        return pooled @ self.head.params["weight"] + self.head.params["bias"]

    def predict_node_subset(self, graph: Graph, nodes: Iterable[int]) -> int:
        """Label of the node-induced subgraph ``G[nodes]`` without building it.

        Equivalent to ``predict(induced_subgraph(graph, nodes))`` but sliced
        directly out of the graph's cached feature/adjacency matrices — the
        vectorized ``EVerify`` hot path.  Falls back to materialising the
        subgraph when the sparse backend is disabled.
        """
        if not sparse_enabled():
            from repro.graphs.subgraph import induced_subgraph

            return self.predict(induced_subgraph(graph, nodes))
        return int(self._subset_logits(graph, nodes).argmax())

    def predict_proba_nodes(self, graph: Graph, nodes: Iterable[int]) -> np.ndarray:
        """Class probabilities of ``G[nodes]``, sliced from the cached view."""
        if not sparse_enabled():
            from repro.graphs.subgraph import induced_subgraph

            return self.predict_proba(induced_subgraph(graph, nodes))
        return softmax(self._subset_logits(graph, nodes))

    def subsets_logits(self, graph: Graph, node_sets: Sequence[Iterable[int]]) -> np.ndarray:
        """Logits of many node-induced subgraphs of *one* graph, batched.

        All subsets are sliced out of the graph's cached CSR view, stacked
        into one block-diagonal operator, and classified in a single
        message-passing pass — the ``EVerify`` batch-probe hot path.  Falls
        back to sequential subset inference when scipy or the sparse backend
        is unavailable.
        """
        if (
            sparse_enabled()
            and len(node_sets) > 1
            and sum(len(nodes) for nodes in node_sets) >= _BATCH_MIN_ROWS
        ):
            view = graph.sparse_view()
            index = view.index
            rows_list = [
                np.fromiter(sorted({index[node] for node in nodes}), dtype=np.int64)
                for nodes in node_sets
            ]
            logits = self._batched_logits(BatchedGraphView.from_subsets(view, rows_list))
            if logits is not None:
                return logits
        if not node_sets:
            return np.zeros((0, self.num_classes))
        if sparse_enabled():
            return np.stack([self._subset_logits(graph, nodes) for nodes in node_sets])
        from repro.graphs.subgraph import induced_subgraph

        return np.stack(
            [self.predict_logits(induced_subgraph(graph, nodes)) for nodes in node_sets]
        )

    def predict_subsets(self, graph: Graph, node_sets: Sequence[Iterable[int]]) -> list[int]:
        """Labels of many node-induced subgraphs of one graph (one pass)."""
        logits = self.subsets_logits(graph, node_sets)
        return [int(label) for label in logits.argmax(axis=1)]

    def predict_proba_subsets(self, graph: Graph, node_sets: Sequence[Iterable[int]]) -> np.ndarray:
        """Class probabilities of many node-induced subgraphs (one pass)."""
        return softmax(self.subsets_logits(graph, node_sets), axis=-1)

    def node_embeddings(self, graph: Graph) -> np.ndarray:
        """Last-layer node representations ``X^k`` (rows follow node order).

        These are the only model internals GVEX reads, and they come from the
        output of the final message-passing layer — i.e. the same values a
        black-box deployment would expose for downstream pooling.
        """
        if graph.num_nodes() == 0:
            return np.zeros((0, self.hidden_dim))
        _, cache = self.forward(graph)
        return cache["layer_outputs"][-1]

    def propagation_matrix(self, graph: Graph) -> np.ndarray:
        """The message-passing operator used for this graph (public for analysis)."""
        return self._propagation_matrix(graph)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def get_weights(self) -> list[dict[str, np.ndarray]]:
        """Copy of all parameters, layer by layer."""
        return [{name: value.copy() for name, value in layer.params.items()} for layer in self.all_layers()]

    def set_weights(self, weights: list[dict[str, np.ndarray]]) -> None:
        """Restore parameters previously captured by :meth:`get_weights`."""
        layers = self.all_layers()
        if len(weights) != len(layers):
            raise ModelError(
                f"expected weights for {len(layers)} layers, got {len(weights)}"
            )
        for layer, layer_weights in zip(layers, weights):
            for name, value in layer_weights.items():
                if name not in layer.params:
                    raise ModelError(f"unexpected parameter '{name}'")
                if layer.params[name].shape != value.shape:
                    raise ModelError(
                        f"shape mismatch for '{name}': "
                        f"{layer.params[name].shape} vs {value.shape}"
                    )
                layer.params[name] = value.copy()

    def parameter_count(self) -> int:
        """Total number of trainable scalars."""
        return sum(layer.parameter_count() for layer in self.all_layers())

    def require_trained(self) -> None:
        """Raise :class:`NotFittedError` unless the model was trained."""
        if not self.is_trained:
            raise NotFittedError("the classifier has not been trained yet")
