"""Training loop and evaluation for the GNN classifier.

The paper trains a 3-layer GCN with Adam (lr 0.001) on an 80/10/10 split and
generates explanations for the test set.  :class:`Trainer` reproduces that
protocol on our substrate (with configurable epochs so tests stay fast).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DatasetError
from repro.gnn.loss import accuracy, cross_entropy, cross_entropy_grad
from repro.gnn.models import GNNClassifier
from repro.gnn.optim import Adam
from repro.graphs.database import GraphDatabase

__all__ = ["TrainResult", "Trainer", "train_test_split"]


def train_test_split(
    database: GraphDatabase,
    train_fraction: float = 0.8,
    validation_fraction: float = 0.1,
    seed: int = 0,
) -> tuple[list[int], list[int], list[int]]:
    """Shuffle graph indices into train/validation/test index lists."""
    if not 0.0 < train_fraction < 1.0:
        raise DatasetError("train_fraction must be in (0, 1)")
    if validation_fraction < 0.0 or train_fraction + validation_fraction >= 1.0:
        raise DatasetError("train_fraction + validation_fraction must be < 1")
    indices = list(range(len(database)))
    random.Random(seed).shuffle(indices)
    train_end = int(round(train_fraction * len(indices)))
    validation_end = train_end + int(round(validation_fraction * len(indices)))
    return indices[:train_end], indices[train_end:validation_end], indices[validation_end:]


@dataclass
class TrainResult:
    """Summary of a training run."""

    epochs: int
    train_accuracy: float
    validation_accuracy: float
    test_accuracy: float
    losses: list[float] = field(default_factory=list)


class Trainer:
    """Trains a :class:`GNNClassifier` on a labelled :class:`GraphDatabase`."""

    def __init__(
        self,
        model: GNNClassifier,
        learning_rate: float = 0.001,
        epochs: int = 100,
        batch_size: int = 16,
        seed: int = 0,
    ) -> None:
        if epochs < 1:
            raise ValueError("epochs must be at least 1")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.model = model
        self.optimizer = Adam(learning_rate=learning_rate)
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed

    def _check_labels(self, database: GraphDatabase, indices: list[int]) -> None:
        for index in indices:
            label = database.label_of(index)
            if label is None:
                raise DatasetError(f"graph {index} has no ground-truth label")
            if not 0 <= label < self.model.num_classes:
                raise DatasetError(
                    f"label {label} of graph {index} is outside [0, {self.model.num_classes})"
                )

    def fit(
        self,
        database: GraphDatabase,
        train_indices: list[int] | None = None,
        validation_indices: list[int] | None = None,
        test_indices: list[int] | None = None,
    ) -> TrainResult:
        """Train the model; returns accuracies on all three splits."""
        if train_indices is None:
            train_indices, validation_indices, test_indices = train_test_split(
                database, seed=self.seed
            )
        validation_indices = validation_indices or []
        test_indices = test_indices or []
        self._check_labels(database, train_indices)
        rng = random.Random(self.seed)
        losses: list[float] = []
        for _ in range(self.epochs):
            order = list(train_indices)
            rng.shuffle(order)
            epoch_loss = 0.0
            for start in range(0, len(order), self.batch_size):
                batch = order[start : start + self.batch_size]
                self.model.zero_grads()
                for index in batch:
                    graph = database[index]
                    label = database.label_of(index)
                    logits, cache = self.model.forward(graph)
                    epoch_loss += cross_entropy(logits, label)
                    grad_logits = cross_entropy_grad(logits, label) / len(batch)
                    self.model.backward(grad_logits, cache)
                self.optimizer.step(self.model.all_layers())
            losses.append(epoch_loss / max(1, len(order)))
        self.model.is_trained = True
        return TrainResult(
            epochs=self.epochs,
            train_accuracy=self.evaluate(database, train_indices),
            validation_accuracy=self.evaluate(database, validation_indices),
            test_accuracy=self.evaluate(database, test_indices),
            losses=losses,
        )

    def evaluate(self, database: GraphDatabase, indices: list[int]) -> float:
        """Accuracy of the current model on the given graph indices."""
        if not indices:
            return 0.0
        predictions = [self.model.predict(database[index]) for index in indices]
        labels = [database.label_of(index) for index in indices]
        return accuracy(np.asarray(predictions), np.asarray(labels))
