"""Small numerical helpers shared by the GNN layers.

Everything here operates on plain ``numpy`` arrays.  The functions pair each
forward operation with the derivative needed for manual backpropagation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relu",
    "relu_grad",
    "softmax",
    "log_softmax",
    "normalize_adjacency",
    "xavier_init",
    "stable_norm",
]


def relu(x: np.ndarray) -> np.ndarray:
    """Element-wise rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(pre_activation: np.ndarray) -> np.ndarray:
    """Derivative of :func:`relu` with respect to its input."""
    return (pre_activation > 0.0).astype(float)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def normalize_adjacency(adjacency: np.ndarray, add_self_loops: bool = True) -> np.ndarray:
    """Symmetric GCN normalisation ``D^-1/2 (A + I) D^-1/2`` (paper Eq. 1)."""
    matrix = np.asarray(adjacency, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    if add_self_loops:
        matrix = matrix + np.eye(matrix.shape[0])
    degrees = matrix.sum(axis=1)
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = degrees[nonzero] ** -0.5
    # Row/column scaling by a diagonal matrix is an elementwise product
    # d_i * m_ij * d_j; broadcasting computes it in O(n^2) instead of two
    # O(n^3) matrix products, with bit-identical results.
    return inv_sqrt[:, None] * matrix * inv_sqrt[None, :]


def xavier_init(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform weight initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def stable_norm(vector: np.ndarray, order: int = 1) -> float:
    """Vector norm that tolerates empty inputs (returns 0.0)."""
    array = np.asarray(vector, dtype=float)
    if array.size == 0:
        return 0.0
    return float(np.linalg.norm(array.ravel(), ord=order))
