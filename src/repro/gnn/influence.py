"""Feature influence analysis (paper Eqs. 3-4).

The influence of node ``u`` on node ``v`` after ``k`` layers of message
passing is the L1 norm of the expected Jacobian ``E[dX^k_v / dX^0_u]``.  Two
estimators are provided:

``propagation`` (default)
    Following Xu et al. (2018), for ReLU message-passing networks the
    expected Jacobian is proportional to the ``k``-step propagation weight
    ``(S^k)_{vu}`` where ``S`` is the model's message-passing operator.  This
    is what the paper's "random walk-based message passing process" refers to
    and costs one dense matrix power.

``exact``
    Computes the true Jacobian of the trained network with the ReLU gates
    fixed by a forward pass (a local linearisation), by propagating a
    ``(n*d0)``-column identity perturbation through the layers.  Quadratic in
    graph size — intended for small graphs and for validating the fast
    estimator in tests.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.gnn.models import GNNClassifier
from repro.gnn.tensor_ops import relu_grad
from repro.graphs.graph import Graph
from repro.graphs.sparse import sparse_enabled

__all__ = [
    "influence_matrix",
    "normalized_influence_matrix",
    "jacobian_l1_matrix",
    "AUTO_EXACT_NODE_LIMIT",
]

# ``auto`` influence switches from the exact Jacobian to the propagation
# estimator above this node count (the exact computation is cubic in |V|).
AUTO_EXACT_NODE_LIMIT = 120


def _propagation_influence(model: GNNClassifier, graph: Graph) -> np.ndarray:
    """Fast estimator: I1[v, u] proportional to (S^k)_{vu}."""
    propagation = model.propagation_matrix(graph)
    power = np.linalg.matrix_power(propagation, model.num_layers)
    # Scale by the product of layer weight norms so the magnitude tracks the
    # trained model rather than only the topology.
    scale = 1.0
    for layer in model.conv_layers:
        weight = layer.params.get("weight")
        if weight is None:
            weight = layer.params.get("weight_neigh")
        scale *= max(np.abs(weight).sum(axis=0).max(), 1e-12)
    return np.abs(power) * scale


def _layer_operator(layer, cache: dict, num_nodes: int) -> np.ndarray:
    if "propagation" in cache:
        return cache["propagation"]
    return cache["adjacency"] + (1.0 + getattr(layer, "epsilon", 0.0)) * np.eye(num_nodes)


def _jacobian_l1_reference(model: GNNClassifier, graph: Graph) -> np.ndarray:
    """Reference einsum implementation (kept for the legacy backend A/B)."""
    features = graph.feature_matrix(model.feature_dim)
    propagation = model.propagation_matrix(graph)
    num_nodes, feature_dim = features.shape

    # jac[v, i, u, j] = d hidden[v, i] / d features[u, j]
    jac = np.zeros((num_nodes, feature_dim, num_nodes, feature_dim))
    for u in range(num_nodes):
        jac[u, :, u, :] = np.eye(feature_dim)

    hidden = features
    for layer in model.conv_layers:
        hidden, cache = layer.forward(hidden, propagation)
        weight = layer.params.get("weight")
        if weight is None:
            raise ModelError("exact influence is only implemented for GCN/GIN layers")
        operator = _layer_operator(layer, cache, num_nodes)
        # pre[v, i] = sum_w operator[v, w] sum_m hidden_prev[w, m] weight[m, i]
        jac = np.einsum("vw,wmuj,mi->viuj", operator, jac, weight, optimize=True)
        if layer.activation:
            gates = relu_grad(cache["pre_activation"])
            jac = jac * gates[:, :, None, None]

    return np.abs(jac).sum(axis=(1, 3))


def _jacobian_l1_batched(model: GNNClassifier, graph: Graph) -> np.ndarray:
    """Batched-GEMM form of the same recurrence (the vectorized hot path).

    The Jacobian tensor is kept flattened as ``jac[w, m, u*d0 + j]`` so each
    layer costs exactly two matrix products — one batched contraction over the
    input channels ``m`` and one propagation pass over the neighbours ``w`` —
    instead of a freshly path-optimised ``einsum`` per layer.
    """
    view = graph.sparse_view()
    features = view.feature_matrix(model.feature_dim)
    propagation = model.propagation_matrix(graph)
    num_nodes, feature_dim = features.shape
    flat = num_nodes * feature_dim

    # jac[v, u*d0 + j, i] = d hidden[v, i] / d features[u, j].  Keeping the
    # channel axis *last* makes both per-layer contractions single large
    # GEMMs over contiguous memory (no batched small-matrix dispatch).
    jac = np.zeros((num_nodes, flat, feature_dim))
    eye = np.eye(feature_dim)
    for u in range(num_nodes):
        jac[u, u * feature_dim : (u + 1) * feature_dim, :] = eye

    hidden = features
    for layer in model.conv_layers:
        hidden, cache = layer.forward(hidden, propagation)
        weight = layer.params.get("weight")
        if weight is None:
            raise ModelError("exact influence is only implemented for GCN/GIN layers")
        operator = _layer_operator(layer, cache, num_nodes)
        in_dim, out_dim = weight.shape
        # contracted[w, uj, i] = sum_m jac[w, uj, m] weight[m, i]
        contracted = jac.reshape(num_nodes * flat, in_dim) @ weight
        # jac'[v, uj, i] = sum_w operator[v, w] contracted[w, uj, i]
        jac = (operator @ contracted.reshape(num_nodes, flat * out_dim)).reshape(
            num_nodes, flat, out_dim
        )
        if layer.activation:
            gates = relu_grad(cache["pre_activation"])
            jac = jac * gates[:, None, :]

    return (
        np.abs(jac)
        .reshape(num_nodes, num_nodes, feature_dim * jac.shape[2])
        .sum(axis=2)
    )


def jacobian_l1_matrix(model: GNNClassifier, graph: Graph) -> np.ndarray:
    """Exact (gate-linearised) pairwise L1 Jacobian norms ``I1[v, u]``."""
    if graph.num_nodes() == 0:
        return np.zeros((0, 0))
    if sparse_enabled():
        return _jacobian_l1_batched(model, graph)
    return _jacobian_l1_reference(model, graph)


def influence_matrix(model: GNNClassifier, graph: Graph, method: str = "auto") -> np.ndarray:
    """Pairwise influence ``I1[v, u]`` (Eq. 3) using the chosen estimator.

    ``auto`` uses the exact (gate-linearised) Jacobian for graphs up to
    :data:`AUTO_EXACT_NODE_LIMIT` nodes and falls back to the fast
    propagation estimator above that.
    """
    if method == "auto":
        method = "exact" if graph.num_nodes() <= AUTO_EXACT_NODE_LIMIT else "propagation"
    if method == "propagation":
        return _propagation_influence(model, graph)
    if method == "exact":
        return jacobian_l1_matrix(model, graph)
    raise ModelError(f"unknown influence method '{method}'")


def normalized_influence_matrix(
    model: GNNClassifier, graph: Graph, method: str = "auto"
) -> np.ndarray:
    """Normalised influence ``I2[u, v]`` (Eq. 4).

    ``I2[u, v] = I1(v, u) / sum_w I1(v, w)``: the share of node v's
    sensitivity that is attributable to node u.  Rows index the *source* node
    ``u`` and columns the *target* node ``v`` to match the paper's notation
    ``I2(u, v)``.
    """
    raw = influence_matrix(model, graph, method=method)
    if raw.size == 0:
        return raw
    column_totals = raw.sum(axis=1, keepdims=True)
    column_totals[column_totals == 0] = 1.0
    normalised_by_target = raw / column_totals
    return normalised_by_target.T
