"""Graph-level readout (pooling) layers.

The paper's classifier uses max pooling over node embeddings before the fully
connected head; mean and sum pooling are provided for completeness and for the
ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError

__all__ = ["MaxPooling", "MeanPooling", "SumPooling", "make_pooling"]


class MaxPooling:
    """Element-wise max over node embeddings."""

    name = "max"

    def forward(self, node_embeddings: np.ndarray) -> tuple[np.ndarray, dict]:
        if node_embeddings.size == 0:
            raise ModelError("cannot pool an empty embedding matrix")
        argmax = node_embeddings.argmax(axis=0)
        pooled = node_embeddings.max(axis=0)
        return pooled, {"argmax": argmax, "shape": node_embeddings.shape}

    def backward(self, grad_pooled: np.ndarray, cache: dict) -> np.ndarray:
        grad = np.zeros(cache["shape"])
        grad[cache["argmax"], np.arange(cache["shape"][1])] = grad_pooled
        return grad


class MeanPooling:
    """Average over node embeddings."""

    name = "mean"

    def forward(self, node_embeddings: np.ndarray) -> tuple[np.ndarray, dict]:
        if node_embeddings.size == 0:
            raise ModelError("cannot pool an empty embedding matrix")
        pooled = node_embeddings.mean(axis=0)
        return pooled, {"shape": node_embeddings.shape}

    def backward(self, grad_pooled: np.ndarray, cache: dict) -> np.ndarray:
        num_nodes = cache["shape"][0]
        return np.tile(grad_pooled / num_nodes, (num_nodes, 1))


class SumPooling:
    """Sum over node embeddings."""

    name = "sum"

    def forward(self, node_embeddings: np.ndarray) -> tuple[np.ndarray, dict]:
        if node_embeddings.size == 0:
            raise ModelError("cannot pool an empty embedding matrix")
        pooled = node_embeddings.sum(axis=0)
        return pooled, {"shape": node_embeddings.shape}

    def backward(self, grad_pooled: np.ndarray, cache: dict) -> np.ndarray:
        num_nodes = cache["shape"][0]
        return np.tile(grad_pooled, (num_nodes, 1))


_POOLING = {"max": MaxPooling, "mean": MeanPooling, "sum": SumPooling}


def make_pooling(name: str) -> MaxPooling | MeanPooling | SumPooling:
    """Look up a pooling layer by name (``max``, ``mean`` or ``sum``)."""
    try:
        return _POOLING[name]()
    except KeyError as exc:
        raise ModelError(f"unknown pooling '{name}'; choose from {sorted(_POOLING)}") from exc
