"""Message-passing and dense layers with manual backpropagation.

Each layer exposes ``forward`` and ``backward``:

* ``forward(inputs, ...)`` returns the layer output and a cache of the
  intermediate values needed by the backward pass;
* ``backward(grad_output, cache)`` returns the gradient with respect to the
  layer input and stores parameter gradients in ``self.grads``.

Only what the paper's experiments need is implemented — GCN (Eq. 1), GIN and
GraphSAGE variants, plus a dense head — but the structure mirrors a standard
deep learning library so additional layers slot in naturally.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.gnn.tensor_ops import relu, relu_grad, xavier_init

__all__ = ["GCNLayer", "GINLayer", "SAGELayer", "DenseLayer"]


class _Layer:
    """Shared parameter/gradient bookkeeping."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def zero_grads(self) -> None:
        for name, value in self.params.items():
            self.grads[name] = np.zeros_like(value)

    def parameter_count(self) -> int:
        return int(sum(value.size for value in self.params.values()))


class GCNLayer(_Layer):
    """Graph convolution ``X' = act(S X W)`` with ``S = D^-1/2 (A+I) D^-1/2``."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        activation: bool = True,
    ) -> None:
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ModelError("layer dimensions must be positive")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.params["weight"] = xavier_init(rng, in_dim, out_dim)
        self.zero_grads()

    def forward(self, features: np.ndarray, propagation: np.ndarray) -> tuple[np.ndarray, dict]:
        aggregated = propagation @ features
        pre_activation = aggregated @ self.params["weight"]
        output = relu(pre_activation) if self.activation else pre_activation
        cache = {
            "aggregated": aggregated,
            "pre_activation": pre_activation,
            "propagation": propagation,
        }
        return output, cache

    def backward(self, grad_output: np.ndarray, cache: dict) -> np.ndarray:
        grad_pre = grad_output
        if self.activation:
            grad_pre = grad_output * relu_grad(cache["pre_activation"])
        self.grads["weight"] += cache["aggregated"].T @ grad_pre
        grad_aggregated = grad_pre @ self.params["weight"].T
        return cache["propagation"].T @ grad_aggregated


class GINLayer(_Layer):
    """Graph isomorphism layer ``X' = act(((1+eps) X + A X) W)``."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        epsilon: float = 0.0,
        activation: bool = True,
    ) -> None:
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ModelError("layer dimensions must be positive")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.epsilon = float(epsilon)
        self.activation = activation
        self.params["weight"] = xavier_init(rng, in_dim, out_dim)
        self.zero_grads()

    def forward(self, features: np.ndarray, adjacency: np.ndarray) -> tuple[np.ndarray, dict]:
        aggregated = (1.0 + self.epsilon) * features + adjacency @ features
        pre_activation = aggregated @ self.params["weight"]
        output = relu(pre_activation) if self.activation else pre_activation
        cache = {
            "aggregated": aggregated,
            "pre_activation": pre_activation,
            "adjacency": adjacency,
        }
        return output, cache

    def backward(self, grad_output: np.ndarray, cache: dict) -> np.ndarray:
        grad_pre = grad_output
        if self.activation:
            grad_pre = grad_output * relu_grad(cache["pre_activation"])
        self.grads["weight"] += cache["aggregated"].T @ grad_pre
        grad_aggregated = grad_pre @ self.params["weight"].T
        return (1.0 + self.epsilon) * grad_aggregated + cache["adjacency"].T @ grad_aggregated


class SAGELayer(_Layer):
    """GraphSAGE (mean aggregator): ``X' = act(X Ws + mean_N(X) Wn)``."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        activation: bool = True,
    ) -> None:
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ModelError("layer dimensions must be positive")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.params["weight_self"] = xavier_init(rng, in_dim, out_dim)
        self.params["weight_neigh"] = xavier_init(rng, in_dim, out_dim)
        self.zero_grads()

    @staticmethod
    def _row_normalize(adjacency: np.ndarray) -> np.ndarray:
        degrees = adjacency.sum(axis=1, keepdims=True)
        degrees[degrees == 0] = 1.0
        return adjacency / degrees

    def forward(self, features: np.ndarray, adjacency: np.ndarray) -> tuple[np.ndarray, dict]:
        mean_adj = self._row_normalize(adjacency)
        neigh = mean_adj @ features
        pre_activation = features @ self.params["weight_self"] + neigh @ self.params["weight_neigh"]
        output = relu(pre_activation) if self.activation else pre_activation
        cache = {
            "features": features,
            "neigh": neigh,
            "pre_activation": pre_activation,
            "mean_adj": mean_adj,
        }
        return output, cache

    def backward(self, grad_output: np.ndarray, cache: dict) -> np.ndarray:
        grad_pre = grad_output
        if self.activation:
            grad_pre = grad_output * relu_grad(cache["pre_activation"])
        self.grads["weight_self"] += cache["features"].T @ grad_pre
        self.grads["weight_neigh"] += cache["neigh"].T @ grad_pre
        grad_features = grad_pre @ self.params["weight_self"].T
        grad_neigh = grad_pre @ self.params["weight_neigh"].T
        return grad_features + cache["mean_adj"].T @ grad_neigh


class DenseLayer(_Layer):
    """Fully connected layer ``y = x W + b`` used as the classification head."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ModelError("layer dimensions must be positive")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.params["weight"] = xavier_init(rng, in_dim, out_dim)
        self.params["bias"] = np.zeros(out_dim)
        self.zero_grads()

    def forward(self, inputs: np.ndarray) -> tuple[np.ndarray, dict]:
        output = inputs @ self.params["weight"] + self.params["bias"]
        return output, {"inputs": inputs}

    def backward(self, grad_output: np.ndarray, cache: dict) -> np.ndarray:
        inputs = cache["inputs"]
        if inputs.ndim == 1:
            self.grads["weight"] += np.outer(inputs, grad_output)
            self.grads["bias"] += grad_output
            return grad_output @ self.params["weight"].T
        self.grads["weight"] += inputs.T @ grad_output
        self.grads["bias"] += grad_output.sum(axis=0)
        return grad_output @ self.params["weight"].T
