"""Quality measures: feature influence, neighbourhood diversity, explainability.

Implements equations 2-6 of the paper.  All scores for one source graph are
computed through a :class:`GraphAnalysis` object that performs the expensive
model work once (influence matrix ``I2`` and last-layer embeddings) and then
answers set-function queries ``I(Vs)``, ``D(Vs)`` and marginal gains in time
linear in the graph size — this is the "once-for-all inference" of
ApproxGVEX line 2.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.config import Configuration
from repro.gnn.influence import normalized_influence_matrix
from repro.gnn.models import GNNClassifier
from repro.graphs.graph import Graph
from repro.graphs.sparse import sparse_enabled

__all__ = ["GraphAnalysis", "view_explainability"]


class GraphAnalysis:
    """Precomputed influence/diversity structures for one graph.

    Parameters
    ----------
    model, graph, config:
        The fixed GNN, the source graph, and the GVEX configuration whose
        ``theta`` / ``radius`` / ``gamma`` thresholds the scores use.
    """

    def __init__(self, model: GNNClassifier, graph: Graph, config: Configuration) -> None:
        self.graph = graph
        self.config = config
        self.node_list = graph.nodes
        self._index = {node: position for position, node in enumerate(self.node_list)}
        num_nodes = len(self.node_list)

        if num_nodes == 0:
            self._influence_mask = np.zeros((0, 0), dtype=bool)
            self._neighbourhood_mask = np.zeros((0, 0), dtype=bool)
            self._neighbourhood_float = np.zeros((0, 0))
            self._exerted_influence = np.zeros(0)
            return

        # I2[u, v]: share of node v's sensitivity attributable to node u (Eq. 4).
        influence = normalized_influence_matrix(model, graph, method=config.influence_method)
        # influenced-by mask (Eq. 5): entry [u, v] true when u influences v.
        self._influence_mask = influence >= config.theta
        # Total influence each node exerts over the graph; the algorithms use
        # it to break ties between candidates with identical coverage gain.
        self._exerted_influence = influence.sum(axis=1)

        # Embedding distances for the diversity term (Eq. 6), normalised to
        # [0, 1] so the radius threshold is scale-free.
        embeddings = model.node_embeddings(graph)
        differences = embeddings[:, None, :] - embeddings[None, :, :]
        distances = np.linalg.norm(differences, axis=2)
        max_distance = distances.max()
        if max_distance > 0:
            distances = distances / max_distance
        self._neighbourhood_mask = distances <= config.radius
        # Float copy used to batch-evaluate diversity via one matrix product.
        self._neighbourhood_float = self._neighbourhood_mask.astype(float)

    # ------------------------------------------------------------------
    # low-level accessors
    # ------------------------------------------------------------------
    def _positions(self, nodes: Iterable[int]) -> list[int]:
        return [self._index[node] for node in nodes if node in self._index]

    def influenced_nodes(self, seed_nodes: Iterable[int]) -> set[int]:
        """Nodes of the graph influenced by the seed set (Eq. 5's set)."""
        positions = self._positions(seed_nodes)
        if not positions:
            return set()
        mask = self._influence_mask[positions].any(axis=0)
        return {self.node_list[i] for i in np.flatnonzero(mask)}

    def influence_score(self, seed_nodes: Iterable[int]) -> int:
        """``I(Vs)``: number of nodes influenced by the seed set (Eq. 5)."""
        positions = self._positions(seed_nodes)
        if not positions:
            return 0
        return int(self._influence_mask[positions].any(axis=0).sum())

    def diversity_score(self, seed_nodes: Iterable[int]) -> int:
        """``D(Vs)``: size of the union of embedding neighbourhoods of the
        influenced nodes (Eq. 6)."""
        positions = self._positions(seed_nodes)
        if not positions:
            return 0
        influenced = self._influence_mask[positions].any(axis=0)
        if not influenced.any():
            return 0
        neighbourhood = self._neighbourhood_mask[influenced].any(axis=0)
        return int(neighbourhood.sum())

    # ------------------------------------------------------------------
    # the explainability objective
    # ------------------------------------------------------------------
    def explainability(self, seed_nodes: Iterable[int]) -> float:
        """Per-graph contribution ``(I(Vs) + gamma * D(Vs)) / |V|`` (Eq. 2)."""
        total_nodes = len(self.node_list)
        if total_nodes == 0:
            return 0.0
        seeds = list(seed_nodes)
        influence = self.influence_score(seeds)
        diversity = self.diversity_score(seeds)
        return (influence + self.config.gamma * diversity) / total_nodes

    def exerted_influence(self, node: int) -> float:
        """Total normalised influence ``sum_v I2(node, v)`` the node exerts."""
        position = self._index.get(node)
        if position is None:
            return 0.0
        return float(self._exerted_influence[position])

    def marginal_gain(self, selected: set[int], candidate: int) -> float:
        """Explainability gain of adding ``candidate`` to ``selected``."""
        return self.explainability(selected | {candidate}) - self.explainability(selected)

    def marginal_gains(self, selected: Iterable[int], candidates: Sequence[int]) -> np.ndarray:
        """Explainability gains of adding each candidate to ``selected``.

        Batched form of :meth:`marginal_gain`: the influenced sets of all
        candidates are evaluated as one boolean matrix and the diversity term
        as one matrix product, instead of two full objective evaluations per
        candidate.  The influence/diversity counts are integers, so the gains
        are bit-identical to the per-candidate path (which the legacy backend
        still runs, keeping the A/B benchmark faithful to the original greedy
        loop).
        """
        total_nodes = len(self.node_list)
        gains = np.zeros(len(candidates))
        if total_nodes == 0 or not len(candidates):
            return gains
        if not sparse_enabled():
            selected_set = set(selected)
            for slot, candidate in enumerate(candidates):
                gains[slot] = self.marginal_gain(selected_set, candidate)
            return gains
        selected_positions = self._positions(selected)
        if selected_positions:
            base_mask = self._influence_mask[selected_positions].any(axis=0)
            base_influence = int(base_mask.sum())
            base_diversity = (
                int((base_mask @ self._neighbourhood_float > 0).sum()) if base_influence else 0
            )
        else:
            base_mask = np.zeros(total_nodes, dtype=bool)
            base_influence = 0
            base_diversity = 0
        base_score = (base_influence + self.config.gamma * base_diversity) / total_nodes

        known = [
            (slot, self._index[candidate])
            for slot, candidate in enumerate(candidates)
            if candidate in self._index
        ]
        if not known:
            return gains
        slots = np.array([slot for slot, _ in known])
        positions = np.array([position for _, position in known])
        influenced = base_mask[None, :] | self._influence_mask[positions]
        influence_counts = influenced.sum(axis=1)
        diversity_counts = (influenced @ self._neighbourhood_float > 0).sum(axis=1)
        scores = (influence_counts + self.config.gamma * diversity_counts) / total_nodes
        gains[slots] = scores - base_score
        return gains

    def loss_of_removal(self, selected: set[int], node: int) -> float:
        """Explainability lost by removing ``node`` from ``selected``."""
        return self.explainability(selected) - self.explainability(selected - {node})

    def num_nodes(self) -> int:
        return len(self.node_list)


def view_explainability(analyses: Sequence[GraphAnalysis], node_sets: Sequence[Iterable[int]]) -> float:
    """Aggregate explainability ``f`` of an explanation view (Eq. 2).

    ``analyses`` and ``node_sets`` are aligned: entry ``i`` is the analysis of
    source graph ``G_i`` and the node set of its explanation subgraph.
    """
    if len(analyses) != len(node_sets):
        raise ValueError("analyses and node_sets must be aligned")
    return float(sum(analysis.explainability(nodes) for analysis, nodes in zip(analyses, node_sets)))
