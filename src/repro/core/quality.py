"""Quality measures: feature influence, neighbourhood diversity, explainability.

Implements equations 2-6 of the paper.  All scores for one source graph are
computed through a :class:`GraphAnalysis` object that performs the expensive
model work once (influence matrix ``I2`` and last-layer embeddings) and then
answers set-function queries ``I(Vs)``, ``D(Vs)`` and marginal gains in time
linear in the graph size — this is the "once-for-all inference" of
ApproxGVEX line 2.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.config import Configuration
from repro.gnn.influence import normalized_influence_matrix
from repro.gnn.models import GNNClassifier
from repro.graphs.graph import Graph
from repro.graphs.sparse import sparse_enabled

__all__ = ["CoverageState", "GraphAnalysis", "pack_rows", "unpack_bits", "word_popcounts", "view_explainability"]

# ----------------------------------------------------------------------
# bit-packed mask kernels
# ----------------------------------------------------------------------
# Boolean coverage masks are (also) stored as uint64 word matrices so the
# hot set-coverage counts become vectorized popcounts over packed AND/ANDN
# words.  Packing uses ``np.packbits(..., bitorder="little")`` and a raw
# byte reinterpretation, so pack/unpack are exact inverses and every count
# equals the boolean oracle's ``.sum()`` by construction — the float score
# expressions downstream therefore stay bit-for-bit identical.

_WORD_BITS = 64

if hasattr(np, "bitwise_count"):

    def word_popcounts(words: np.ndarray) -> np.ndarray:
        """Per-word popcounts of a uint64 array (any shape)."""
        return np.bitwise_count(words)

else:  # pragma: no cover - numpy < 2.0 fallback
    _BYTE_POPCOUNTS = np.array([bin(value).count("1") for value in range(256)], dtype=np.uint8)

    def word_popcounts(words: np.ndarray) -> np.ndarray:
        """Per-word popcounts of a uint64 array (any shape)."""
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        return _BYTE_POPCOUNTS[as_bytes].reshape(words.shape + (8,)).sum(axis=-1)


def pack_rows(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(rows, n)`` matrix into ``(rows, ceil(n/64))`` words."""
    rows, width = mask.shape
    words = (width + _WORD_BITS - 1) // _WORD_BITS
    if width == 0:
        return np.zeros((rows, 0), dtype=np.uint64)
    packed_bytes = np.packbits(mask, axis=1, bitorder="little")
    pad = words * 8 - packed_bytes.shape[1]
    if pad:
        packed_bytes = np.concatenate(
            [packed_bytes, np.zeros((rows, pad), dtype=np.uint8)], axis=1
        )
    return np.ascontiguousarray(packed_bytes).view(np.uint64)


def unpack_bits(words: np.ndarray, count: int) -> np.ndarray:
    """Inverse of :func:`pack_rows` for one word row: boolean vector of ``count``."""
    if count == 0:
        return np.zeros(0, dtype=bool)
    return np.unpackbits(np.ascontiguousarray(words).view(np.uint8), count=count, bitorder="little").astype(bool)


def _popcount(words: np.ndarray) -> int:
    return int(word_popcounts(words).sum())


def _or_reduce_rows(packed: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """OR of the selected packed rows (``rows`` must be non-empty)."""
    return np.bitwise_or.reduce(packed[rows], axis=0)


class CoverageState:
    """Incremental coverage bookkeeping for one growing seed set.

    The Eq.-2 objective is a weighted sum of two coverage functions — the
    influenced-node set (Eq. 5) and the union of embedding neighbourhoods of
    the influenced nodes (Eq. 6).  Both are monotone submodular, so a greedy
    loop never needs to re-derive them from scratch: this object keeps the
    covered-node boolean masks and the integer coverage counts of the
    committed seed set, answers a candidate's exact marginal gain as a
    popcount of *newly* covered rows, and folds a pick in with
    :meth:`commit` in time proportional to the rows that actually changed.

    Gains are computed with exactly the same float expression as
    :meth:`GraphAnalysis.marginal_gain` (score-after minus score-before with
    integer counts), so they are bit-identical to the eager loop's values —
    the property the CELF selection engine relies on for identical output.
    """

    __slots__ = ("_analysis", "_packed", "_covered", "_neigh_covered", "_influence", "_diversity", "_bounds")

    def __init__(self, analysis: "GraphAnalysis", selected: Iterable[int] = ()) -> None:
        self._analysis = analysis
        total = len(analysis.node_list)
        positions = analysis._positions(selected)
        # Under the sparse backend the covered masks live as uint64 words and
        # every count is a popcount; the boolean path below is the oracle.
        self._packed = sparse_enabled() and total > 0
        if self._packed:
            influence_words = analysis._packed_influence()
            if positions:
                self._covered = _or_reduce_rows(influence_words, np.asarray(positions))
            else:
                self._covered = np.zeros(influence_words.shape[1], dtype=np.uint64)
            self._influence = _popcount(self._covered)
            if self._influence:
                rows = np.flatnonzero(unpack_bits(self._covered, total))
                self._neigh_covered = _or_reduce_rows(analysis._packed_neighbourhood(), rows)
            else:
                self._neigh_covered = np.zeros(influence_words.shape[1], dtype=np.uint64)
            self._diversity = _popcount(self._neigh_covered)
        else:
            if positions:
                self._covered = analysis._influence_mask[positions].any(axis=0)
            else:
                self._covered = np.zeros(total, dtype=bool)
            if self._covered.any():
                self._neigh_covered = analysis._neighbourhood_mask[self._covered].any(axis=0)
            else:
                self._neigh_covered = np.zeros(total, dtype=bool)
            self._influence = int(self._covered.sum())
            self._diversity = int(self._neigh_covered.sum())
        # Last exact gain computed per node — a valid stale upper bound on the
        # node's current gain because coverage gains only shrink as the
        # committed set grows (submodularity).
        self._bounds: dict[int, float] = {}

    # ------------------------------------------------------------------
    # scores
    # ------------------------------------------------------------------
    def _score(self, influence: int, diversity: int) -> float:
        total = len(self._analysis.node_list)
        if total == 0:
            return 0.0
        return (influence + self._analysis.config.gamma * diversity) / total

    def explainability(self) -> float:
        """Eq.-2 score of the committed seed set."""
        return self._score(self._influence, self._diversity)

    def _delta_counts(self, position: int) -> tuple[int, int, np.ndarray]:
        analysis = self._analysis
        if self._packed:
            newly = analysis._packed_influence()[position] & ~self._covered
            added = _popcount(newly)
            new_influence = self._influence + added
            if added:
                rows = np.flatnonzero(unpack_bits(newly, len(analysis.node_list)))
                neigh = _or_reduce_rows(analysis._packed_neighbourhood(), rows)
                new_diversity = self._diversity + _popcount(neigh & ~self._neigh_covered)
            else:
                new_diversity = self._diversity
            return new_influence, new_diversity, newly
        newly = analysis._influence_mask[position] & ~self._covered
        new_influence = self._influence + int(newly.sum())
        if newly.any():
            neigh = analysis._neighbourhood_mask[newly].any(axis=0)
            new_diversity = self._diversity + int((neigh & ~self._neigh_covered).sum())
        else:
            new_diversity = self._diversity
        return new_influence, new_diversity, newly

    # ------------------------------------------------------------------
    # gains
    # ------------------------------------------------------------------
    def gain(self, node: int) -> float:
        """Exact marginal Eq.-2 gain of adding ``node`` to the committed set.

        Also refreshes the node's stale bound (see :meth:`gain_upper_bound`).
        """
        position = self._analysis._index.get(node)
        if position is None:
            value = 0.0
        else:
            new_influence, new_diversity, _ = self._delta_counts(position)
            value = self._score(new_influence, new_diversity) - self.explainability()
        self._bounds[node] = value
        return value

    def batch_gains(self, candidates: Sequence[int]) -> np.ndarray:
        """Exact marginal gains of every candidate (one boolean matrix pass).

        Values are element-wise identical to :meth:`gain`.  Stale bounds are
        *not* recorded here — the CELF engine keeps its own heap of stale
        gains, so per-candidate dict writes in this hot call would be dead
        weight; :meth:`gain_upper_bound` computes lazily on first use instead.
        """
        analysis = self._analysis
        total = len(analysis.node_list)
        gains = np.zeros(len(candidates))
        if total == 0 or not len(candidates):
            return gains
        known = [
            (slot, analysis._index[candidate])
            for slot, candidate in enumerate(candidates)
            if candidate in analysis._index
        ]
        if not known:
            return gains
        slots = np.array([slot for slot, _ in known])
        positions = np.array([position for _, position in known])
        if self._packed:
            # Newly-covered words per candidate (ANDN), influence counts as
            # popcounts; the diversity delta only needs the neighbourhood
            # rows of the *newly* influenced nodes OR'd against the covered
            # union, so candidates that add nothing are free.
            new_words = analysis._packed_influence()[positions] & ~self._covered[None, :]
            influence_counts = self._influence + word_popcounts(new_words).sum(axis=1)
            neighbourhood = analysis._packed_neighbourhood()
            diversity_counts = np.full(len(known), self._diversity, dtype=np.int64)
            for row in range(len(known)):
                words = new_words[row]
                if words.any():
                    rows = np.flatnonzero(unpack_bits(words, total))
                    union = _or_reduce_rows(neighbourhood, rows)
                    diversity_counts[row] = self._diversity + _popcount(union & ~self._neigh_covered)
            scores = (influence_counts + analysis.config.gamma * diversity_counts) / total
            gains[slots] = scores - self.explainability()
            return gains
        influenced = self._covered[None, :] | analysis._influence_mask[positions]
        influence_counts = influenced.sum(axis=1)
        diversity_counts = (influenced @ analysis._neighbourhood_float > 0).sum(axis=1)
        scores = (influence_counts + analysis.config.gamma * diversity_counts) / total
        gains[slots] = scores - self.explainability()
        return gains

    def gain_upper_bound(self, node: int) -> float:
        """Stale upper bound on ``node``'s current gain (lazily initialised).

        Returns the gain last computed for the node; if the node was never
        scored, computes (and caches) its exact gain now.
        """
        cached = self._bounds.get(node)
        if cached is None:
            cached = self.gain(node)
        return cached

    # ------------------------------------------------------------------
    # committing a pick
    # ------------------------------------------------------------------
    def commit(self, node: int) -> float:
        """Fold ``node`` into the committed set; returns the realised gain.

        Only the rows the pick newly covers are touched, so a commit costs
        O(changed) instead of a full objective re-evaluation.
        """
        position = self._analysis._index.get(node)
        if position is None:
            return 0.0
        before = self.explainability()
        new_influence, new_diversity, newly = self._delta_counts(position)
        if self._packed:
            if new_influence != self._influence:
                rows = np.flatnonzero(unpack_bits(newly, len(self._analysis.node_list)))
                self._covered |= newly
                self._neigh_covered |= _or_reduce_rows(self._analysis._packed_neighbourhood(), rows)
        elif newly.any():
            self._covered |= newly
            self._neigh_covered |= self._analysis._neighbourhood_mask[newly].any(axis=0)
        self._influence = new_influence
        self._diversity = new_diversity
        self._bounds.pop(node, None)
        return self.explainability() - before


class GraphAnalysis:
    """Precomputed influence/diversity structures for one graph.

    Parameters
    ----------
    model, graph, config:
        The fixed GNN, the source graph, and the GVEX configuration whose
        ``theta`` / ``radius`` / ``gamma`` thresholds the scores use.
    """

    def __init__(self, model: GNNClassifier, graph: Graph, config: Configuration) -> None:
        self.graph = graph
        self.config = config
        self.node_list = graph.nodes
        self._index = {node: position for position, node in enumerate(self.node_list)}
        num_nodes = len(self.node_list)

        # Lazily built views of the boolean masks: a float copy (batched
        # diversity via one matrix product) and uint64 word-packed copies
        # (popcount kernels).  None until first use — most analyses in the
        # streaming path only ever exercise one of the two.
        self._neighbourhood_float_cache: np.ndarray | None = None
        self._packed_influence_cache: np.ndarray | None = None
        self._packed_neighbourhood_cache: np.ndarray | None = None
        # Memo of Eq.-2 scores per queried seed set (packed path only): the
        # streaming swap loop re-evaluates the same selected/reduced subsets
        # for every arriving node, so this turns most of IncUpdateVS's
        # objective calls into dict hits.
        self._subset_scores: dict[frozenset[int], float] = {}

        if num_nodes == 0:
            self._influence_mask = np.zeros((0, 0), dtype=bool)
            self._neighbourhood_mask = np.zeros((0, 0), dtype=bool)
            self._neighbourhood_float_cache = np.zeros((0, 0))
            self._exerted_influence = np.zeros(0)
            self._coverage = None
            return

        # I2[u, v]: share of node v's sensitivity attributable to node u (Eq. 4).
        influence = normalized_influence_matrix(model, graph, method=config.influence_method)
        # influenced-by mask (Eq. 5): entry [u, v] true when u influences v.
        self._influence_mask = influence >= config.theta
        # Total influence each node exerts over the graph; the algorithms use
        # it to break ties between candidates with identical coverage gain.
        self._exerted_influence = influence.sum(axis=1)

        # Embedding distances for the diversity term (Eq. 6), normalised to
        # [0, 1] so the radius threshold is scale-free.
        embeddings = model.node_embeddings(graph)
        differences = embeddings[:, None, :] - embeddings[None, :, :]
        distances = np.linalg.norm(differences, axis=2)
        max_distance = distances.max()
        if max_distance > 0:
            distances = distances / max_distance
        self._neighbourhood_mask = distances <= config.radius
        self._coverage: CoverageState | None = None

    # ------------------------------------------------------------------
    # low-level accessors
    # ------------------------------------------------------------------
    @property
    def _neighbourhood_float(self) -> np.ndarray:
        """Float copy used to batch-evaluate diversity via one matrix product."""
        if self._neighbourhood_float_cache is None:
            self._neighbourhood_float_cache = self._neighbourhood_mask.astype(float)
        return self._neighbourhood_float_cache

    def _packed_influence(self) -> np.ndarray:
        """uint64 word-packed copy of the influenced-by mask."""
        if self._packed_influence_cache is None:
            self._packed_influence_cache = pack_rows(self._influence_mask)
        return self._packed_influence_cache

    def _packed_neighbourhood(self) -> np.ndarray:
        """uint64 word-packed copy of the embedding-neighbourhood mask."""
        if self._packed_neighbourhood_cache is None:
            self._packed_neighbourhood_cache = pack_rows(self._neighbourhood_mask)
        return self._packed_neighbourhood_cache

    def _packed_counts(self, positions: Sequence[int]) -> tuple[int, int]:
        """``(I, D)`` integer counts of a non-empty seed position set."""
        influenced = _or_reduce_rows(self._packed_influence(), np.asarray(positions))
        influence = _popcount(influenced)
        if influence == 0:
            return 0, 0
        rows = np.flatnonzero(unpack_bits(influenced, len(self.node_list)))
        neighbourhood = _or_reduce_rows(self._packed_neighbourhood(), rows)
        return influence, _popcount(neighbourhood)
    def _positions(self, nodes: Iterable[int]) -> list[int]:
        return [self._index[node] for node in nodes if node in self._index]

    def influenced_nodes(self, seed_nodes: Iterable[int]) -> set[int]:
        """Nodes of the graph influenced by the seed set (Eq. 5's set)."""
        positions = self._positions(seed_nodes)
        if not positions:
            return set()
        mask = self._influence_mask[positions].any(axis=0)
        return {self.node_list[i] for i in np.flatnonzero(mask)}

    def influence_score(self, seed_nodes: Iterable[int]) -> int:
        """``I(Vs)``: number of nodes influenced by the seed set (Eq. 5)."""
        positions = self._positions(seed_nodes)
        if not positions:
            return 0
        if sparse_enabled():
            return self._packed_counts(positions)[0]
        return int(self._influence_mask[positions].any(axis=0).sum())

    def diversity_score(self, seed_nodes: Iterable[int]) -> int:
        """``D(Vs)``: size of the union of embedding neighbourhoods of the
        influenced nodes (Eq. 6)."""
        positions = self._positions(seed_nodes)
        if not positions:
            return 0
        if sparse_enabled():
            return self._packed_counts(positions)[1]
        influenced = self._influence_mask[positions].any(axis=0)
        if not influenced.any():
            return 0
        neighbourhood = self._neighbourhood_mask[influenced].any(axis=0)
        return int(neighbourhood.sum())

    # ------------------------------------------------------------------
    # the explainability objective
    # ------------------------------------------------------------------
    def explainability(self, seed_nodes: Iterable[int]) -> float:
        """Per-graph contribution ``(I(Vs) + gamma * D(Vs)) / |V|`` (Eq. 2)."""
        total_nodes = len(self.node_list)
        if total_nodes == 0:
            return 0.0
        seeds = list(seed_nodes)
        if sparse_enabled():
            key = frozenset(seeds)
            cached = self._subset_scores.get(key)
            if cached is None:
                positions = self._positions(seeds)
                if positions:
                    influence, diversity = self._packed_counts(positions)
                else:
                    influence = diversity = 0
                cached = (influence + self.config.gamma * diversity) / total_nodes
                if len(self._subset_scores) >= 8192:
                    self._subset_scores.clear()
                self._subset_scores[key] = cached
            return cached
        influence = self.influence_score(seeds)
        diversity = self.diversity_score(seeds)
        return (influence + self.config.gamma * diversity) / total_nodes

    def exerted_influence(self, node: int) -> float:
        """Total normalised influence ``sum_v I2(node, v)`` the node exerts."""
        position = self._index.get(node)
        if position is None:
            return 0.0
        return float(self._exerted_influence[position])

    def marginal_gain(self, selected: set[int], candidate: int) -> float:
        """Explainability gain of adding ``candidate`` to ``selected``."""
        return self.explainability(selected | {candidate}) - self.explainability(selected)

    def marginal_gains(self, selected: Iterable[int], candidates: Sequence[int]) -> np.ndarray:
        """Explainability gains of adding each candidate to ``selected``.

        Batched form of :meth:`marginal_gain`: the influenced sets of all
        candidates are evaluated as one boolean matrix and the diversity term
        as one matrix product, instead of two full objective evaluations per
        candidate.  The influence/diversity counts are integers, so the gains
        are bit-identical to the per-candidate path (which the legacy backend
        still runs, keeping the A/B benchmark faithful to the original greedy
        loop).
        """
        total_nodes = len(self.node_list)
        gains = np.zeros(len(candidates))
        if total_nodes == 0 or not len(candidates):
            return gains
        if not sparse_enabled():
            selected_set = set(selected)
            for slot, candidate in enumerate(candidates):
                gains[slot] = self.marginal_gain(selected_set, candidate)
            return gains
        selected_positions = self._positions(selected)
        if selected_positions:
            base_mask = self._influence_mask[selected_positions].any(axis=0)
            base_influence = int(base_mask.sum())
            base_diversity = (
                int((base_mask @ self._neighbourhood_float > 0).sum()) if base_influence else 0
            )
        else:
            base_mask = np.zeros(total_nodes, dtype=bool)
            base_influence = 0
            base_diversity = 0
        base_score = (base_influence + self.config.gamma * base_diversity) / total_nodes

        known = [
            (slot, self._index[candidate])
            for slot, candidate in enumerate(candidates)
            if candidate in self._index
        ]
        if not known:
            return gains
        slots = np.array([slot for slot, _ in known])
        positions = np.array([position for _, position in known])
        influenced = base_mask[None, :] | self._influence_mask[positions]
        influence_counts = influenced.sum(axis=1)
        diversity_counts = (influenced @ self._neighbourhood_float > 0).sum(axis=1)
        scores = (influence_counts + self.config.gamma * diversity_counts) / total_nodes
        gains[slots] = scores - base_score
        return gains

    # ------------------------------------------------------------------
    # incremental coverage state (CELF support)
    # ------------------------------------------------------------------
    def reset_coverage(self, selected: Iterable[int] = ()) -> CoverageState:
        """Start a fresh :class:`CoverageState` seeded with ``selected``.

        The returned state is also installed as the analysis's *current*
        coverage, which :meth:`commit` / :meth:`gain_upper_bound` act on.
        """
        self._coverage = CoverageState(self, selected)
        return self._coverage

    def _current_coverage(self) -> CoverageState:
        if self._coverage is None:
            self._coverage = CoverageState(self)
        return self._coverage

    def commit(self, node: int) -> float:
        """Fold ``node`` into the current coverage state (realised gain)."""
        return self._current_coverage().commit(node)

    def gain_upper_bound(self, node: int) -> float:
        """Stale upper bound on ``node``'s marginal gain (see CELF)."""
        return self._current_coverage().gain_upper_bound(node)

    def loss_of_removal(self, selected: set[int], node: int) -> float:
        """Explainability lost by removing ``node`` from ``selected``."""
        return self.explainability(selected) - self.explainability(selected - {node})

    def num_nodes(self) -> int:
        return len(self.node_list)


def view_explainability(analyses: Sequence[GraphAnalysis], node_sets: Sequence[Iterable[int]]) -> float:
    """Aggregate explainability ``f`` of an explanation view (Eq. 2).

    ``analyses`` and ``node_sets`` are aligned: entry ``i`` is the analysis of
    source graph ``G_i`` and the node set of its explanation subgraph.
    """
    if len(analyses) != len(node_sets):
        raise ValueError("analyses and node_sets must be aligned")
    return float(sum(analysis.explainability(nodes) for analysis, nodes in zip(analyses, node_sets)))
