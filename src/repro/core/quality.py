"""Quality measures: feature influence, neighbourhood diversity, explainability.

Implements equations 2-6 of the paper.  All scores for one source graph are
computed through a :class:`GraphAnalysis` object that performs the expensive
model work once (influence matrix ``I2`` and last-layer embeddings) and then
answers set-function queries ``I(Vs)``, ``D(Vs)`` and marginal gains in time
linear in the graph size — this is the "once-for-all inference" of
ApproxGVEX line 2.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.config import Configuration
from repro.gnn.influence import normalized_influence_matrix
from repro.gnn.models import GNNClassifier
from repro.graphs.graph import Graph
from repro.graphs.sparse import sparse_enabled

__all__ = ["CoverageState", "GraphAnalysis", "view_explainability"]


class CoverageState:
    """Incremental coverage bookkeeping for one growing seed set.

    The Eq.-2 objective is a weighted sum of two coverage functions — the
    influenced-node set (Eq. 5) and the union of embedding neighbourhoods of
    the influenced nodes (Eq. 6).  Both are monotone submodular, so a greedy
    loop never needs to re-derive them from scratch: this object keeps the
    covered-node boolean masks and the integer coverage counts of the
    committed seed set, answers a candidate's exact marginal gain as a
    popcount of *newly* covered rows, and folds a pick in with
    :meth:`commit` in time proportional to the rows that actually changed.

    Gains are computed with exactly the same float expression as
    :meth:`GraphAnalysis.marginal_gain` (score-after minus score-before with
    integer counts), so they are bit-identical to the eager loop's values —
    the property the CELF selection engine relies on for identical output.
    """

    __slots__ = ("_analysis", "_covered", "_neigh_covered", "_influence", "_diversity", "_bounds")

    def __init__(self, analysis: "GraphAnalysis", selected: Iterable[int] = ()) -> None:
        self._analysis = analysis
        total = len(analysis.node_list)
        positions = analysis._positions(selected)
        if positions:
            self._covered = analysis._influence_mask[positions].any(axis=0)
        else:
            self._covered = np.zeros(total, dtype=bool)
        if self._covered.any():
            self._neigh_covered = analysis._neighbourhood_mask[self._covered].any(axis=0)
        else:
            self._neigh_covered = np.zeros(total, dtype=bool)
        self._influence = int(self._covered.sum())
        self._diversity = int(self._neigh_covered.sum())
        # Last exact gain computed per node — a valid stale upper bound on the
        # node's current gain because coverage gains only shrink as the
        # committed set grows (submodularity).
        self._bounds: dict[int, float] = {}

    # ------------------------------------------------------------------
    # scores
    # ------------------------------------------------------------------
    def _score(self, influence: int, diversity: int) -> float:
        total = len(self._analysis.node_list)
        if total == 0:
            return 0.0
        return (influence + self._analysis.config.gamma * diversity) / total

    def explainability(self) -> float:
        """Eq.-2 score of the committed seed set."""
        return self._score(self._influence, self._diversity)

    def _delta_counts(self, position: int) -> tuple[int, int, np.ndarray]:
        analysis = self._analysis
        newly = analysis._influence_mask[position] & ~self._covered
        new_influence = self._influence + int(newly.sum())
        if newly.any():
            neigh = analysis._neighbourhood_mask[newly].any(axis=0)
            new_diversity = self._diversity + int((neigh & ~self._neigh_covered).sum())
        else:
            new_diversity = self._diversity
        return new_influence, new_diversity, newly

    # ------------------------------------------------------------------
    # gains
    # ------------------------------------------------------------------
    def gain(self, node: int) -> float:
        """Exact marginal Eq.-2 gain of adding ``node`` to the committed set.

        Also refreshes the node's stale bound (see :meth:`gain_upper_bound`).
        """
        position = self._analysis._index.get(node)
        if position is None:
            value = 0.0
        else:
            new_influence, new_diversity, _ = self._delta_counts(position)
            value = self._score(new_influence, new_diversity) - self.explainability()
        self._bounds[node] = value
        return value

    def batch_gains(self, candidates: Sequence[int]) -> np.ndarray:
        """Exact marginal gains of every candidate (one boolean matrix pass).

        Values are element-wise identical to :meth:`gain`.  Stale bounds are
        *not* recorded here — the CELF engine keeps its own heap of stale
        gains, so per-candidate dict writes in this hot call would be dead
        weight; :meth:`gain_upper_bound` computes lazily on first use instead.
        """
        analysis = self._analysis
        total = len(analysis.node_list)
        gains = np.zeros(len(candidates))
        if total == 0 or not len(candidates):
            return gains
        known = [
            (slot, analysis._index[candidate])
            for slot, candidate in enumerate(candidates)
            if candidate in analysis._index
        ]
        if known:
            slots = np.array([slot for slot, _ in known])
            positions = np.array([position for _, position in known])
            influenced = self._covered[None, :] | analysis._influence_mask[positions]
            influence_counts = influenced.sum(axis=1)
            diversity_counts = (influenced @ analysis._neighbourhood_float > 0).sum(axis=1)
            scores = (influence_counts + analysis.config.gamma * diversity_counts) / total
            gains[slots] = scores - self.explainability()
        return gains

    def gain_upper_bound(self, node: int) -> float:
        """Stale upper bound on ``node``'s current gain (lazily initialised).

        Returns the gain last computed for the node; if the node was never
        scored, computes (and caches) its exact gain now.
        """
        cached = self._bounds.get(node)
        if cached is None:
            cached = self.gain(node)
        return cached

    # ------------------------------------------------------------------
    # committing a pick
    # ------------------------------------------------------------------
    def commit(self, node: int) -> float:
        """Fold ``node`` into the committed set; returns the realised gain.

        Only the rows the pick newly covers are touched, so a commit costs
        O(changed) instead of a full objective re-evaluation.
        """
        position = self._analysis._index.get(node)
        if position is None:
            return 0.0
        before = self.explainability()
        new_influence, new_diversity, newly = self._delta_counts(position)
        if newly.any():
            self._covered |= newly
            self._neigh_covered |= self._analysis._neighbourhood_mask[newly].any(axis=0)
        self._influence = new_influence
        self._diversity = new_diversity
        self._bounds.pop(node, None)
        return self.explainability() - before


class GraphAnalysis:
    """Precomputed influence/diversity structures for one graph.

    Parameters
    ----------
    model, graph, config:
        The fixed GNN, the source graph, and the GVEX configuration whose
        ``theta`` / ``radius`` / ``gamma`` thresholds the scores use.
    """

    def __init__(self, model: GNNClassifier, graph: Graph, config: Configuration) -> None:
        self.graph = graph
        self.config = config
        self.node_list = graph.nodes
        self._index = {node: position for position, node in enumerate(self.node_list)}
        num_nodes = len(self.node_list)

        if num_nodes == 0:
            self._influence_mask = np.zeros((0, 0), dtype=bool)
            self._neighbourhood_mask = np.zeros((0, 0), dtype=bool)
            self._neighbourhood_float = np.zeros((0, 0))
            self._exerted_influence = np.zeros(0)
            self._coverage = None
            return

        # I2[u, v]: share of node v's sensitivity attributable to node u (Eq. 4).
        influence = normalized_influence_matrix(model, graph, method=config.influence_method)
        # influenced-by mask (Eq. 5): entry [u, v] true when u influences v.
        self._influence_mask = influence >= config.theta
        # Total influence each node exerts over the graph; the algorithms use
        # it to break ties between candidates with identical coverage gain.
        self._exerted_influence = influence.sum(axis=1)

        # Embedding distances for the diversity term (Eq. 6), normalised to
        # [0, 1] so the radius threshold is scale-free.
        embeddings = model.node_embeddings(graph)
        differences = embeddings[:, None, :] - embeddings[None, :, :]
        distances = np.linalg.norm(differences, axis=2)
        max_distance = distances.max()
        if max_distance > 0:
            distances = distances / max_distance
        self._neighbourhood_mask = distances <= config.radius
        # Float copy used to batch-evaluate diversity via one matrix product.
        self._neighbourhood_float = self._neighbourhood_mask.astype(float)
        self._coverage: CoverageState | None = None

    # ------------------------------------------------------------------
    # low-level accessors
    # ------------------------------------------------------------------
    def _positions(self, nodes: Iterable[int]) -> list[int]:
        return [self._index[node] for node in nodes if node in self._index]

    def influenced_nodes(self, seed_nodes: Iterable[int]) -> set[int]:
        """Nodes of the graph influenced by the seed set (Eq. 5's set)."""
        positions = self._positions(seed_nodes)
        if not positions:
            return set()
        mask = self._influence_mask[positions].any(axis=0)
        return {self.node_list[i] for i in np.flatnonzero(mask)}

    def influence_score(self, seed_nodes: Iterable[int]) -> int:
        """``I(Vs)``: number of nodes influenced by the seed set (Eq. 5)."""
        positions = self._positions(seed_nodes)
        if not positions:
            return 0
        return int(self._influence_mask[positions].any(axis=0).sum())

    def diversity_score(self, seed_nodes: Iterable[int]) -> int:
        """``D(Vs)``: size of the union of embedding neighbourhoods of the
        influenced nodes (Eq. 6)."""
        positions = self._positions(seed_nodes)
        if not positions:
            return 0
        influenced = self._influence_mask[positions].any(axis=0)
        if not influenced.any():
            return 0
        neighbourhood = self._neighbourhood_mask[influenced].any(axis=0)
        return int(neighbourhood.sum())

    # ------------------------------------------------------------------
    # the explainability objective
    # ------------------------------------------------------------------
    def explainability(self, seed_nodes: Iterable[int]) -> float:
        """Per-graph contribution ``(I(Vs) + gamma * D(Vs)) / |V|`` (Eq. 2)."""
        total_nodes = len(self.node_list)
        if total_nodes == 0:
            return 0.0
        seeds = list(seed_nodes)
        influence = self.influence_score(seeds)
        diversity = self.diversity_score(seeds)
        return (influence + self.config.gamma * diversity) / total_nodes

    def exerted_influence(self, node: int) -> float:
        """Total normalised influence ``sum_v I2(node, v)`` the node exerts."""
        position = self._index.get(node)
        if position is None:
            return 0.0
        return float(self._exerted_influence[position])

    def marginal_gain(self, selected: set[int], candidate: int) -> float:
        """Explainability gain of adding ``candidate`` to ``selected``."""
        return self.explainability(selected | {candidate}) - self.explainability(selected)

    def marginal_gains(self, selected: Iterable[int], candidates: Sequence[int]) -> np.ndarray:
        """Explainability gains of adding each candidate to ``selected``.

        Batched form of :meth:`marginal_gain`: the influenced sets of all
        candidates are evaluated as one boolean matrix and the diversity term
        as one matrix product, instead of two full objective evaluations per
        candidate.  The influence/diversity counts are integers, so the gains
        are bit-identical to the per-candidate path (which the legacy backend
        still runs, keeping the A/B benchmark faithful to the original greedy
        loop).
        """
        total_nodes = len(self.node_list)
        gains = np.zeros(len(candidates))
        if total_nodes == 0 or not len(candidates):
            return gains
        if not sparse_enabled():
            selected_set = set(selected)
            for slot, candidate in enumerate(candidates):
                gains[slot] = self.marginal_gain(selected_set, candidate)
            return gains
        selected_positions = self._positions(selected)
        if selected_positions:
            base_mask = self._influence_mask[selected_positions].any(axis=0)
            base_influence = int(base_mask.sum())
            base_diversity = (
                int((base_mask @ self._neighbourhood_float > 0).sum()) if base_influence else 0
            )
        else:
            base_mask = np.zeros(total_nodes, dtype=bool)
            base_influence = 0
            base_diversity = 0
        base_score = (base_influence + self.config.gamma * base_diversity) / total_nodes

        known = [
            (slot, self._index[candidate])
            for slot, candidate in enumerate(candidates)
            if candidate in self._index
        ]
        if not known:
            return gains
        slots = np.array([slot for slot, _ in known])
        positions = np.array([position for _, position in known])
        influenced = base_mask[None, :] | self._influence_mask[positions]
        influence_counts = influenced.sum(axis=1)
        diversity_counts = (influenced @ self._neighbourhood_float > 0).sum(axis=1)
        scores = (influence_counts + self.config.gamma * diversity_counts) / total_nodes
        gains[slots] = scores - base_score
        return gains

    # ------------------------------------------------------------------
    # incremental coverage state (CELF support)
    # ------------------------------------------------------------------
    def reset_coverage(self, selected: Iterable[int] = ()) -> CoverageState:
        """Start a fresh :class:`CoverageState` seeded with ``selected``.

        The returned state is also installed as the analysis's *current*
        coverage, which :meth:`commit` / :meth:`gain_upper_bound` act on.
        """
        self._coverage = CoverageState(self, selected)
        return self._coverage

    def _current_coverage(self) -> CoverageState:
        if self._coverage is None:
            self._coverage = CoverageState(self)
        return self._coverage

    def commit(self, node: int) -> float:
        """Fold ``node`` into the current coverage state (realised gain)."""
        return self._current_coverage().commit(node)

    def gain_upper_bound(self, node: int) -> float:
        """Stale upper bound on ``node``'s marginal gain (see CELF)."""
        return self._current_coverage().gain_upper_bound(node)

    def loss_of_removal(self, selected: set[int], node: int) -> float:
        """Explainability lost by removing ``node`` from ``selected``."""
        return self.explainability(selected) - self.explainability(selected - {node})

    def num_nodes(self) -> int:
        return len(self.node_list)


def view_explainability(analyses: Sequence[GraphAnalysis], node_sets: Sequence[Iterable[int]]) -> float:
    """Aggregate explainability ``f`` of an explanation view (Eq. 2).

    ``analyses`` and ``node_sets`` are aligned: entry ``i`` is the analysis of
    source graph ``G_i`` and the node set of its explanation subgraph.
    """
    if len(analyses) != len(node_sets):
        raise ValueError("analyses and node_sets must be aligned")
    return float(sum(analysis.explainability(nodes) for analysis, nodes in zip(analyses, node_sets)))
