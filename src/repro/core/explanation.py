"""Explanation structures: explanation subgraphs, explanation views, view sets.

These are the output objects of GVEX (section 2.2):

* :class:`ExplanationSubgraph` — the lower tier: a node-induced subgraph of a
  source graph that is consistent (same predicted label) and counterfactual
  (removing it flips the prediction);
* :class:`ExplanationView` — one label's two-tier view ``(P^l, G_s^l)``;
* :class:`ExplanationViewSet` — the per-label collection ``{G^l_V | l in L}``
  returned by the end-to-end explainers, with the query helpers that make the
  views "queryable".
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern
from repro.graphs.subgraph import induced_subgraph, remove_subgraph
from repro.matching.engine import has_matching

__all__ = ["ExplanationSubgraph", "ExplanationView", "ExplanationViewSet"]


@dataclass
class ExplanationSubgraph:
    """A lower-tier explanation subgraph ``G^l_s`` for one source graph."""

    source_graph: Graph
    nodes: set[int]
    label: int
    explainability: float = 0.0
    consistent: bool | None = None
    counterfactual: bool | None = None

    def subgraph(self) -> Graph:
        """The node-induced subgraph object."""
        return induced_subgraph(self.source_graph, self.nodes)

    def residual(self) -> Graph:
        """``G \\ G_s`` — the source graph with the explanation removed."""
        return remove_subgraph(self.source_graph, self.nodes)

    def num_nodes(self) -> int:
        return len(self.nodes)

    def num_edges(self) -> int:
        return self.subgraph().num_edges()

    def sparsity(self) -> float:
        """Per-graph sparsity ``1 - (|Vs|+|Es|)/(|V|+|E|)`` (Eq. 10 term)."""
        total = self.source_graph.num_nodes() + self.source_graph.num_edges()
        if total == 0:
            return 0.0
        return 1.0 - (self.num_nodes() + self.num_edges()) / total

    def is_valid_explanation(self) -> bool:
        """True when both the consistent and counterfactual properties hold."""
        return bool(self.consistent) and bool(self.counterfactual)

    def to_dict(self) -> dict[str, Any]:
        return {
            "source_graph_id": self.source_graph.graph_id,
            "nodes": sorted(self.nodes),
            "label": self.label,
            "explainability": self.explainability,
            "consistent": self.consistent,
            "counterfactual": self.counterfactual,
        }


@dataclass
class ExplanationView:
    """A two-tier explanation view ``G^l_V = (P^l, G^l_s)`` for one label."""

    label: int
    patterns: list[GraphPattern] = field(default_factory=list)
    subgraphs: list[ExplanationSubgraph] = field(default_factory=list)
    explainability: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # sizes used by the conciseness metrics
    # ------------------------------------------------------------------
    def total_subgraph_nodes(self) -> int:
        return sum(subgraph.num_nodes() for subgraph in self.subgraphs)

    def total_subgraph_edges(self) -> int:
        return sum(subgraph.num_edges() for subgraph in self.subgraphs)

    def total_pattern_nodes(self) -> int:
        return sum(pattern.num_nodes() for pattern in self.patterns)

    def total_pattern_edges(self) -> int:
        return sum(pattern.num_edges() for pattern in self.patterns)

    def compression(self) -> float:
        """Eq. 11: how much smaller the patterns are than the subgraphs."""
        subgraph_size = self.total_subgraph_nodes() + self.total_subgraph_edges()
        if subgraph_size == 0:
            return 0.0
        pattern_size = self.total_pattern_nodes() + self.total_pattern_edges()
        return 1.0 - pattern_size / subgraph_size

    # ------------------------------------------------------------------
    # queryable interface
    # ------------------------------------------------------------------
    def subgraph_objects(self) -> list[Graph]:
        """The induced subgraph objects of the lower tier."""
        return [subgraph.subgraph() for subgraph in self.subgraphs]

    def patterns_matching(self, graph: Graph) -> list[GraphPattern]:
        """Patterns of this view that occur in the given graph."""
        return [pattern for pattern in self.patterns if has_matching(pattern, graph)]

    def graphs_containing(self, pattern: GraphPattern) -> list[Graph]:
        """Source graphs of this view whose explanation subgraph contains the pattern."""
        result = []
        for subgraph in self.subgraphs:
            if has_matching(pattern, subgraph.subgraph()):
                result.append(subgraph.source_graph)
        return result

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "explainability": self.explainability,
            "patterns": [pattern.to_dict() for pattern in self.patterns],
            "subgraphs": [subgraph.to_dict() for subgraph in self.subgraphs],
            "metadata": dict(self.metadata),
        }


class ExplanationViewSet:
    """The per-label collection of explanation views ``{G^l_V}``."""

    def __init__(self, views: Sequence[ExplanationView] | None = None) -> None:
        self._views: dict[int, ExplanationView] = {}
        for view in views or []:
            self.add(view)

    def add(self, view: ExplanationView) -> None:
        self._views[view.label] = view

    def labels(self) -> list[int]:
        return sorted(self._views)

    def view_for(self, label: int) -> ExplanationView:
        return self._views[label]

    def __contains__(self, label: object) -> bool:
        return label in self._views

    def __len__(self) -> int:
        return len(self._views)

    def __iter__(self) -> Iterator[ExplanationView]:
        return iter(self._views[label] for label in self.labels())

    def total_explainability(self) -> float:
        """The aggregated objective of Eq. 7."""
        return float(sum(view.explainability for view in self))

    # ------------------------------------------------------------------
    # cross-label queries (the "queryable" property)
    # ------------------------------------------------------------------
    def labels_containing_pattern(self, pattern: GraphPattern) -> list[int]:
        """Which labels' explanation subgraphs contain a given pattern?

        This answers queries such as "which toxicophores occur in mutagens?"
        from the paper's Example 1.1.
        """
        result = []
        for view in self:
            if any(has_matching(pattern, sub.subgraph()) for sub in view.subgraphs):
                result.append(view.label)
        return result

    def discriminative_patterns(self, label: int) -> list[GraphPattern]:
        """Patterns of one label's view that occur in *no other* label's subgraphs."""
        view = self.view_for(label)
        other_subgraphs = [
            sub.subgraph()
            for other in self
            if other.label != label
            for sub in other.subgraphs
        ]
        discriminative = []
        for pattern in view.patterns:
            if not any(has_matching(pattern, graph) for graph in other_subgraphs):
                discriminative.append(pattern)
        return discriminative

    def to_dict(self) -> dict[str, Any]:
        return {"views": [view.to_dict() for view in self]}
