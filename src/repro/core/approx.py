"""ApproxGVEX: the 1/2-approximate explain-and-summarize algorithm (section 4).

For a single source graph the algorithm

1. precomputes influence/diversity structures once (``EVerify`` line 2),
2. greedily grows a node set ``Vs`` by repeatedly adding the candidate with
   the largest marginal explainability gain, where candidates are the nodes
   that pass the ``VpExtend`` verification (consistency / size bound), up to
   the upper coverage bound ``u_l``,
3. tops up from the backup candidate set ``Vu`` until the lower bound ``b_l``
   is met (returning nothing when that is impossible), and
4. summarises the induced explanation subgraphs into patterns with ``Psum``.

The driver :class:`ApproxGVEX` applies this per graph of a label group and
assembles the per-label :class:`~repro.core.explanation.ExplanationView`.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.core.caching import LRUCache, accumulate_cache_stats
from repro.core.config import Configuration
from repro.core.explanation import ExplanationSubgraph, ExplanationView, ExplanationViewSet
from repro.core.sampling import build_analysis
from repro.core.selection import lazy_greedy_select
from repro.core.summarize import summarize_subgraphs
from repro.core.verification import EVerify, prime_vp_extend_probes
from repro.exceptions import ExplanationError
from repro.gnn.models import GNNClassifier
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.sparse import sparse_enabled
from repro.graphs.subgraph import induced_subgraph
from repro.matching.engine import apply_config_cache_size
from repro.mining.candidates import PatternGenerator

__all__ = ["ApproxGVEX"]


class ApproxGVEX:
    """Explain-and-summarize view generation (Algorithm 1 + driver).

    Parameters
    ----------
    model:
        The fixed, trained GNN classifier ``M``.
    config:
        The GVEX configuration ``C``.
    pattern_generator:
        Optional custom ``PGen``; by default one is built from the
        configuration's pattern caps.
    """

    def __init__(
        self,
        model: GNNClassifier,
        config: Configuration | None = None,
        pattern_generator: PatternGenerator | None = None,
    ) -> None:
        self.model = model
        self.config = config or Configuration()
        self.pattern_generator = pattern_generator or PatternGenerator(
            max_pattern_size=self.config.max_pattern_size,
            max_candidates=self.config.max_pattern_candidates,
        )
        self.everify = EVerify(model)
        # The match memo is process-wide; apply this configuration's cap
        # (a REPRO_MATCH_CACHE_SIZE operator override takes precedence).
        apply_config_cache_size(self.config.match_cache_size)

    # ------------------------------------------------------------------
    # VpExtend (Procedure 2)
    # ------------------------------------------------------------------
    def _vp_extend(
        self,
        candidate: int,
        selected: set[int],
        graph: Graph,
        label: int,
    ) -> bool:
        """Can ``candidate`` extend the current explanation node set?"""
        bound = self.config.bound_for(label)
        extended = selected | {candidate}
        if len(extended) > bound.upper:
            return False
        if self.config.verification_mode == "none":
            return True
        if len(extended) < self.config.min_check_size:
            # Too small for the GNN consistency check to be meaningful.
            return True
        if not self.everify.is_consistent(graph, extended, label):
            return False
        if self.config.verification_mode == "strict":
            if not self.everify.is_counterfactual(graph, extended, label):
                return False
        return True

    def _vp_extend_many(
        self,
        nodes: Sequence[int],
        selected: set[int],
        graph: Graph,
        label: int,
    ) -> list[bool]:
        """Batched ``VpExtend``: same per-node answers, amortised inference.

        The model probes behind the per-node checks are primed through
        ``EVerify.prime`` — one block-diagonal inference pass for the whole
        frontier — before the (now cache-hitting) per-node logic runs.
        """
        prime_vp_extend_probes(
            self.everify, graph, nodes, selected, label, self.config,
            upper=self.config.bound_for(label).upper,
        )
        return [self._vp_extend(node, selected, graph, label) for node in nodes]

    # ------------------------------------------------------------------
    # explanation phase for a single graph (Algorithm 1 lines 1-17)
    # ------------------------------------------------------------------
    def explain_graph(self, graph: Graph, label: int | None = None) -> ExplanationSubgraph | None:
        """Compute an explanation subgraph for one graph, or ``None``.

        ``None`` is returned when no candidate set satisfying the lower
        coverage bound exists (Algorithm 1 lines 16-17).
        """
        if graph.num_nodes() == 0:
            return None
        if label is None:
            label = self.model.predict(graph)
        bound = self.config.bound_for(label)
        analysis = build_analysis(self.model, graph, self.config)

        selected: set[int] = set()
        backup: set[int] = set()
        all_nodes = set(graph.nodes)
        use_lazy = self.config.selection_strategy == "lazy"

        # Label probabilities of node-induced subgraphs, memoised by node set
        # with a config-capped LRU so memory stays flat on large graphs: the
        # greedy tie-breakers and the counterfactual swap loop below probe
        # many overlapping subsets, and with the sparse backend each miss is
        # a matrix slice + forward pass rather than a materialised subgraph.
        label_probability_cache: LRUCache[frozenset[int], float] = LRUCache(
            self.config.label_probability_cache_size
        )

        def label_probability(nodes: frozenset[int]) -> float:
            if not nodes:
                return 0.0
            cached = label_probability_cache.get(nodes)
            if cached is None:
                cached = float(self.model.predict_proba_nodes(graph, nodes)[label])
                label_probability_cache.put(nodes, cached)
            return cached

        def prefetch_probabilities(node_sets: Sequence[frozenset[int]]) -> None:
            """Fill the memo for many subsets with one batched forward pass."""
            if label_probability_cache.capacity <= 0:
                return  # nowhere to store the batch results
            missing = [
                nodes
                for nodes in dict.fromkeys(node_sets)
                if nodes and nodes not in label_probability_cache
            ]
            if len(missing) < 2 or not sparse_enabled():
                return
            probabilities = self.model.predict_proba_subsets(graph, missing)
            for nodes, row in zip(missing, probabilities):
                label_probability_cache.put(nodes, float(row[label]))

        def counterfactual_gain(node: int) -> float:
            """Drop in the residual graph's probability of ``label`` caused by
            moving ``node`` into the explanation.

            Used only to break ties between candidates whose Eq.-2 marginal
            gain is identical (coverage saturates quickly on small graphs);
            it steers the remaining budget towards the nodes the classifier
            actually relies on, which is what the counterfactual property of
            an explanation subgraph requires.
            """
            residual_now = frozenset(all_nodes - selected)
            return label_probability(residual_now) - label_probability(residual_now - {node})

        # Greedy growth under the upper bound (Algorithm 1 lines 3-9): keep
        # selecting the candidate with the best marginal gain until the size
        # budget is exhausted or no candidate passes VpExtend.  The lazy
        # (CELF) engine produces node sets identical to the eager loop while
        # re-evaluating only the heap entries whose stale upper bound still
        # competes; the eager loop is kept as the A/B efficiency baseline.
        if use_lazy:

            def choose_tied(tied: Sequence[int], current: set[int]) -> int:
                residual_now = frozenset(all_nodes - current)
                prefetch_probabilities(
                    [residual_now] + [residual_now - {node} for node in tied]
                )

                def gain_of(node: int) -> float:
                    return label_probability(residual_now) - label_probability(
                        residual_now - {node}
                    )

                return max(
                    tied,
                    key=lambda node: (
                        round(gain_of(node), 6),
                        analysis.exerted_influence(node),
                        -node,
                    ),
                )

            selected = lazy_greedy_select(
                analysis,
                graph.nodes,
                selected,
                bound.upper,
                lambda nodes, current: self._vp_extend_many(nodes, current, graph, label),
                choose_tied,
                gain_key=lambda gain: round(float(gain), 9),
                backup=backup if bound.lower > 0 else None,
            )
        else:
            while len(selected) < bound.upper and all_nodes - selected:
                candidates: list[int] = []
                for node in all_nodes - selected:
                    if self._vp_extend(node, selected, graph, label):
                        candidates.append(node)
                backup |= set(candidates)
                if not candidates:
                    break
                # One batched evaluation of every candidate's Eq.-2 gain, then
                # the tie-breakers (counterfactual gain, exerted influence).
                gains = analysis.marginal_gains(selected, candidates)
                best = max(
                    range(len(candidates)),
                    key=lambda slot: (
                        round(float(gains[slot]), 9),
                        round(counterfactual_gain(candidates[slot]), 6),
                        analysis.exerted_influence(candidates[slot]),
                        -candidates[slot],
                    ),
                )
                selected.add(candidates[best])

        # Top up from the backup candidate set until the lower bound is met.
        if use_lazy:
            if len(selected) < bound.lower and backup - selected:
                selected = lazy_greedy_select(
                    analysis,
                    sorted(backup - selected),
                    selected,
                    bound.lower,
                    lambda nodes, current: self._vp_extend_many(nodes, current, graph, label),
                    lambda tied, current: min(tied),
                )
        else:
            while len(selected) < bound.lower and backup - selected:
                usable = [
                    node
                    for node in backup - selected
                    if self._vp_extend(node, selected, graph, label)
                ]
                if not usable:
                    break
                gains = analysis.marginal_gains(selected, usable)
                best = max(
                    range(len(usable)), key=lambda slot: (float(gains[slot]), -usable[slot])
                )
                selected.add(usable[best])

        if len(selected) < bound.lower or not selected:
            accumulate_cache_stats("label_probability", label_probability_cache)
            return None

        # Counterfactual completion.  The definition of an explanation
        # subgraph (section 2.2) requires M(G \ Gs) != l.  On very robust
        # classifiers the greedy influence-maximising selection may leave the
        # counterfactual constraint unsatisfied within the size budget, so we
        # swap the least valuable selected nodes for the unselected nodes
        # with the largest counterfactual gain until the constraint holds
        # (or the swap budget — one pass over the selection — is spent).
        def sufficiency_gain(node: int) -> float:
            """Increase in the explanation subgraph's own probability of
            ``label`` when ``node`` joins it.  Complements the counterfactual
            gain: on robust classifiers whose evidence is spread over a motif,
            single-node removals barely move the residual probability, but the
            nodes that make the kept subgraph *sufficient* are the same ones
            whose joint removal flips the prediction."""
            current = frozenset(selected)
            return label_probability(current | {node}) - label_probability(current)

        if self.config.verification_mode != "none" and selected:
            swaps_left = len(selected)
            swapped_in: set[int] = set()
            while swaps_left > 0 and not self.everify.is_counterfactual(graph, selected, label):
                outside = all_nodes - selected
                # Nodes brought in by earlier swaps are protected from
                # eviction, otherwise the swap loop can oscillate and never
                # assemble the full counterfactual evidence set.
                evictable = selected - swapped_in
                if not outside or not evictable:
                    break
                if use_lazy:
                    # One batched pass over every probe this swap iteration
                    # needs (residual and sufficiency probabilities per
                    # outside node) instead of two forwards per node.
                    residual_now = frozenset(all_nodes - selected)
                    current = frozenset(selected)
                    prefetch_probabilities(
                        [residual_now, current]
                        + [residual_now - {node} for node in outside]
                        + [current | {node} for node in outside]
                    )
                best_out = max(
                    outside,
                    key=lambda node: (
                        round(counterfactual_gain(node) + sufficiency_gain(node), 6),
                        analysis.exerted_influence(node),
                        -node,
                    ),
                )
                weakest_in = min(
                    evictable,
                    key=lambda node: (
                        analysis.loss_of_removal(selected, node),
                        analysis.exerted_influence(node),
                        node,
                    ),
                )
                selected = (selected - {weakest_in}) | {best_out}
                swapped_in.add(best_out)
                swaps_left -= 1

        subgraph = ExplanationSubgraph(
            source_graph=graph,
            nodes=selected,
            label=label,
            explainability=analysis.explainability(selected),
        )
        # The memo dies with this call; bank its counters for stats().
        accumulate_cache_stats("label_probability", label_probability_cache)
        return self.everify.annotate(subgraph)

    # ------------------------------------------------------------------
    # per-label view and full view-set drivers
    # ------------------------------------------------------------------
    def _predicted_labels(self, graphs: Sequence[Graph]) -> list[int]:
        """Predicted label per graph — one batched pass for the whole group.

        The eager strategy keeps the per-graph reference path so the A/B
        efficiency benchmarks time the pre-CELF pipeline end to end.
        """
        if self.config.selection_strategy == "lazy" and sparse_enabled() and len(graphs) > 1:
            return self.model.predict_batch(graphs)
        return [self.model.predict(graph) for graph in graphs]

    def explain_label(self, graphs: Sequence[Graph], label: int) -> ExplanationView:
        """Explanation view for one label group (graphs the GNN assigns ``label``)."""
        start = time.perf_counter()
        subgraphs: list[ExplanationSubgraph] = []
        for graph, predicted in zip(graphs, self._predicted_labels(graphs)):
            if predicted != label:
                continue
            explanation = self.explain_graph(graph, label)
            if explanation is not None:
                subgraphs.append(explanation)
        summary = summarize_subgraphs(
            [explanation.subgraph() for explanation in subgraphs],
            pattern_generator=self.pattern_generator,
        )
        view = ExplanationView(
            label=label,
            patterns=summary.patterns,
            subgraphs=subgraphs,
            explainability=float(sum(explanation.explainability for explanation in subgraphs)),
            metadata={
                "algorithm": "ApproxGVEX",
                "edge_loss": summary.edge_loss,
                "node_coverage": summary.node_coverage,
                "fallback_singletons": summary.fallback_singletons,
                "runtime_seconds": time.perf_counter() - start,
            },
        )
        return view

    def explain(
        self,
        database: GraphDatabase | Sequence[Graph],
        labels: Sequence[int] | None = None,
    ) -> ExplanationViewSet:
        """Explanation views for every label of interest over a database."""
        graphs = list(database.graphs) if isinstance(database, GraphDatabase) else list(database)
        if not graphs:
            raise ExplanationError("cannot explain an empty graph collection")
        if labels is None:
            labels = sorted(set(self._predicted_labels(graphs)))
        views = ExplanationViewSet()
        for label in labels:
            views.add(self.explain_label(graphs, label))
        return views

    # ------------------------------------------------------------------
    # instance-level convenience (used by the baseline comparison harness)
    # ------------------------------------------------------------------
    def explain_instance(self, graph: Graph) -> ExplanationSubgraph:
        """Single-graph explanation with the graph's predicted label."""
        label = self.model.predict(graph)
        explanation = self.explain_graph(graph, label)
        if explanation is None:
            # Fall back to the highest-influence node so the caller always
            # receives a (possibly tiny) explanation to score.
            analysis = build_analysis(self.model, graph, self.config)
            best = max(graph.nodes, key=lambda node: analysis.explainability({node}))
            explanation = ExplanationSubgraph(
                source_graph=graph,
                nodes={best},
                label=label,
                explainability=analysis.explainability({best}),
            )
            self.everify.annotate(explanation)
        return explanation

    def induced_view_subgraphs(self, view: ExplanationView) -> list[Graph]:
        """Materialised subgraph objects of a view (utility for case studies)."""
        return [induced_subgraph(sub.source_graph, sub.nodes) for sub in view.subgraphs]
