"""Pattern summarisation: the ``Psum`` procedure (section 4).

Given the explanation subgraphs of a label group, ``Psum`` selects a small
set of patterns that

* covers every node of every explanation subgraph (hard constraint — this is
  what makes the result a graph view), and
* minimises the total *edge-miss penalty* ``w(P) = 1 - |P_Es| / |Es|``
  (patterns that also cover many subgraph edges are preferred).

The selection is the classic greedy weighted-set-cover heuristic, which gives
the H_{u_l}-approximation of Lemma 4.3.  If the mined candidates cannot cover
some node (possible because candidate generation is bounded), singleton
patterns — a single typed node — are added as a fallback: a singleton always
matches nodes of its type, so full node coverage is guaranteed.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern
from repro.matching.coverage import covered_edges, covered_nodes
from repro.mining.candidates import PatternGenerator

__all__ = ["SummarizeResult", "summarize_subgraphs", "pattern_weight"]


def pattern_weight(pattern: GraphPattern, subgraphs: Sequence[Graph], max_matchings: int | None = 64) -> float:
    """Edge-miss penalty ``w(P) = 1 - |P_Es| / |Es|`` over a subgraph set."""
    total_edges = sum(graph.num_edges() for graph in subgraphs)
    if total_edges == 0:
        return 0.0
    hit = sum(len(covered_edges(pattern, graph, max_matchings=max_matchings)) for graph in subgraphs)
    return 1.0 - hit / total_edges


@dataclass
class SummarizeResult:
    """Output of :func:`summarize_subgraphs`."""

    patterns: list[GraphPattern]
    covered_nodes: int
    total_nodes: int
    covered_edges: int
    total_edges: int
    fallback_singletons: int = 0
    pattern_weights: dict[int, float] = field(default_factory=dict)

    @property
    def node_coverage(self) -> float:
        return self.covered_nodes / self.total_nodes if self.total_nodes else 1.0

    @property
    def edge_loss(self) -> float:
        """Fraction of subgraph edges not covered by any pattern (Fig. 8c/8d)."""
        if self.total_edges == 0:
            return 0.0
        return 1.0 - self.covered_edges / self.total_edges


def _singleton_pattern(node_type: str) -> GraphPattern:
    pattern = GraphPattern()
    pattern.add_node(0, node_type)
    return pattern


def summarize_subgraphs(
    subgraphs: Sequence[Graph],
    pattern_generator: PatternGenerator | None = None,
    max_matchings: int | None = 64,
) -> SummarizeResult:
    """Select patterns covering all nodes of ``subgraphs`` with few missed edges."""
    subgraphs = [graph for graph in subgraphs if graph.num_nodes() > 0]
    total_nodes = sum(graph.num_nodes() for graph in subgraphs)
    total_edges = sum(graph.num_edges() for graph in subgraphs)
    if not subgraphs:
        return SummarizeResult([], 0, 0, 0, 0)

    generator = pattern_generator or PatternGenerator()
    candidates = generator.generate(subgraphs)

    # Universe of items to cover: (subgraph index, node id).
    universe: set[tuple[int, int]] = {
        (index, node) for index, graph in enumerate(subgraphs) for node in graph.nodes
    }
    # Precompute per-candidate coverage and edge weights.
    candidate_cover: list[set[tuple[int, int]]] = []
    candidate_weight: list[float] = []
    for pattern in candidates:
        covered: set[tuple[int, int]] = set()
        for index, graph in enumerate(subgraphs):
            for node in covered_nodes(pattern, graph, max_matchings=max_matchings):
                covered.add((index, node))
        candidate_cover.append(covered)
        candidate_weight.append(pattern_weight(pattern, subgraphs, max_matchings=max_matchings))

    selected: list[GraphPattern] = []
    selected_weights: dict[int, float] = {}
    uncovered = set(universe)
    epsilon = 1e-9
    available = list(range(len(candidates)))
    while uncovered and available:
        # Greedy pick: most newly covered nodes per unit of edge-miss penalty.
        best_index = None
        best_score = 0.0
        for candidate_index in available:
            gain = len(candidate_cover[candidate_index] & uncovered)
            if gain == 0:
                continue
            score = gain / (candidate_weight[candidate_index] + epsilon)
            if score > best_score:
                best_score = score
                best_index = candidate_index
        if best_index is None:
            break
        pattern = candidates[best_index]
        pattern.pattern_id = len(selected)
        selected.append(pattern)
        selected_weights[len(selected) - 1] = candidate_weight[best_index]
        uncovered -= candidate_cover[best_index]
        available.remove(best_index)

    # Fallback: guarantee node coverage with singleton patterns per node type.
    fallback = 0
    if uncovered:
        missing_types = {
            subgraphs[index].node_type(node) for index, node in uncovered
        }
        for node_type in sorted(missing_types):
            pattern = _singleton_pattern(node_type)
            pattern.pattern_id = len(selected)
            selected.append(pattern)
            selected_weights[len(selected) - 1] = pattern_weight(
                pattern, subgraphs, max_matchings=max_matchings
            )
            fallback += 1
        uncovered = set()

    # Final bookkeeping for the result metrics.
    edges_hit: set[tuple[int, tuple[int, int]]] = set()
    nodes_hit: set[tuple[int, int]] = set()
    for pattern in selected:
        for index, graph in enumerate(subgraphs):
            for node in covered_nodes(pattern, graph, max_matchings=max_matchings):
                nodes_hit.add((index, node))
            for edge in covered_edges(pattern, graph, max_matchings=max_matchings):
                edges_hit.add((index, edge))

    return SummarizeResult(
        patterns=selected,
        covered_nodes=len(nodes_hit),
        total_nodes=total_nodes,
        covered_edges=len(edges_hit),
        total_edges=total_edges,
        fallback_singletons=fallback,
        pattern_weights=selected_weights,
    )
