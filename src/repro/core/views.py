"""Query engine over explanation views (the "queryable" property).

The paper motivates graph views as *directly queryable* explanation
structures: a domain expert should be able to ask questions such as

* "which toxicophores (patterns) occur in mutagens?",
* "which nonmutagens contain pattern P22?",
* "which patterns separate class A from class B?",

without re-running the explainer.  :class:`ViewQueryEngine` indexes an
:class:`~repro.core.explanation.ExplanationViewSet` against the original
graph database and answers those queries with the pattern-matching substrate.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.explanation import ExplanationViewSet
from repro.exceptions import ExplanationError
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern
from repro.matching.engine import has_matching

__all__ = ["PatternOccurrence", "ViewQueryEngine"]


@dataclass(frozen=True)
class PatternOccurrence:
    """One (pattern, label, graph) occurrence returned by queries."""

    pattern_id: int
    label: int
    graph_id: int | None


class ViewQueryEngine:
    """Answers pattern/label queries over a set of explanation views."""

    def __init__(self, views: ExplanationViewSet, database: GraphDatabase | Sequence[Graph]) -> None:
        self.views = views
        self.graphs = list(database.graphs) if isinstance(database, GraphDatabase) else list(database)
        if not self.graphs:
            raise ExplanationError("the query engine needs at least one graph")
        # Pattern index: (label, pattern_id) -> pattern object.
        self._patterns: dict[tuple[int, int], GraphPattern] = {}
        for view in self.views:
            for pattern in view.patterns:
                pattern_id = pattern.pattern_id if pattern.pattern_id is not None else len(self._patterns)
                self._patterns[(view.label, pattern_id)] = pattern

    # ------------------------------------------------------------------
    # pattern-centric queries
    # ------------------------------------------------------------------
    def patterns_for_label(self, label: int) -> list[GraphPattern]:
        """All higher-tier patterns explaining one label."""
        return list(self.views.view_for(label).patterns)

    def graphs_containing_pattern(self, pattern: GraphPattern, label: int | None = None) -> list[Graph]:
        """Source graphs (optionally restricted to a label group) containing the pattern."""
        result = []
        for graph in self.graphs:
            if label is not None and not self._graph_in_label_group(graph, label):
                continue
            if has_matching(pattern, graph):
                result.append(graph)
        return result

    def occurrences(self, pattern: GraphPattern) -> list[PatternOccurrence]:
        """Every (label, graph) pair whose explanation subgraphs contain the pattern."""
        hits = []
        for view in self.views:
            for subgraph in view.subgraphs:
                if has_matching(pattern, subgraph.subgraph()):
                    hits.append(
                        PatternOccurrence(
                            pattern_id=pattern.pattern_id if pattern.pattern_id is not None else -1,
                            label=view.label,
                            graph_id=subgraph.source_graph.graph_id,
                        )
                    )
        return hits

    def labels_with_pattern(self, pattern: GraphPattern) -> list[int]:
        """Labels whose explanation subgraphs contain the pattern (e.g. 'which
        classes does this toxicophore occur in?')."""
        return self.views.labels_containing_pattern(pattern)

    def discriminative_patterns(self, label: int) -> list[GraphPattern]:
        """Patterns that occur only in the given label's explanation subgraphs."""
        return self.views.discriminative_patterns(label)

    # ------------------------------------------------------------------
    # graph-centric queries
    # ------------------------------------------------------------------
    def explanation_for_graph(self, graph_id: int) -> dict[str, object] | None:
        """The explanation subgraph and matching patterns recorded for a graph."""
        for view in self.views:
            for subgraph in view.subgraphs:
                if subgraph.source_graph.graph_id == graph_id:
                    matching = [
                        pattern
                        for pattern in view.patterns
                        if has_matching(pattern, subgraph.subgraph())
                    ]
                    return {
                        "label": view.label,
                        "nodes": sorted(subgraph.nodes),
                        "patterns": matching,
                        "consistent": subgraph.consistent,
                        "counterfactual": subgraph.counterfactual,
                    }
        return None

    def summary(self) -> dict[int, dict[str, float]]:
        """Per-label summary: number of subgraphs, patterns, compression."""
        return {
            view.label: {
                "num_subgraphs": float(len(view.subgraphs)),
                "num_patterns": float(len(view.patterns)),
                "compression": view.compression(),
                "explainability": view.explainability,
            }
            for view in self.views
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _graph_in_label_group(self, graph: Graph, label: int) -> bool:
        if label not in self.views:
            return False
        view = self.views.view_for(label)
        graph_ids = {subgraph.source_graph.graph_id for subgraph in view.subgraphs}
        return graph.graph_id in graph_ids
