"""Incremental view maintenance over a mutable graph database.

The paper's StreamGVEX (Section 5, Algorithm 3) maintains an explanation
view incrementally over a *node stream within one fixed graph*.  This module
lifts that machinery one level up, to a stream of whole-database mutations:

* :class:`NodeStreamProcessor` owns the per-graph streaming pass — the
  ``IncUpdateVS`` swapping rule (Procedure 4), ``IncUpdateP`` pattern
  maintenance (Procedure 5), the ``VpExtend`` verification gate, and the
  per-batch ``IncEVerify`` refresh.  :class:`~repro.core.streaming.StreamGVEX`
  *is* this processor plus the label-level driver surface, so there is a
  single implementation of the swap/pattern logic.
* :class:`ViewMaintainer` owns the live view state: one
  :class:`MaintainedExplanation` row per streamed graph (its node cache
  ``Vs``, pattern set ``Pc``, anytime history, and cost accounting), pattern
  reference counts per label, and lazily reassembled
  :class:`~repro.core.explanation.ExplanationView` objects.  Applying a
  database delta — a graph arriving, leaving, or being relabelled — repairs
  the views in time proportional to the delta: added graphs stream their
  nodes through the swap rules exactly once, removals retract the graph's
  row (dropping orphaned patterns at reassembly), and relabels move rows
  between label groups.

Because the per-graph streaming pass is independent across graphs (the node
stream lives inside one graph; the only cross-graph state is deterministic
pattern deduplication at view assembly), the maintained view after any
sequence of adds/removes is **exactly** the view a full StreamGVEX recompute
would produce on the resulting database — the incremental path inherits the
algorithm's 1/4-approximation anytime bound with zero slack.  The A/B
equivalence is asserted in the tier-1 tests and benchmarked (with a
regression-guard floor on the speedup) in ``benchmarks/bench_hot_paths.py``.

The same determinism is what makes the maintainer recoverable: replaying a
delta history — whether from a :class:`~repro.graphs.GraphDatabase` delta
log, a :class:`~repro.core.wal.WriteAheadLog` tail after a crash, or a
primary's ``/v1/deltas`` feed on a replica — drives these exact repair
paths and lands on the same views, which is how
``ExplanationService(wal_dir=...)`` and ``repro.api.replication`` get their
identity guarantees.  ``ViewMaintainer.from_snapshot`` restores the row
state without re-streaming; a WAL replay then only covers the mutations the
snapshot had not yet absorbed.
"""

from __future__ import annotations

import random
import time
import weakref
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.config import Configuration
from repro.core.explanation import ExplanationSubgraph, ExplanationView, ExplanationViewSet
from repro.core.quality import GraphAnalysis
from repro.core.sampling import build_analysis
from repro.core.selection import lazy_greedy_select
from repro.core.verification import EVerify, prime_vp_extend_probes
from repro.exceptions import ExplanationError
from repro.gnn.models import GNNClassifier
from repro.graphs.database import DatabaseDelta, GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern
from repro.graphs.sparse import sparse_enabled
from repro.graphs.subgraph import induced_subgraph
from repro.matching.engine import apply_config_cache_size
from repro.matching.incremental import IncrementalMatcher
from repro.mining.candidates import PatternGenerator

__all__ = [
    "MaintainedExplanation",
    "NodeStreamProcessor",
    "ViewMaintainer",
    "assemble_view_from_rows",
]

SNAPSHOT_KIND = "view_maintainer_snapshot"
SNAPSHOT_SCHEMA_VERSION = 1

#: Default node-batch size of the streaming pass.  Shared constant: the
#: service's maintained-result fast path may only serve a stream request
#: when the maintainer streams with the same batch size a fresh
#: ``create_explainer("stream")`` would use.
DEFAULT_STREAM_BATCH_SIZE = 8

_LABEL_SOURCES = ("predicted", "stored")


class NodeStreamProcessor:
    """The per-graph streaming pass of Algorithm 3 (shared single copy).

    Consumes one graph's nodes as a (batched, shuffled) stream and maintains

    * ``Vs`` — a node cache of size at most ``u_l`` holding the current
      explanation node set, updated with the greedy *swapping* rule of
      ``IncUpdateVS`` (a new node replaces the weakest cached node only when
      its gain is at least twice the loss, preserving the 1/4-approximation
      of streaming submodular maximisation), and
    * ``Pc`` — the current pattern set, updated by ``IncUpdateP``: newly
      selected nodes that are not yet covered trigger local pattern
      generation (``IncPGen`` on the r-hop neighbourhood) and patterns that
      stopped contributing coverage are swapped out.

    The influence/diversity structures are refreshed per batch on the seen
    fraction of the graph (``IncEVerify``), so the maintained state always
    has an anytime quality guarantee *relative to the processed fraction*.

    Both :class:`~repro.core.streaming.StreamGVEX` (which subclasses this)
    and :class:`ViewMaintainer` (which replays database deltas through it)
    share this one implementation.
    """

    def __init__(
        self,
        model: GNNClassifier,
        config: Configuration | None = None,
        pattern_generator: PatternGenerator | None = None,
        batch_size: int = DEFAULT_STREAM_BATCH_SIZE,
        seed: int | None = None,
    ) -> None:
        if batch_size < 1:
            raise ExplanationError("batch_size must be at least 1")
        self.model = model
        self.config = config or Configuration()
        self.pattern_generator = pattern_generator or PatternGenerator(
            max_pattern_size=self.config.max_pattern_size,
            max_candidates=self.config.max_pattern_candidates,
        )
        self.batch_size = batch_size
        # The node-arrival shuffle must be reproducible (Fig. 12 sweeps
        # shuffled orders): default to the configuration's seed so two runs
        # with the same Configuration see identical streams.
        self.seed = self.config.seed if seed is None else seed
        self.everify = EVerify(model)
        # The match memo is process-wide; apply this configuration's cap
        # (a REPRO_MATCH_CACHE_SIZE operator override takes precedence).
        apply_config_cache_size(self.config.match_cache_size)

    # ------------------------------------------------------------------
    # VpExtend (same contract as in ApproxGVEX)
    # ------------------------------------------------------------------
    def _vp_extend(self, candidate: int, selected: set[int], graph: Graph, label: int) -> bool:
        # Deliberately no upper-bound rejection here: a full node cache is
        # handled by the IncUpdateVS swapping rule, not by VpExtend.
        extended = selected | {candidate}
        if self.config.verification_mode == "none":
            return True
        if len(extended) < self.config.min_check_size:
            return True
        if not self.everify.is_consistent(graph, extended, label):
            return False
        if self.config.verification_mode == "strict":
            if not self.everify.is_counterfactual(graph, extended, label):
                return False
        return True

    def _vp_extend_many(
        self,
        nodes: Sequence[int],
        selected: set[int],
        graph: Graph,
        label: int,
    ) -> list[bool]:
        """Batched ``VpExtend`` (no upper-bound filter: a full node cache is
        handled by the swapping rule, not by rejection)."""
        prime_vp_extend_probes(self.everify, graph, nodes, selected, label, self.config)
        return [self._vp_extend(node, selected, graph, label) for node in nodes]

    def _stream_batched(self) -> bool:
        """Whether the batched stream path is active (``stream_batching``).

        ``auto`` follows the sparse-backend toggle, so the A/B benchmark's
        reference arm (legacy backend) automatically runs the per-node
        oracle loop with no extra wiring.
        """
        mode = self.config.stream_batching
        if mode == "on":
            return True
        if mode == "off":
            return False
        return sparse_enabled()

    # ------------------------------------------------------------------
    # IncUpdateVS (Procedure 4)
    # ------------------------------------------------------------------
    def _inc_update_vs(
        self,
        candidate: int,
        selected: set[int],
        analysis: GraphAnalysis,
        patterns: list[GraphPattern],
        matcher: IncrementalMatcher,
        seen_graph: Graph,
        upper_bound: int,
    ) -> set[int]:
        """Apply the greedy swapping rule; returns the (possibly new) node cache."""
        if candidate in selected:
            return selected
        if len(selected) < upper_bound:
            return selected | {candidate}
        if self._stream_batched():
            # Swap-first evaluation, provably outcome-identical to the
            # oracle's case-(b)-then-(c) order: when the swap rule rejects,
            # the answer is ``selected`` whichever branch fires first, so
            # the case-(b) novelty question only needs answering for the
            # rare *accepted* swaps.  The objective calls below run on the
            # packed popcount kernels with memoised subset scores, and the
            # novelty answer comes from the short-circuiting key probe —
            # no patterns are mined here (IncUpdateP mines them later,
            # only for accepted candidates).
            weakest = min(
                selected, key=lambda node: (analysis.loss_of_removal(selected, node), node)
            )
            reduced = selected - {weakest}
            gain_new = analysis.explainability(reduced | {candidate}) - analysis.explainability(reduced)
            gain_old = analysis.explainability(selected) - analysis.explainability(reduced)
            if gain_new < 2.0 * gain_old:
                return selected
            if patterns:
                covered = matcher.covered_by_set(patterns, seen_graph)
                if candidate in covered and not self.pattern_generator.has_novel_pattern(
                    seen_graph, candidate, patterns, hops=self.config.diversity_hops
                ):
                    return selected
            return reduced | {candidate}
        # Case (b): skip nodes the pattern set already summarises and nodes
        # that would not contribute any new pattern.
        if patterns:
            covered = matcher.covered_by_set(patterns, seen_graph)
            if candidate in covered:
                new_patterns = self.pattern_generator.generate_incremental(
                    seen_graph, candidate, patterns, hops=self.config.diversity_hops
                )
                if not new_patterns:
                    return selected
        # Case (c): swap against the weakest cached node when the gain is at
        # least twice the loss.
        weakest = min(selected, key=lambda node: (analysis.loss_of_removal(selected, node), node))
        reduced = selected - {weakest}
        gain_new = analysis.explainability(reduced | {candidate}) - analysis.explainability(reduced)
        gain_old = analysis.explainability(selected) - analysis.explainability(reduced)
        if gain_new >= 2.0 * gain_old:
            return reduced | {candidate}
        return selected

    # ------------------------------------------------------------------
    # IncUpdateP (Procedure 5)
    # ------------------------------------------------------------------
    def _inc_update_p(
        self,
        new_node: int,
        selected: set[int],
        patterns: list[GraphPattern],
        graph: Graph,
        matcher: IncrementalMatcher,
    ) -> list[GraphPattern]:
        """Maintain node coverage of the current explanation nodes by patterns."""
        current = induced_subgraph(graph, selected)
        covered = matcher.covered_by_set(patterns, current)
        uncovered = set(current.nodes) - covered
        updated = list(patterns)
        if uncovered:
            fresh = self.pattern_generator.generate_incremental(
                current,
                new_node if new_node in selected else next(iter(uncovered)),
                updated,
                hops=max(1, self.config.diversity_hops),
            )
            known = {pattern.canonical_key() for pattern in updated}
            for pattern in fresh:
                if pattern.canonical_key() not in known:
                    updated.append(pattern)
                    known.add(pattern.canonical_key())
            # Guarantee coverage with singleton patterns for anything left.
            matcher.invalidate()
            still_uncovered = set(current.nodes) - matcher.covered_by_set(updated, current)
            for node_type in sorted({current.node_type(node) for node in still_uncovered}):
                singleton = GraphPattern()
                singleton.add_node(0, node_type)
                if singleton.canonical_key() not in known:
                    updated.append(singleton)
                    known.add(singleton.canonical_key())
        # Swap out patterns that no longer contribute coverage (largest first).
        matcher.invalidate()
        pruned: list[GraphPattern] = []
        covered_so_far: set[int] = set()
        for pattern in sorted(updated, key=lambda p: -p.size()):
            contribution = matcher.covered_nodes(pattern, current) - covered_so_far
            if contribution:
                pruned.append(pattern)
                covered_so_far |= contribution
        matcher.invalidate()
        for index, pattern in enumerate(pruned):
            pattern.pattern_id = index
        return pruned

    def _process_batch(
        self,
        batch: Sequence[int],
        selected: set[int],
        backup: set[int],
        patterns: list[GraphPattern],
        analysis: GraphAnalysis,
        matcher: IncrementalMatcher,
        seen_graph: Graph,
        graph: Graph,
        label: int,
        upper_bound: int,
    ) -> tuple[set[int], list[GraphPattern]]:
        """Batched per-arrival work: one block of the node stream.

        ``VpExtend`` verdicts for the whole block are primed with one batched
        model probe against the current node cache; the swap rule then runs
        per node against the packed coverage kernels.  The node cache changes
        rarely (a swap needs gain >= 2x loss), so whenever it *does* change
        the not-yet-processed suffix is re-verified against the new cache —
        keeping the outcome identical to the per-node oracle loop.
        """
        pending = list(batch)
        while pending:
            verdicts = self._vp_extend_many(pending, selected, seen_graph, label)
            restart_at: int | None = None
            for index, node in enumerate(pending):
                backup.add(node)
                if not verdicts[index]:
                    continue
                updated = self._inc_update_vs(
                    node, selected, analysis, patterns, matcher, seen_graph, upper_bound
                )
                if updated != selected:
                    selected = updated
                    if node in selected:
                        patterns = self._inc_update_p(node, selected, patterns, graph, matcher)
                    restart_at = index + 1
                    break
            if restart_at is None:
                break
            pending = pending[restart_at:]
        return selected, patterns

    # ------------------------------------------------------------------
    # per-graph streaming pass
    # ------------------------------------------------------------------
    def explain_graph(
        self,
        graph: Graph,
        label: int | None = None,
        node_order: Sequence[int] | None = None,
        record_history: bool = False,
    ) -> tuple[ExplanationSubgraph | None, list[GraphPattern], list[dict]]:
        """Process one graph's node stream.

        Returns the maintained explanation subgraph (or ``None`` when the
        lower coverage bound could not be met), the maintained pattern set,
        and — when ``record_history`` is set — one snapshot per batch with the
        seen fraction and the current explainability (the anytime curve of
        Fig. 9f).
        """
        if graph.num_nodes() == 0:
            return None, [], []
        if label is None:
            label = self.model.predict(graph)
        bound = self.config.bound_for(label)

        order = list(node_order) if node_order is not None else list(graph.nodes)
        if node_order is None:
            # A fresh seeded generator per graph keeps per-graph streams
            # independent of database iteration order.
            random.Random(self.seed).shuffle(order)

        selected: set[int] = set()
        backup: set[int] = set()
        patterns: list[GraphPattern] = []
        matcher = IncrementalMatcher()
        history: list[dict] = []
        seen: list[int] = []
        analysis: GraphAnalysis | None = None

        for start in range(0, len(order), self.batch_size):
            batch = order[start : start + self.batch_size]
            seen.extend(batch)
            seen_graph = induced_subgraph(graph, seen)
            # IncEVerify: refresh influence/diversity on the seen fraction.
            analysis = build_analysis(self.model, seen_graph, self.config)
            if self._stream_batched():
                selected, patterns = self._process_batch(
                    batch, selected, backup, patterns, analysis, matcher,
                    seen_graph, graph, label, bound.upper,
                )
            else:
                for node in batch:
                    backup.add(node)
                    if not self._vp_extend(node, selected, seen_graph, label):
                        continue
                    updated = self._inc_update_vs(
                        node, selected, analysis, patterns, matcher, seen_graph, bound.upper
                    )
                    if updated != selected:
                        selected = updated
                        if node in selected:
                            patterns = self._inc_update_p(node, selected, patterns, graph, matcher)
            if record_history:
                history.append(
                    {
                        "seen_fraction": len(seen) / graph.num_nodes(),
                        "selected_nodes": len(selected),
                        "explainability": analysis.explainability(selected),
                        "num_patterns": len(patterns),
                    }
                )

        # Post-processing: meet the lower bound from the backup set.  The
        # lazy (CELF) top-up picks node sets identical to the eager loop; the
        # eager loop stays as the A/B efficiency baseline.
        if analysis is not None:
            if self.config.selection_strategy == "lazy":
                if len(selected) < bound.lower and backup - selected:
                    selected = lazy_greedy_select(
                        analysis,
                        sorted(backup - selected),
                        selected,
                        bound.lower,
                        lambda nodes, current: self._vp_extend_many(nodes, current, graph, label),
                        lambda tied, current: min(tied),
                    )
            else:
                while len(selected) < bound.lower and backup - selected:
                    usable = [
                        node
                        for node in backup - selected
                        if self._vp_extend(node, selected, graph, label)
                    ]
                    if not usable:
                        break
                    gains = analysis.marginal_gains(selected, usable)
                    best = max(
                        range(len(usable)), key=lambda slot: (float(gains[slot]), -usable[slot])
                    )
                    selected.add(usable[best])
            if selected:
                patterns = self._inc_update_p(
                    next(iter(selected)), selected, patterns, graph, matcher
                )

        if not selected or len(selected) < bound.lower:
            return None, patterns, history

        final_analysis = build_analysis(self.model, graph, self.config)
        subgraph = ExplanationSubgraph(
            source_graph=graph,
            nodes=selected,
            label=label,
            explainability=final_analysis.explainability(selected),
        )
        self.everify.annotate(subgraph)
        return subgraph, patterns, history

    # ------------------------------------------------------------------
    # shared label prediction
    # ------------------------------------------------------------------
    def _predicted_labels(self, graphs: Sequence[Graph]) -> list[int]:
        """Predicted label per graph (batched under the lazy strategy)."""
        if self.config.selection_strategy == "lazy" and sparse_enabled() and len(graphs) > 1:
            return self.model.predict_batch(graphs)
        return [self.model.predict(graph) for graph in graphs]


class _WeakMaintainerHook:
    """Database subscription hook holding its maintainer only weakly.

    A database can outlive many maintainers (e.g. the in-process
    experiment-context cache); a dropped maintainer must not be pinned
    alive — paying a full streaming pass per mutation for views nobody
    reads — just because ``detach()`` was never called.
    """

    def __init__(self, maintainer: "ViewMaintainer", database: GraphDatabase) -> None:
        self._ref = weakref.ref(maintainer)
        self._database = weakref.ref(database)

    def __call__(self, delta: "DatabaseDelta") -> None:
        maintainer = self._ref()
        if maintainer is not None:
            maintainer.apply_delta(delta)
            return
        # Target collected without detach(): prune this dead hook so the
        # long-lived database does not accumulate no-op callbacks.
        database = self._database()
        if database is not None:
            database.unsubscribe(self)


@dataclass
class MaintainedExplanation:
    """One live "coverage row" of the maintained view state.

    Everything the streaming pass produced for one graph — its node cache as
    an :class:`ExplanationSubgraph` (``None`` when the lower coverage bound
    was not met), its pattern set, its anytime history, and cost accounting —
    retained so that database mutations never re-stream unaffected graphs.
    """

    graph_id: int | None
    label: int | None
    graph: Graph
    subgraph: ExplanationSubgraph | None
    patterns: list[GraphPattern] = field(default_factory=list)
    history: list[dict] = field(default_factory=list)
    stored_label: int | None = None
    runtime_seconds: float = 0.0
    # Materialised explanation subgraph, cached so repeated verification
    # passes reuse one graph object (and the coverage matcher's memo keys,
    # which embed object identity, actually hit).
    _materialized: Graph | None = None

    def pattern_keys(self) -> set[tuple]:
        return {pattern.canonical_key() for pattern in self.patterns}

    def materialized_subgraph(self) -> Graph | None:
        if self.subgraph is None:
            return None
        if self._materialized is None:
            self._materialized = self.subgraph.subgraph()
        return self._materialized


class ViewMaintainer:
    """Live StreamGVEX state with delta-driven incremental repair.

    Parameters
    ----------
    model / config / batch_size / seed:
        Forwarded to a fresh :class:`NodeStreamProcessor` (ignored when
        ``processor`` is given).
    processor:
        An existing processor to stream through — e.g. a
        :class:`~repro.core.streaming.StreamGVEX` instance, so its warm
        ``EVerify`` memo and any subclass policy overrides are reused.
    labels:
        Restrict maintenance to these group labels (``None`` = maintain a
        view for every label that occurs).
    label_source:
        ``"predicted"`` (default) groups graphs by the model-assigned label,
        matching ``StreamGVEX.explain``'s semantics — a ground-truth relabel
        is then pure bookkeeping.  ``"stored"`` groups by the database's
        ground-truth label, so a relabel delta moves the graph between label
        groups and re-streams it (one graph's work) under the new label.
    record_history:
        Record the per-batch anytime curve for every streamed graph.
    label_predictor:
        Optional ``graph -> int | None`` callable consulted before running
        the model for a graph's predicted label — lets an owner with a
        warm prediction memo (the service) avoid a duplicate forward pass
        per ingested graph.  A ``None`` return falls back to the model.
    """

    def __init__(
        self,
        model: GNNClassifier | None = None,
        config: Configuration | None = None,
        *,
        processor: NodeStreamProcessor | None = None,
        batch_size: int = DEFAULT_STREAM_BATCH_SIZE,
        seed: int | None = None,
        labels: Iterable[int] | None = None,
        label_source: str = "predicted",
        record_history: bool = False,
        label_predictor=None,
    ) -> None:
        if processor is None:
            if model is None:
                raise ExplanationError(
                    "ViewMaintainer needs a model (or an existing NodeStreamProcessor)"
                )
            processor = NodeStreamProcessor(model, config, batch_size=batch_size, seed=seed)
        if label_source not in _LABEL_SOURCES:
            raise ExplanationError(
                f"label_source must be one of {_LABEL_SOURCES}, got {label_source!r}"
            )
        self.processor = processor
        self.model = processor.model
        self.config = processor.config
        self.labels = frozenset(labels) if labels is not None else None
        self.label_source = label_source
        self.record_history = record_history
        self.label_predictor = label_predictor
        # Rows are keyed by an internal monotonic id (graph ids can be None
        # or — in hand-built databases — duplicated); _by_graph_id maps a
        # stable graph id to its latest row for delta lookups.
        self._rows: dict[int, MaintainedExplanation] = {}
        self._by_graph_id: dict[int, int] = {}
        self._next_row_id = 0
        # Lazily (re)assembled views + the labels whose cache is stale.
        self._views: dict[int, ExplanationView] = {}
        self._dirty: set[int] = set()
        self.database: GraphDatabase | None = None
        self._subscription = None
        # Optional external mutex (any context manager): when set, every
        # delta application runs inside it, so an owner that reads views
        # under the same lock (the service) can never observe a torn
        # repair — also for mutations made directly on the database.
        self.lock = None
        # Long-lived coverage matcher for post-mutation re-verification;
        # entries for retracted graphs are forgotten eagerly (removal-safe).
        self._matcher = IncrementalMatcher()
        # Counters surfaced by stats(): how much streaming work the deltas
        # actually cost, versus what a recompute-per-mutation would have.
        self.graphs_streamed = 0
        self.rows_retracted = 0
        self.deltas_applied = 0
        self.patterns_orphaned = 0
        self.stream_seconds = 0.0

    # ------------------------------------------------------------------
    # database attachment
    # ------------------------------------------------------------------
    def attach(self, database: GraphDatabase, *, replay: bool = True) -> "ViewMaintainer":
        """Subscribe to a database's delta stream (optionally replaying it).

        With ``replay`` (the default), every graph already in the database is
        streamed through the swap rules — StreamGVEX's single pass *is* this
        replay.  Afterwards each mutation repairs the views incrementally.
        """
        if self.database is not None:
            raise ExplanationError("this ViewMaintainer is already attached to a database")
        self.database = database
        self._subscription = database.subscribe(_WeakMaintainerHook(self, database))
        if replay:
            self.refresh()
        return self

    def detach(self) -> None:
        """Unsubscribe from the attached database (state is kept)."""
        if self.database is not None and self._subscription is not None:
            self.database.unsubscribe(self._subscription)
        self.database = None
        self._subscription = None

    def refresh(self) -> None:
        """Stream every not-yet-maintained graph of the attached database.

        Predictions are batched database-level (one message-passing pass per
        call) before the per-graph streaming passes run.
        """
        if self.database is None:
            raise ExplanationError("refresh() needs an attached database")
        missing = [
            graph
            for graph in self.database.graphs
            if graph.graph_id not in self._by_graph_id and graph.num_nodes() > 0
        ]
        if not missing:
            return
        predicted = self.processor._predicted_labels(missing)
        labels = dict(zip(self.database.graphs, self.database.labels))
        for graph, assigned in zip(missing, predicted):
            self.ingest(graph, stored_label=labels.get(graph), predicted=assigned)

    # ------------------------------------------------------------------
    # delta application
    # ------------------------------------------------------------------
    def apply_delta(self, delta: DatabaseDelta) -> dict[str, Any]:
        """Repair the maintained views for one database mutation."""
        if self.lock is not None:
            with self.lock:
                return self._apply_delta(delta)
        return self._apply_delta(delta)

    def _apply_delta(self, delta: DatabaseDelta) -> dict[str, Any]:
        self.deltas_applied += 1
        if delta.kind == "add":
            if delta.graph is None:
                raise ExplanationError("add delta carries no graph object")
            row = self.ingest(delta.graph, stored_label=delta.label)
            return {"op": "add", "graph_id": delta.graph_id, "streamed": row is not None}
        if delta.kind == "remove":
            report = self.retract(delta.graph_id)
            return {"op": "remove", "graph_id": delta.graph_id, **(report or {})}
        report = self.relabel(delta.graph_id, delta.label, old_label=delta.old_label)
        return {"op": "relabel", "graph_id": delta.graph_id, **(report or {})}

    def ingest(
        self,
        graph: Graph,
        *,
        stored_label: int | None = None,
        predicted: int | None = None,
    ) -> MaintainedExplanation | None:
        """Stream one arriving graph through the swap rules (IncUpdateVS/P).

        The cost is one StreamGVEX per-graph pass — independent of the
        database size.  Returns the new row, or ``None`` when the graph's
        group label falls outside the maintained ``labels`` restriction.
        """
        # Re-ingest-replaces-row semantics only apply when tracking a
        # database (there, ids are stable and unique).  A standalone replay
        # (StreamGVEX.explain_label over a caller-supplied graph list) must
        # process every graph even when ids collide across sources.
        if (
            self.database is not None
            and graph.graph_id is not None
            and graph.graph_id in self._by_graph_id
        ):
            self.retract(graph.graph_id)
        group = self._group_label(graph, stored_label=stored_label, predicted=predicted)
        if group is None or (self.labels is not None and group not in self.labels):
            return None
        start = time.perf_counter()
        subgraph, patterns, history = self.processor.explain_graph(
            graph, group, record_history=self.record_history
        )
        elapsed = time.perf_counter() - start
        row = MaintainedExplanation(
            graph_id=graph.graph_id,
            label=group,
            graph=graph,
            subgraph=subgraph,
            patterns=patterns,
            history=history,
            stored_label=stored_label,
            runtime_seconds=elapsed,
        )
        row_id = self._next_row_id
        self._next_row_id += 1
        self._rows[row_id] = row
        if graph.graph_id is not None:
            self._by_graph_id[graph.graph_id] = row_id
        self.graphs_streamed += 1
        self.stream_seconds += elapsed
        self._mark_dirty(group)
        return row

    def retract(self, graph_id: int | None) -> dict[str, Any] | None:
        """Retract a leaving graph's coverage rows (bounded repair).

        Drops the graph's row, counts the patterns it orphaned (canonical
        keys no remaining row of the label witnesses — they disappear from
        the reassembled view), and marks the label dirty.  No other graph is
        re-streamed: per-graph streaming state is independent, so removal
        repair is exact with O(label group) bookkeeping.
        """
        row_id = self._by_graph_id.pop(graph_id, None) if graph_id is not None else None
        row = self._rows.pop(row_id, None) if row_id is not None else None
        if row is None:
            return None
        self.rows_retracted += 1
        self._matcher.forget_graph(graph_id)
        surviving: set[tuple] = set()
        for other in self._rows.values():
            if other.label == row.label:
                surviving |= other.pattern_keys()
        orphaned = row.pattern_keys() - surviving
        self.patterns_orphaned += len(orphaned)
        if row.label is not None:
            self._mark_dirty(row.label)
        return {
            "label": row.label,
            "orphaned_patterns": len(orphaned),
            "remaining_rows": sum(1 for r in self._rows.values() if r.label == row.label),
        }

    def relabel(
        self, graph_id: int | None, label: int | None, *, old_label: int | None = None
    ) -> dict[str, Any] | None:
        """Move a relabelled graph between label groups.

        Under ``label_source="stored"`` the graph is re-streamed under its
        new group label (one graph's work); under ``"predicted"`` the group
        is model-assigned, so a ground-truth relabel is pure bookkeeping.
        """
        row_id = self._by_graph_id.get(graph_id) if graph_id is not None else None
        row = self._rows.get(row_id) if row_id is not None else None
        if row is None:
            # Not maintained yet — under stored-label grouping the relabel may
            # move the graph *into* a maintained group, so stream it now.
            if (
                self.label_source == "stored"
                and self.database is not None
                and self.database.has_graph(graph_id)
                and (self.labels is None or label in self.labels)
            ):
                streamed = self.ingest(
                    self.database.graph_by_id(graph_id), stored_label=label
                )
                return {"label": label, "old_label": old_label, "restreamed": streamed is not None}
            return None
        previous = row.stored_label if row.stored_label is not None else old_label
        row.stored_label = label
        if self.label_source != "stored" or label == row.label:
            return {"label": row.label, "restreamed": False}
        graph = row.graph
        self.retract(graph_id)
        streamed = self.ingest(graph, stored_label=label)
        return {
            "label": label,
            "old_label": previous,
            "restreamed": streamed is not None,
        }

    # ------------------------------------------------------------------
    # view assembly
    # ------------------------------------------------------------------
    def maintained_labels(self) -> list[int]:
        """Sorted labels for which the maintainer currently holds rows."""
        return sorted({row.label for row in self._rows.values() if row.label is not None})

    def view_for(self, label: int) -> ExplanationView:
        """The maintained two-tier view for one label (cached until dirty).

        Assembly mirrors ``StreamGVEX.explain_label`` exactly — subgraphs in
        database order, patterns deduplicated by canonical key in first-seen
        order — so the result is identical to a full recompute on the
        current database contents.
        """
        if label in self._dirty or label not in self._views:
            self._views[label] = self._build_view(label)
            self._dirty.discard(label)
        return self._views[label]

    def view_set(self) -> ExplanationViewSet:
        """Every maintained label's view as one queryable set."""
        views = ExplanationViewSet()
        for label in self.maintained_labels():
            views.add(self.view_for(label))
        return views

    def _ordered_rows(self) -> list[MaintainedExplanation]:
        """Rows in database order when attached, else in arrival order.

        Database order is what a full ``StreamGVEX.explain_label`` recompute
        would iterate, so following it keeps view assembly (subgraph order,
        pattern first-seen deduplication, float summation order) *identical*
        to the recompute even after relabels or remove-and-re-add cycles.
        """
        rows = list(self._rows.values())
        if self.database is None:
            return rows
        position = {graph.graph_id: idx for idx, graph in enumerate(self.database.graphs)}
        rows.sort(
            key=lambda row: position.get(
                row.graph_id if row.graph_id is not None else -1, len(position)
            )
        )
        return rows

    def _build_view(self, label: int) -> ExplanationView:
        rows = [row for row in self._ordered_rows() if row.label == label]
        subgraphs = [row.subgraph for row in rows if row.subgraph is not None]
        patterns: dict[tuple, GraphPattern] = {}
        for row in rows:
            for pattern in row.patterns:
                patterns.setdefault(pattern.canonical_key(), pattern)
        pattern_list = list(patterns.values())
        for index, pattern in enumerate(pattern_list):
            pattern.pattern_id = index
        histories = [row.history for row in rows] if self.record_history else []
        return ExplanationView(
            label=label,
            patterns=pattern_list,
            subgraphs=subgraphs,
            explainability=float(sum(subgraph.explainability for subgraph in subgraphs)),
            metadata={
                "algorithm": "StreamGVEX",
                "batch_size": self.processor.batch_size,
                "runtime_seconds": float(sum(row.runtime_seconds for row in rows)),
                "histories": histories,
            },
        )

    def verify_label(self, label: int) -> dict[str, Any]:
        """Re-verify the maintained invariants of one label's view.

        Checks, per row, that the pattern set still covers the explanation
        subgraph's nodes (constraint C1) and that the subgraph size honours
        the coverage bound — the post-removal sanity pass of the bounded
        repair path.  Returns a report; raises nothing.
        """
        matcher = self._matcher
        bound = self.config.bound_for(label)
        covered_rows = 0
        violations: list[dict[str, Any]] = []
        for row in self._rows.values():
            if row.label != label or row.subgraph is None:
                continue
            current = row.materialized_subgraph()
            covered = matcher.covered_by_set(row.patterns, current)
            if set(current.nodes) <= covered and bound.contains(len(row.subgraph.nodes)):
                covered_rows += 1
            else:
                violations.append(
                    {
                        "graph_id": row.graph_id,
                        "uncovered_nodes": sorted(set(current.nodes) - covered),
                        "size": len(row.subgraph.nodes),
                    }
                )
        return {
            "label": label,
            "rows_checked": covered_rows + len(violations),
            "violations": violations,
        }

    # ------------------------------------------------------------------
    # persistence (warm restarts through the ViewStore)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-serialisable snapshot of the full maintained state.

        Holds everything needed to warm-restart without re-streaming:
        per-row node sets, pattern payloads, histories and cost accounting,
        plus the configuration fingerprint (a restore under a different
        configuration must refuse rather than serve mismatched views).
        """
        return {
            "kind": SNAPSHOT_KIND,
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "config_fingerprint": self.config.fingerprint(),
            "batch_size": self.processor.batch_size,
            "seed": self.processor.seed,
            "label_source": self.label_source,
            "record_history": self.record_history,
            "labels": sorted(self.labels) if self.labels is not None else None,
            "database_version": self.database.version if self.database is not None else None,
            "rows": [self._row_payload(row) for row in self._rows.values()],
        }

    @staticmethod
    def _row_payload(row: MaintainedExplanation) -> dict[str, Any]:
        """One row's JSON-safe wire form (shared by snapshots and sharding)."""
        return {
            "graph_id": row.graph_id,
            "label": row.label,
            "stored_label": row.stored_label,
            "nodes": sorted(row.subgraph.nodes) if row.subgraph is not None else None,
            "explainability": (
                row.subgraph.explainability if row.subgraph is not None else None
            ),
            "consistent": row.subgraph.consistent if row.subgraph is not None else None,
            "counterfactual": (
                row.subgraph.counterfactual if row.subgraph is not None else None
            ),
            "patterns": [pattern.to_dict() for pattern in row.patterns],
            "history": row.history,
            "runtime_seconds": row.runtime_seconds,
        }

    def row_payloads(self, label: int | None = None) -> list[dict[str, Any]]:
        """Per-row wire payloads in database order (the sharded-assembly feed).

        Each entry is exactly one :meth:`snapshot` row.  Because the
        per-graph streaming pass shuffles every graph's node stream with a
        *fresh* seeded generator, rows are independent of database iteration
        order — a front-end holding rows from several maintainers (one per
        database shard) can reorder them by its own global database order
        and hand them to :func:`assemble_view_from_rows`, reproducing
        :meth:`view_for`'s assembly bit-for-bit.
        """
        rows = self._ordered_rows()
        if label is not None:
            rows = [row for row in rows if row.label == label]
        return [self._row_payload(row) for row in rows]

    @classmethod
    def from_snapshot(
        cls,
        payload: dict[str, Any],
        model: GNNClassifier,
        database: GraphDatabase,
        *,
        config: Configuration | None = None,
        processor: NodeStreamProcessor | None = None,
    ) -> "ViewMaintainer":
        """Warm-restart a maintainer from a :meth:`snapshot` payload.

        Rows whose graphs are still present in the database are restored
        without re-streaming; graphs the snapshot does not know (arrivals
        after the snapshot) are streamed fresh; snapshot rows for graphs no
        longer present are dropped.  Raises when the snapshot's kind/schema
        or configuration fingerprint does not match.
        """
        if not isinstance(payload, dict) or payload.get("kind") != SNAPSHOT_KIND:
            raise ExplanationError("payload is not a ViewMaintainer snapshot")
        if payload.get("schema_version") != SNAPSHOT_SCHEMA_VERSION:
            raise ExplanationError(
                f"unsupported maintainer snapshot schema "
                f"{payload.get('schema_version')!r} (expected {SNAPSHOT_SCHEMA_VERSION})"
            )
        maintainer = cls(
            model,
            config,
            processor=processor,
            batch_size=int(payload.get("batch_size", 8)),
            seed=payload.get("seed"),
            labels=payload.get("labels"),
            label_source=payload.get("label_source", "predicted"),
            record_history=bool(payload.get("record_history", False)),
        )
        fingerprint = maintainer.config.fingerprint()
        if payload.get("config_fingerprint") != fingerprint:
            raise ExplanationError(
                "maintainer snapshot was taken under a different configuration "
                f"({payload.get('config_fingerprint')} != {fingerprint}); "
                "rebuild instead of restoring"
            )
        by_id = {graph.graph_id: graph for graph in database.graphs}
        restored: dict[int | None, MaintainedExplanation] = {}
        for entry in payload.get("rows", []):
            graph = by_id.get(entry.get("graph_id"))
            if graph is None:
                continue
            nodes = entry.get("nodes")
            # Content-level identity guard: a snapshot row taken over a
            # *different* graph that happens to share the id (databases
            # assign overlapping auto ids) must be dropped — the graph is
            # then re-streamed — rather than resurrected as a wrong view.
            if nodes is not None and not set(nodes) <= set(graph.nodes):
                continue
            subgraph = None
            if nodes is not None:
                subgraph = ExplanationSubgraph(
                    source_graph=graph,
                    nodes=set(nodes),
                    label=entry["label"],
                    explainability=float(entry.get("explainability") or 0.0),
                    consistent=entry.get("consistent"),
                    counterfactual=entry.get("counterfactual"),
                )
            restored[graph.graph_id] = MaintainedExplanation(
                graph_id=graph.graph_id,
                label=entry.get("label"),
                graph=graph,
                subgraph=subgraph,
                patterns=[GraphPattern.from_dict(p) for p in entry.get("patterns", [])],
                history=list(entry.get("history", [])),
                stored_label=entry.get("stored_label"),
                runtime_seconds=float(entry.get("runtime_seconds", 0.0)),
            )
        # Install rows in *database order* so view assembly matches a fresh
        # replay exactly, then stream anything the snapshot did not cover.
        for graph in database.graphs:
            row = restored.get(graph.graph_id)
            if row is None:
                continue
            row_id = maintainer._next_row_id
            maintainer._next_row_id += 1
            maintainer._rows[row_id] = row
            maintainer._by_graph_id[graph.graph_id] = row_id
        maintainer._dirty.update(
            row.label for row in maintainer._rows.values() if row.label is not None
        )
        maintainer.attach(database, replay=False)
        maintainer.refresh()
        return maintainer

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _group_label(
        self, graph: Graph, *, stored_label: int | None, predicted: int | None
    ) -> int | None:
        if self.label_source == "stored" and stored_label is not None:
            return stored_label
        if predicted is not None:
            return predicted
        if graph.num_nodes() == 0:
            return None
        if self.label_predictor is not None:
            known = self.label_predictor(graph)
            if known is not None:
                return known
        return self.model.predict(graph)

    def _mark_dirty(self, label: int) -> None:
        self._dirty.add(label)

    def stats(self) -> dict[str, Any]:
        """Maintenance counters (how much work the deltas actually cost)."""
        return {
            "rows": len(self._rows),
            "maintained_labels": self.maintained_labels(),
            "graphs_streamed": self.graphs_streamed,
            "rows_retracted": self.rows_retracted,
            "deltas_applied": self.deltas_applied,
            "patterns_orphaned": self.patterns_orphaned,
            "stream_seconds": self.stream_seconds,
            "attached": self.database is not None,
            "label_source": self.label_source,
        }


# ----------------------------------------------------------------------
# cross-process view assembly (the sharded serving tier's identity lever)
# ----------------------------------------------------------------------
def assemble_view_from_rows(
    rows: Sequence[dict[str, Any]],
    label: int,
    graphs_by_id: dict[int | None, Graph],
    *,
    batch_size: int = DEFAULT_STREAM_BATCH_SIZE,
) -> ExplanationView:
    """Assemble one label's two-tier view from maintainer row payloads.

    The cross-process half of :meth:`ViewMaintainer.view_for`: a shard
    router collects :meth:`ViewMaintainer.row_payloads` from per-shard
    maintainers, orders them by its *global* database order, and this
    function applies the exact assembly law of ``_build_view`` — subgraphs
    in row order, patterns deduplicated by canonical key in first-seen
    order with reassigned ids, explainability summed in row order.  Since
    each row is computed independently of database iteration order (fresh
    seeded node-stream shuffle per graph), the result is bit-identical to
    a single maintainer (and hence a full ``StreamGVEX`` recompute) over
    the unsharded database.

    ``rows`` entries whose label differs are skipped, so callers may hand
    over unfiltered row lists.  Raises when a row references a graph the
    assembling database does not hold — shard routing and assembly must
    agree on membership, silently dropping a witness would corrupt the
    view.
    """
    subgraphs: list[ExplanationSubgraph] = []
    patterns: dict[tuple, GraphPattern] = {}
    runtime = 0.0
    for entry in rows:
        if entry.get("label") != label:
            continue
        runtime += float(entry.get("runtime_seconds", 0.0))
        nodes = entry.get("nodes")
        if nodes is not None:
            graph = graphs_by_id.get(entry.get("graph_id"))
            if graph is None:
                raise ExplanationError(
                    f"cannot assemble the view for label {label}: row graph "
                    f"{entry.get('graph_id')!r} is not in the assembling "
                    "database"
                )
            subgraphs.append(
                ExplanationSubgraph(
                    source_graph=graph,
                    nodes=set(nodes),
                    label=entry["label"],
                    explainability=float(entry.get("explainability") or 0.0),
                    consistent=entry.get("consistent"),
                    counterfactual=entry.get("counterfactual"),
                )
            )
        for payload in entry.get("patterns", []):
            pattern = GraphPattern.from_dict(payload)
            patterns.setdefault(pattern.canonical_key(), pattern)
    pattern_list = list(patterns.values())
    for index, pattern in enumerate(pattern_list):
        pattern.pattern_id = index
    return ExplanationView(
        label=label,
        patterns=pattern_list,
        subgraphs=subgraphs,
        explainability=float(sum(subgraph.explainability for subgraph in subgraphs)),
        metadata={
            "algorithm": "StreamGVEX",
            "batch_size": batch_size,
            "runtime_seconds": float(runtime),
            "histories": [],
        },
    )
