"""Deterministic fault injection for the serving tier.

The production code is instrumented with *named injection points* — cheap
calls to :func:`fault_point` at every real failure surface (WAL append /
fsync / rotate, view-store disk spill, shared-memory arena attach, worker
pipe traffic and request handling, replication fetches, HTTP handlers).
With no plan active a point is a single module-global ``None`` check, so
the instrumented paths stay at production speed.

A :class:`FaultPlan` arms a set of :class:`FaultRule` entries against those
points.  Every schedule is **deterministic under a fixed seed**: a rule
fires on the Nth hit of its point, with probability ``p`` drawn from a
per-rule seeded RNG, or for a wall-clock window after activation — never
from ambient randomness.  Replaying the same plan against the same request
schedule reproduces the same failures, which is what makes the chaos suite
(``tests/integration/test_chaos.py``) able to assert exact invariants.

Actions:

``raise``
    Raise :class:`~repro.exceptions.FaultInjected` at the point.
``hang``
    Sleep long enough to trip the caller's timeout (default 3600 s,
    configurable via ``delay_seconds``) — models a stuck worker or disk.
``delay``
    Sleep ``delay_seconds`` (default 0.05) and continue — models slow I/O.
``corrupt``
    Deterministically flip bytes in the data flowing through the point
    (points that carry data pass it to :func:`fault_point`) — models
    torn/bit-rotted writes.
``kill``
    ``SIGKILL`` the current process — models an OOM kill or hard crash.
    Only meaningful inside shard worker processes.

Activation is process-global: :func:`activate` installs a plan,
:func:`deactivate` removes it.  Plans also travel through configuration
(``Configuration(fault_plan={...})``) and the ``REPRO_FAULT_PLAN``
environment variable (inline JSON, or ``@/path/to/plan.json``), which is
how spawned shard workers inherit the plan of the process that launched
them.
"""

from __future__ import annotations

import fnmatch
import json
import os
import random
import signal
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import ConfigurationError, FaultInjected

__all__ = [
    "FAULT_ACTIONS",
    "FaultPlan",
    "FaultRule",
    "activate",
    "activate_from_config",
    "active_plan",
    "deactivate",
    "fault_point",
    "reset",
]

FAULT_ACTIONS = ("raise", "hang", "delay", "corrupt", "kill")

#: Environment variable carrying a plan: inline JSON or ``@path``.
PLAN_ENV = "REPRO_FAULT_PLAN"

_HANG_DEFAULT_SECONDS = 3600.0
_DELAY_DEFAULT_SECONDS = 0.05


@dataclass
class FaultRule:
    """One deterministic failure schedule bound to an injection point.

    Parameters
    ----------
    point:
        Injection point name, or an ``fnmatch`` glob (``"wal.*"``).
    action:
        One of :data:`FAULT_ACTIONS`.
    nth:
        Fire exactly on the Nth matching hit (1-based).
    probability:
        Fire each hit with this probability, drawn from a per-rule RNG
        seeded by the plan seed — deterministic across replays.
    duration:
        Fire only within the first ``duration`` seconds after activation.
    times:
        Cap on total fires (default: 1 when ``nth`` is set, unlimited
        otherwise).
    match:
        Only consider hits whose context string contains this substring
        (points pass a lazily-built context, e.g. the worker op + payload),
        which lets a plan target one specific request.
    delay_seconds:
        Sleep length for ``delay``/``hang`` actions (``hang`` defaults to
        3600 s when unset).
    message:
        Free-form note included in the raised error.
    """

    point: str
    action: str
    nth: int | None = None
    probability: float | None = None
    duration: float | None = None
    times: int | None = None
    match: str | None = None
    delay_seconds: float | None = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if not self.point:
            raise ConfigurationError("fault rule needs a non-empty point name")
        if self.nth is not None and self.nth < 1:
            raise ConfigurationError("fault rule 'nth' is 1-based and must be >= 1")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("fault rule 'probability' must be in [0, 1]")
        if self.duration is not None and self.duration < 0:
            raise ConfigurationError("fault rule 'duration' must be >= 0")
        if self.times is not None and self.times < 1:
            raise ConfigurationError("fault rule 'times' must be >= 1")

    def matches_point(self, name: str) -> bool:
        return self.point == name or fnmatch.fnmatchcase(name, self.point)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"point": self.point, "action": self.action}
        for key in ("nth", "probability", "duration", "times", "match", "delay_seconds"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.message:
            payload["message"] = self.message
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultRule":
        if not isinstance(payload, dict):
            raise ConfigurationError(f"fault rule must be a dict, got {type(payload).__name__}")
        known = {
            "point", "action", "nth", "probability", "duration",
            "times", "match", "delay_seconds", "message",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(f"unknown fault rule keys: {sorted(unknown)}")
        missing = {"point", "action"} - set(payload)
        if missing:
            raise ConfigurationError(f"fault rule missing keys: {sorted(missing)}")
        return cls(**payload)


@dataclass
class _RuleState:
    """Mutable per-rule counters, kept outside the (shareable) rule."""

    hits: int = 0
    fires: int = 0
    rng: random.Random = field(default_factory=random.Random)


class FaultPlan:
    """A seeded set of fault rules, activatable process-globally."""

    def __init__(self, rules: list[FaultRule] | tuple[FaultRule, ...], *, seed: int = 0) -> None:
        self.rules = tuple(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._states = [
            _RuleState(rng=random.Random((self.seed << 16) ^ zlib.crc32(rule.point.encode())))
            for rule in self.rules
        ]
        self._activated_at: float | None = None

    # -- construction -----------------------------------------------------

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ConfigurationError(f"fault plan must be a dict, got {type(payload).__name__}")
        unknown = set(payload) - {"rules", "seed"}
        if unknown:
            raise ConfigurationError(f"unknown fault plan keys: {sorted(unknown)}")
        rules = [FaultRule.from_dict(rule) for rule in payload.get("rules", [])]
        return cls(rules, seed=payload.get("seed", 0))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"fault plan is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    @classmethod
    def from_env(cls, value: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULT_PLAN`` value: inline JSON or ``@path``."""
        value = value.strip()
        if value.startswith("@"):
            path = value[1:]
            try:
                text = open(path, encoding="utf-8").read()
            except OSError as error:
                raise ConfigurationError(
                    f"cannot read fault plan file {path!r}: {error}"
                ) from error
            return cls.from_json(text)
        return cls.from_json(value)

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    # -- runtime ----------------------------------------------------------

    def _on_activate(self) -> None:
        with self._lock:
            self._activated_at = time.monotonic()
            for index, rule in enumerate(self.rules):
                self._states[index] = _RuleState(
                    rng=random.Random((self.seed << 16) ^ zlib.crc32(rule.point.encode()))
                )

    def _should_fire(
        self, name: str, context: str | Callable[[], str] | None
    ) -> FaultRule | None:
        """Return the first rule that fires for this hit, updating counters."""
        context_value: str | None = None
        context_built = context is None
        with self._lock:
            now = time.monotonic()
            for rule, state in zip(self.rules, self._states):
                if not rule.matches_point(name):
                    continue
                if rule.match is not None:
                    if not context_built:
                        context_value = context() if callable(context) else context
                        context_built = True
                    if context_value is None or rule.match not in context_value:
                        continue
                state.hits += 1
                times_cap = rule.times if rule.times is not None else (
                    1 if rule.nth is not None else None
                )
                if times_cap is not None and state.fires >= times_cap:
                    continue
                if rule.nth is not None and state.hits != rule.nth:
                    continue
                if rule.duration is not None and self._activated_at is not None:
                    if now - self._activated_at > rule.duration:
                        continue
                if rule.probability is not None and state.rng.random() >= rule.probability:
                    continue
                state.fires += 1
                return rule
        return None

    def stats(self) -> list[dict[str, Any]]:
        """Hit/fire counters per rule — chaos tests assert on these."""
        with self._lock:
            return [
                {"point": rule.point, "action": rule.action,
                 "hits": state.hits, "fires": state.fires}
                for rule, state in zip(self.rules, self._states)
            ]


# -- process-global activation -------------------------------------------

_PLAN: FaultPlan | None = None
_ENV_CHECKED = False
_ACTIVATION_LOCK = threading.Lock()


def activate(plan: FaultPlan) -> FaultPlan:
    """Install *plan* as the process-global fault plan (resets counters)."""
    global _PLAN, _ENV_CHECKED
    with _ACTIVATION_LOCK:
        plan._on_activate()
        _PLAN = plan
        _ENV_CHECKED = True
    return plan


def activate_from_config(config: Any) -> FaultPlan | None:
    """Activate ``config.fault_plan`` when one is set (no-op otherwise)."""
    payload = getattr(config, "fault_plan", None)
    if payload is None:
        return None
    return activate(FaultPlan.from_dict(payload))


def deactivate() -> None:
    """Remove the active plan (and stop consulting the environment)."""
    global _PLAN, _ENV_CHECKED
    with _ACTIVATION_LOCK:
        _PLAN = None
        _ENV_CHECKED = True


def reset() -> None:
    """Forget the plan *and* re-arm environment loading (test helper)."""
    global _PLAN, _ENV_CHECKED
    with _ACTIVATION_LOCK:
        _PLAN = None
        _ENV_CHECKED = False


def active_plan() -> FaultPlan | None:
    return _PLAN


def _load_env_plan() -> None:
    global _PLAN, _ENV_CHECKED
    with _ACTIVATION_LOCK:
        if _ENV_CHECKED:
            return
        _ENV_CHECKED = True
        value = os.environ.get(PLAN_ENV)
        if not value:
            return
        plan = FaultPlan.from_env(value)
        plan._on_activate()
        _PLAN = plan


def _execute(rule: FaultRule, name: str, data: Any) -> Any:
    note = f" ({rule.message})" if rule.message else ""
    if rule.action == "raise":
        raise FaultInjected(f"injected fault at {name}{note}", point=name)
    if rule.action == "delay":
        time.sleep(rule.delay_seconds if rule.delay_seconds is not None
                   else _DELAY_DEFAULT_SECONDS)
        return data
    if rule.action == "hang":
        time.sleep(rule.delay_seconds if rule.delay_seconds is not None
                   else _HANG_DEFAULT_SECONDS)
        return data
    if rule.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        raise FaultInjected(f"kill injected at {name} did not terminate", point=name)
    # corrupt: flip a deterministic byte pattern in the data flowing through.
    if data is None:
        raise FaultInjected(
            f"corrupt injected at {name}, which carries no data{note}", point=name
        )
    if isinstance(data, str):
        raw = bytearray(data.encode("utf-8"))
        corrupted = _flip(raw)
        return corrupted.decode("utf-8", errors="replace")
    if isinstance(data, (bytes, bytearray)):
        return bytes(_flip(bytearray(data)))
    raise FaultInjected(
        f"corrupt injected at {name} on unsupported payload type "
        f"{type(data).__name__}", point=name
    )


def _flip(raw: bytearray) -> bytearray:
    if not raw:
        return raw
    # Flip low bits at three deterministic offsets — enough to break any
    # CRC while keeping the payload printable for debugging.
    for offset in (len(raw) // 3, len(raw) // 2, (2 * len(raw)) // 3):
        raw[offset] ^= 0x01
    return raw


def fault_point(
    name: str,
    data: Any = None,
    context: str | Callable[[], str] | None = None,
) -> Any:
    """Consult the active plan at injection point *name*; returns *data*.

    The hot-path cost with no plan active is one global read and a branch.
    ``data`` (when the point carries any) is returned unchanged unless a
    ``corrupt`` rule fires, in which case the corrupted copy is returned.
    ``context`` — a string or a zero-argument callable built only when a
    rule needs it — lets rules target specific requests via ``match``.
    """
    plan = _PLAN
    if plan is None:
        if _ENV_CHECKED:
            return data
        _load_env_plan()
        plan = _PLAN
        if plan is None:
            return data
    rule = plan._should_fire(name, context)
    if rule is None:
        return data
    return _execute(rule, name, data)
