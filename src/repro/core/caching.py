"""Bounded memoisation helpers for the explainer hot loops.

The greedy tie-breakers and the counterfactual swap loop probe many
overlapping node subsets of the same source graph; memoising the label
probabilities by node set is what keeps those probes cheap.  On large graphs
an unbounded memo grows with O(|V|) entries *per greedy round*, so the cache
is a plain LRU with a configurable capacity
(:attr:`~repro.core.config.Configuration.label_probability_cache_size`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable
from typing import Generic, TypeVar

__all__ = [
    "LRUCache",
    "accumulate_cache_stats",
    "cache_aggregate",
    "reset_cache_aggregates",
    "with_hit_rate",
]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


class LRUCache(Generic[K, V]):
    """A minimal least-recently-used mapping.

    ``capacity <= 0`` disables storage entirely (every lookup misses), which
    is the behaviour ``label_probability_cache_size=0`` requests.
    """

    __slots__ = ("capacity", "_data", "hits", "misses")

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._data: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K, default: V | None = None) -> V | None:
        """Look up ``key``, refreshing its recency on a hit."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> None:
        """Insert ``key``, evicting the least recently used entry when full."""
        if self.capacity <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def resize(self, capacity: int) -> None:
        """Change the capacity in place, evicting LRU entries when shrinking.

        Existing entries survive a grow (or an unchanged capacity), so warm
        caches are not thrown away when a new explainer re-applies the same
        configuration knob.
        """
        self.capacity = int(capacity)
        if self.capacity <= 0:
            self._data.clear()
            return
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._data.clear()

    def stats(self) -> dict[str, int]:
        return {"size": len(self._data), "hits": self.hits, "misses": self.misses}


# ----------------------------------------------------------------------
# process-wide counter aggregation
# ----------------------------------------------------------------------
# Some hot caches are deliberately short-lived (the label-probability memo
# exists for one ``explain_graph`` call), so their counters vanish with the
# object.  Call sites fold them into this registry on the way out, and the
# service health endpoint reads the running totals.
_AGGREGATES: dict[str, dict[str, int]] = {}
_AGGREGATES_LOCK = threading.Lock()


def accumulate_cache_stats(name: str, cache: "LRUCache") -> None:
    """Fold a cache's hit/miss counters into the aggregate under ``name``."""
    with _AGGREGATES_LOCK:
        bucket = _AGGREGATES.setdefault(name, {"hits": 0, "misses": 0})
        bucket["hits"] += cache.hits
        bucket["misses"] += cache.misses


def cache_aggregate(name: str) -> dict[str, object]:
    """Running totals (plus hit rate) accumulated under ``name``."""
    with _AGGREGATES_LOCK:
        bucket = dict(_AGGREGATES.get(name, {"hits": 0, "misses": 0}))
    return with_hit_rate(bucket)


def reset_cache_aggregates() -> None:
    """Zero every aggregate (test isolation)."""
    with _AGGREGATES_LOCK:
        _AGGREGATES.clear()


def with_hit_rate(stats: dict) -> dict[str, object]:
    """Copy of a ``{hits, misses, ...}`` dict plus a ``hit_rate`` field.

    ``hit_rate`` is ``None`` when the cache has never been consulted —
    reporting 0.0 there would read as "everything missed".
    """
    result: dict[str, object] = dict(stats)
    total = int(stats.get("hits", 0)) + int(stats.get("misses", 0))
    result["hit_rate"] = round(int(stats.get("hits", 0)) / total, 4) if total else None
    return result
