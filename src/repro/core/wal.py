"""Durable write-ahead log for :class:`~repro.graphs.database.GraphDatabase` deltas.

PR 5 gave the database a bounded *in-memory* delta log — enough for live view
maintenance inside one process, but every mutation still dies with the
process.  This module persists that log: each delta is appended, as one JSONL
record, to an fsync'd segment file before the caller acknowledges the
mutation.  Crash recovery then replays the tail of the log on top of the last
snapshot and arrives at exactly the pre-crash state.

Layout
------
A WAL is a directory of segment files::

    wal-000000000000.jsonl
    wal-000000001024.jsonl
    ...

The number in the file name is the segment's *base version*: the database
version immediately before the segment's first record.  A segment opens with
a header record and then holds one record per delta::

    {"kind": "wal_segment", "schema_version": 1, "base_version": 0}
    {"kind": "wal_record", "version": 1, "crc": 123456, "delta": {...}}
    {"kind": "wal_record", "version": 2, "crc": 789012, "delta": {...}}

``delta`` is an opaque payload dict (the ``database_delta`` envelope produced
by :func:`repro.api.serialize.delta_to_dict` — the WAL itself is
codec-agnostic and never looks inside).  ``crc`` is the CRC-32 of the
canonical JSON encoding of the payload, so recovery can tell a torn write
from a clean record.

Durability rules
----------------
* Every append is flushed and ``fsync``'d before :meth:`WriteAheadLog.append`
  returns (disable per-append fsync with ``sync=False`` when benchmarking).
* New segments are *published atomically*: the header is written to a
  ``.tmp`` file, fsync'd, and ``os.replace``'d into place, followed by a
  directory fsync — a reader never observes a half-written header.
* On open, a torn record at the very tail of the *last* segment (the
  signature of a crash mid-append) is tolerated and physically truncated
  away.  Corruption anywhere else is a hard :class:`~repro.exceptions.WALError`:
  the log is the source of truth and silently skipping interior records
  would desynchronise every replica.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Iterator

from repro.core.faults import fault_point
from repro.exceptions import FaultInjected, WALError
from repro.graphs.io import fsync_directory

__all__ = [
    "WAL_SEGMENT_KIND",
    "WAL_RECORD_KIND",
    "WAL_SCHEMA_VERSION",
    "DEFAULT_SEGMENT_MAX_RECORDS",
    "payload_crc",
    "WriteAheadLog",
]

WAL_SEGMENT_KIND = "wal_segment"
WAL_RECORD_KIND = "wal_record"
WAL_SCHEMA_VERSION = 1

#: Records per segment before rotation; small enough that ``payloads_since``
#: can skip whole files when serving a replica that is nearly caught up.
DEFAULT_SEGMENT_MAX_RECORDS = 1024

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".jsonl"
_SEGMENT_DIGITS = 12


def payload_crc(payload: dict[str, Any]) -> int:
    """CRC-32 of the canonical JSON encoding of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


def _segment_name(base_version: int) -> str:
    return f"{_SEGMENT_PREFIX}{base_version:0{_SEGMENT_DIGITS}d}{_SEGMENT_SUFFIX}"


class _Segment:
    """Bookkeeping for one on-disk segment file."""

    __slots__ = ("path", "base_version", "num_records")

    def __init__(self, path: Path, base_version: int, num_records: int) -> None:
        self.path = path
        self.base_version = base_version
        self.num_records = num_records

    @property
    def last_version(self) -> int:
        return self.base_version + self.num_records


class WriteAheadLog:
    """Append-only, fsync'd, CRC-checked delta log over a directory of segments.

    Parameters
    ----------
    directory:
        WAL directory; created if missing.  If it already holds segments the
        log resumes from them (``base_version`` is then read from disk and
        the argument is ignored).
    base_version:
        Database version the log starts at when the directory is empty.
    segment_max_records:
        Records per segment before rotating to a new file.
    sync:
        fsync after every append (the durability guarantee).  ``False``
        trades crash-safety for speed — useful only for benchmarks/tests.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        base_version: int = 0,
        segment_max_records: int = DEFAULT_SEGMENT_MAX_RECORDS,
        sync: bool = True,
    ) -> None:
        if segment_max_records < 1:
            raise WALError("segment_max_records must be >= 1")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._segment_max_records = int(segment_max_records)
        self._sync = bool(sync)
        self._handle = None  # lazily opened append handle for the last segment
        self._closed = False

        # A crash between writing a .tmp header and the os.replace leaves a
        # stray temp file; it was never published, so it is safe to drop.
        for stray in self._directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}.tmp"):
            stray.unlink()

        self._segments: list[_Segment] = []
        paths = sorted(self._directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))
        for index, path in enumerate(paths):
            self._segments.append(self._open_segment(path, final=index == len(paths) - 1))
        for previous, current in zip(self._segments, self._segments[1:]):
            if current.base_version != previous.last_version:
                raise WALError(
                    f"{current.path.name}: segment starts at version "
                    f"{current.base_version} but {previous.path.name} ends at "
                    f"{previous.last_version} — the log has a hole"
                )
        if not self._segments:
            self._base_version = int(base_version)
        else:
            self._base_version = self._segments[0].base_version

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def base_version(self) -> int:
        """Version immediately before the first record the log retains."""
        return self._base_version

    @property
    def last_version(self) -> int:
        """Version of the newest record (== ``base_version`` when empty)."""
        if not self._segments:
            return self._base_version
        return self._segments[-1].last_version

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    # ------------------------------------------------------------------
    # recovery scan
    # ------------------------------------------------------------------
    def _open_segment(self, path: Path, *, final: bool) -> _Segment:
        """Validate one segment, truncating a torn tail on the final one."""
        name = path.name
        try:
            base_version = int(name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])
        except ValueError as error:
            raise WALError(f"{name}: unparseable segment file name") from error
        data = path.read_bytes()

        offset = 0
        header_line, header_end = self._next_line(data, 0)
        if header_line is None:
            raise WALError(f"{name}: segment has no header record")
        header = self._decode(header_line, name, "header")
        if header.get("kind") != WAL_SEGMENT_KIND:
            raise WALError(f"{name}: first record is not a {WAL_SEGMENT_KIND!r} header")
        if header.get("schema_version") != WAL_SCHEMA_VERSION:
            raise WALError(
                f"{name}: unsupported WAL schema version {header.get('schema_version')!r} "
                f"(supported: {WAL_SCHEMA_VERSION})"
            )
        if header.get("base_version") != base_version:
            raise WALError(
                f"{name}: header base_version {header.get('base_version')!r} "
                f"does not match the file name"
            )
        offset = header_end

        num_records = 0
        while True:
            line, line_end = self._next_line(data, offset)
            if line is None:
                break
            try:
                record = self._decode(line, name, f"record {num_records + 1}")
                self._check_record(record, name, base_version + num_records + 1)
            except WALError:
                # Torn tail: a crash mid-append leaves exactly one bad record
                # at the very end of the last segment.  Anything else —
                # corruption in an interior record or an older segment — is
                # unrecoverable without losing acknowledged writes.
                if final and not self._has_content(data, line_end):
                    with path.open("r+b") as handle:
                        handle.truncate(offset)
                        handle.flush()
                        os.fsync(handle.fileno())
                    break
                raise
            num_records += 1
            offset = line_end
        return _Segment(path, base_version, num_records)

    @staticmethod
    def _next_line(data: bytes, offset: int) -> tuple[bytes | None, int]:
        """Next non-blank line and the offset just past it (None at EOF)."""
        while offset < len(data):
            end = data.find(b"\n", offset)
            if end == -1:
                line, end = data[offset:], len(data)
            else:
                line, end = data[offset:end], end + 1
            if line.strip():
                return line, end
            offset = end
        return None, offset

    @staticmethod
    def _has_content(data: bytes, offset: int) -> bool:
        return bool(data[offset:].strip())

    @staticmethod
    def _decode(line: bytes, name: str, what: str) -> dict[str, Any]:
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WALError(f"{name}: {what} is not valid JSON: {error}") from error
        if not isinstance(record, dict):
            raise WALError(f"{name}: {what} is not a JSON object")
        return record

    @staticmethod
    def _check_record(record: dict[str, Any], name: str, expected_version: int) -> None:
        if record.get("kind") != WAL_RECORD_KIND:
            raise WALError(f"{name}: expected a {WAL_RECORD_KIND!r} record")
        version = record.get("version")
        if version != expected_version:
            raise WALError(
                f"{name}: record version {version!r} breaks contiguity "
                f"(expected {expected_version})"
            )
        payload = record.get("delta")
        if not isinstance(payload, dict):
            raise WALError(f"{name}: record {version} has no delta payload")
        if record.get("crc") != payload_crc(payload):
            raise WALError(f"{name}: record {version} fails its CRC check")

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, payload: dict[str, Any], version: int) -> None:
        """Durably append one delta payload as the record for ``version``.

        ``version`` must be exactly ``last_version + 1`` — the WAL refuses
        holes so that replay is always a contiguous prefix-to-tail walk.
        """
        if self._closed:
            raise WALError("write-ahead log is closed")
        expected = self.last_version + 1
        if version != expected:
            raise WALError(
                f"cannot append version {version}: the log is at "
                f"{self.last_version} (expected {expected})"
            )
        if self._handle is None or self._segments[-1].num_records >= self._segment_max_records:
            self._rotate(base_version=version - 1)
        record = {
            "kind": WAL_RECORD_KIND,
            "version": version,
            "crc": payload_crc(payload),
            "delta": payload,
        }
        line = fault_point("wal.append", json.dumps(record) + "\n")
        offset = self._handle.tell()
        try:
            self._handle.write(line)
            self._handle.flush()
            fault_point("wal.fsync")
            if self._sync:
                os.fsync(self._handle.fileno())
        except (OSError, FaultInjected) as error:
            # The record was never acknowledged: roll the file back to the
            # pre-write offset so it cannot resurface on replay, then fail
            # loudly.  A record is in the log iff its append returned.
            try:
                self._handle.seek(offset)
                self._handle.truncate()
            except OSError:
                pass
            raise WALError(
                f"append of version {version} failed before it was durable: "
                f"{error}"
            ) from error
        self._segments[-1].num_records += 1

    def _rotate(self, *, base_version: int) -> None:
        """Open a fresh segment (or re-open the existing tail for appending)."""
        fault_point("wal.rotate")
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        tail = self._segments[-1] if self._segments else None
        if tail is not None and tail.num_records < self._segment_max_records:
            # Reopening an existing WAL: keep filling the last segment.
            self._handle = tail.path.open("a", encoding="utf-8")
            return
        path = self._directory / _segment_name(base_version)
        if path.exists():
            raise WALError(f"segment {path.name} already exists")
        tmp = path.with_name(path.name + ".tmp")
        header = {
            "kind": WAL_SEGMENT_KIND,
            "schema_version": WAL_SCHEMA_VERSION,
            "base_version": base_version,
        }
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_directory(self._directory)
        self._segments.append(_Segment(path, base_version, 0))
        self._handle = path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def payloads_since(self, version: int) -> list[dict[str, Any]]:
        """Delta payloads for versions ``version + 1 .. last_version``, in order.

        Raises :class:`WALError` when the log cannot cover the range — the
        caller asked for history older than ``base_version`` or newer than
        ``last_version``.
        """
        return [payload for _, payload in self.records_since(version)]

    def records_since(self, version: int) -> Iterator[tuple[int, dict[str, Any]]]:
        """Yield ``(version, payload)`` pairs after ``version``, CRC-checked."""
        if version < self._base_version:
            raise WALError(
                f"cannot serve deltas since version {version}: the log starts "
                f"at {self._base_version}"
            )
        if version > self.last_version:
            raise WALError(
                f"cannot serve deltas since version {version}: the log ends "
                f"at {self.last_version}"
            )
        for segment in self._segments:
            if segment.last_version <= version:
                continue
            yield from self._read_segment(segment, version)

    def _read_segment(
        self, segment: _Segment, since: int
    ) -> Iterator[tuple[int, dict[str, Any]]]:
        name = segment.path.name
        data = segment.path.read_bytes()
        header_line, offset = self._next_line(data, 0)
        if header_line is None:  # pragma: no cover - validated on open
            raise WALError(f"{name}: segment has no header record")
        expected = segment.base_version + 1
        emitted = 0
        while emitted < segment.num_records:
            line, offset = self._next_line(data, offset)
            if line is None:
                raise WALError(
                    f"{name}: segment lost records since open "
                    f"(expected {segment.num_records}, found {emitted})"
                )
            record = self._decode(line, name, f"record for version {expected}")
            self._check_record(record, name, expected)
            if expected > since:
                yield expected, record["delta"]
            expected += 1
            emitted += 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog({str(self._directory)!r}, "
            f"base_version={self._base_version}, last_version={self.last_version}, "
            f"segments={len(self._segments)})"
        )
