"""Explanation configuration ``C = (theta, r, {[b_l, u_l]})`` (section 3.2).

A configuration bundles every user-tunable knob of GVEX:

* ``theta`` — influence threshold for the feature-influence score ``I`` (Eq. 5),
* ``radius`` — embedding-distance threshold ``r`` for the diversity score ``D``
  (Eq. 6),
* ``gamma`` — trade-off between influence and diversity in the explainability
  objective (Eq. 2),
* per-label coverage bounds ``[b_l, u_l]`` on explanation-subgraph size,
* implementation knobs (influence estimator, verification mode, pattern caps).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.exceptions import ConfigurationError

__all__ = ["CoverageBound", "Configuration"]

_VERIFICATION_MODES = ("strict", "consistent", "none")
_INFLUENCE_METHODS = ("auto", "propagation", "exact")
_SELECTION_STRATEGIES = ("lazy", "eager")
_STREAM_BATCHING = ("auto", "on", "off")
_OBJECTIVES = ("exact", "sampled")


@dataclass(frozen=True)
class CoverageBound:
    """Per-label coverage constraint ``[b_l, u_l]`` on explanation size."""

    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.lower < 0:
            raise ConfigurationError(
                f"coverage lower bound must be non-negative, got {self.lower}; "
                "use 0 to disable the lower bound"
            )
        if self.upper < max(self.lower, 1):
            raise ConfigurationError(
                f"coverage upper bound {self.upper} must be >= max(lower, 1) = "
                f"{max(self.lower, 1)}; raise the upper bound or lower the lower bound"
            )

    def contains(self, size: int) -> bool:
        """True when a node count satisfies the bound."""
        return self.lower <= size <= self.upper


@dataclass(frozen=True)
class Configuration:
    """All GVEX parameters; immutable so it can be shared across workers.

    Parameters
    ----------
    theta:
        Influence threshold in Eq. 5.  A node ``v`` counts as influenced by a
        seed set when some seed contributes at least a ``theta`` share of
        ``v``'s total input sensitivity.
    radius:
        Diversity radius in Eq. 6, applied to normalised embedding distances
        (so values in [0, 1] are meaningful regardless of embedding scale).
    gamma:
        Weight of the diversity term in the explainability objective.
    default_bound:
        Coverage bound used for labels without an explicit entry in
        ``coverage_bounds``.
    coverage_bounds:
        Per-label overrides of the coverage bound.
    influence_method:
        ``auto`` (default: exact Jacobian for small graphs, propagation
        estimator for large ones), ``propagation`` (fast k-step estimator) or
        ``exact`` (linearised Jacobian of the trained network).
    verification_mode:
        How strictly ``VpExtend`` enforces the explanation-subgraph
        definition while *growing* a candidate:

        * ``strict`` — paper-literal: every intermediate candidate must be
          consistent *and* counterfactual.  With a robust GNN this rejects
          nearly all small candidates, so it is mainly useful for analysis.
        * ``consistent`` (default) — intermediate candidates must keep the
          predicted label once they reach ``min_check_size`` nodes; the
          counterfactual property is evaluated on the final subgraph and
          reported (and measured by Fidelity+), matching how the paper's
          experiments sweep ``u_l``.
        * ``none`` — no model checks during growth (pure influence
          maximisation); useful for ablations.
    min_check_size:
        Number of nodes a candidate must reach before GNN consistency checks
        are applied (a one-node graph cannot be meaningfully classified).
    max_pattern_size / max_pattern_candidates:
        Caps forwarded to the pattern generator (``PGen``).
    diversity_hops:
        r-hop neighbourhood radius handed to ``IncPGen`` in streaming mode.
    selection_strategy:
        How the greedy loops pick the next node:

        * ``lazy`` (default) — CELF-style lazy greedy: marginal gains are kept
          in a max-heap of stale upper bounds (valid because the Eq.-2
          objective is monotone submodular) and only re-evaluated on pop, and
          the model-probe tie-breakers run only on the exact-gain ties that
          surface.  Produces node sets *identical* to the eager loop.
        * ``eager`` — the reference loop: every unselected node is re-verified
          and re-scored on every iteration.  Kept as the A/B baseline for the
          end-to-end efficiency benchmarks.
    stream_batching:
        How ``StreamGVEX`` processes a batch of arriving nodes:

        * ``auto`` (default) — use the batched swap path (packed-mask
          coverage deltas, cached subset scores, short-circuit novelty
          probes) whenever the sparse backend is enabled, and the per-node
          reference loop otherwise — so the A/B benchmark arms exercise
          both implementations with no extra wiring.
        * ``on`` / ``off`` — force the batched or the per-node path
          regardless of backend.  Both paths produce identical views;
          ``off`` is the oracle the identity tests compare against.
    label_probability_cache_size:
        LRU capacity of the per-graph memo of subgraph label probabilities
        used by the greedy tie-breakers and the counterfactual swap loop
        (``0`` disables caching; the cap keeps memory flat on large graphs).
    match_cache_size:
        LRU capacity of the *process-wide* pattern-match memo
        (:mod:`repro.matching.engine`), keyed by
        ``(pattern.canonical_key(), graph version)``.  Every coverage
        predicate, view-verification check, mining support count and
        explanation query shares the memo; ``0`` disables match memoisation.
        Applied when an explainer is built (and in every parallel worker's
        initializer), since the engine is shared by the whole process.
    seed:
        Seed for every randomised choice made under this configuration —
        most importantly the shuffled node arrival order of ``StreamGVEX``
        (Fig. 12), which would otherwise differ between runs.
    degraded_reads:
        Operational knob for the sharded tier: when on, reads against a
        down shard return *partial* results flagged with
        ``degraded``/``missing_shards`` instead of failing loudly (mutations
        still answer 503 + Retry-After).  Excluded from
        :meth:`canonical_dict` — it changes availability semantics, never
        the explanations a healthy system produces, and degraded results
        are never cached.
    fault_plan:
        Operational knob: a :class:`repro.core.faults.FaultPlan` payload
        (``FaultPlan.to_dict()`` shape) activated process-globally when a
        service or router is built with this configuration.  Excluded from
        :meth:`canonical_dict` for the same reason — fault plans only
        inject failures; they never alter the explanation outputs of the
        code paths that survive them.
    objective:
        ``exact`` (default — every score is the paper-literal Eq.-2 value)
        or ``sampled`` — the approximate objective layer of
        :mod:`repro.core.sampling`: influence and diversity coverage are
        estimated from a seeded without-replacement sample of target
        columns, with a Hoeffding ``(epsilon, delta)`` error bound, for
        graphs larger than ``sample_threshold`` nodes.  Sub-threshold
        graphs always take the exact path, so small inputs stay
        bit-identical to the reference regardless of this knob.
    sample_budget:
        Hard cap on the per-graph sample size under ``objective="sampled"``.
        The actual size is ``min(sample_budget, n, m*)`` where ``m*`` is the
        auto-chosen Hoeffding size for the requested ``(epsilon, delta)``
        (à la the approximate-betweenness auto sizing); when the budget
        binds, the *achieved* epsilon is recorded in provenance instead.
    epsilon:
        Half-width of the additive error bound on sampled coverage
        *fractions* (counts are within ``epsilon * n`` of exact with
        probability ``>= 1 - delta``, simultaneously for every node subset
        scored against one sample).
    delta:
        Failure probability of the ``epsilon`` bound (union-bounded over
        the population, so it holds for every query answered from the
        sample, not just one).
    sample_threshold:
        Graphs with at most this many nodes ignore ``objective="sampled"``
        and run exact — sampling a 60-node graph saves nothing and costs
        the bit-identity guarantee.
    """

    theta: float = 0.1
    radius: float = 0.25
    gamma: float = 0.5
    default_bound: CoverageBound = field(default_factory=lambda: CoverageBound(0, 15))
    coverage_bounds: dict[int, CoverageBound] = field(default_factory=dict)
    influence_method: str = "auto"
    verification_mode: str = "consistent"
    min_check_size: int = 3
    max_pattern_size: int = 4
    max_pattern_candidates: int = 32
    diversity_hops: int = 1
    selection_strategy: str = "lazy"
    stream_batching: str = "auto"
    label_probability_cache_size: int = 8192
    match_cache_size: int = 4096
    seed: int = 0
    degraded_reads: bool = False
    fault_plan: dict | None = None
    objective: str = "exact"
    sample_budget: int = 1024
    epsilon: float = 0.1
    delta: float = 0.05
    sample_threshold: int = 256

    def __post_init__(self) -> None:
        if not 0.0 <= self.theta <= 1.0:
            raise ConfigurationError(
                f"theta (influence threshold, Eq. 5) must be in [0, 1], got "
                f"{self.theta!r}; it is a *share* of a node's total input "
                "sensitivity, not an absolute score"
            )
        if self.radius < 0.0:
            raise ConfigurationError(
                f"radius (diversity threshold, Eq. 6) must be non-negative, got "
                f"{self.radius!r}; distances are normalised so values in [0, 1] "
                "are meaningful"
            )
        if not 0.0 <= self.gamma <= 1.0:
            raise ConfigurationError(
                f"gamma (influence/diversity trade-off, Eq. 2) must be in [0, 1], "
                f"got {self.gamma!r}; 0 ignores diversity, 1 ignores influence"
            )
        if self.influence_method not in _INFLUENCE_METHODS:
            raise ConfigurationError(
                f"influence_method must be one of {_INFLUENCE_METHODS}"
            )
        if self.verification_mode not in _VERIFICATION_MODES:
            raise ConfigurationError(
                f"verification_mode must be one of {_VERIFICATION_MODES}"
            )
        if self.min_check_size < 1:
            raise ConfigurationError("min_check_size must be at least 1")
        if self.max_pattern_size < 1:
            raise ConfigurationError("max_pattern_size must be at least 1")
        if self.max_pattern_candidates < 1:
            raise ConfigurationError("max_pattern_candidates must be at least 1")
        if self.diversity_hops < 0:
            raise ConfigurationError("diversity_hops must be non-negative")
        if self.selection_strategy not in _SELECTION_STRATEGIES:
            raise ConfigurationError(
                f"selection_strategy must be one of {_SELECTION_STRATEGIES}"
            )
        if self.stream_batching not in _STREAM_BATCHING:
            raise ConfigurationError(
                f"stream_batching must be one of {_STREAM_BATCHING}"
            )
        if self.label_probability_cache_size < 0:
            raise ConfigurationError("label_probability_cache_size must be non-negative")
        if self.match_cache_size < 0:
            raise ConfigurationError(
                f"match_cache_size must be non-negative, got {self.match_cache_size}; "
                "use 0 to disable match-result memoisation"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError("seed must be an integer")
        if not isinstance(self.degraded_reads, bool):
            raise ConfigurationError("degraded_reads must be a boolean")
        if self.fault_plan is not None and not isinstance(self.fault_plan, dict):
            raise ConfigurationError(
                f"fault_plan must be a FaultPlan.to_dict() payload (a dict) or "
                f"None, got {type(self.fault_plan).__name__}"
            )
        if self.objective not in _OBJECTIVES:
            raise ConfigurationError(
                f"objective must be one of {_OBJECTIVES}, got {self.objective!r}; "
                "'sampled' enables the approximate estimator layer for large graphs"
            )
        if not isinstance(self.sample_budget, int) or isinstance(self.sample_budget, bool):
            raise ConfigurationError("sample_budget must be an integer")
        if self.sample_budget < 2:
            raise ConfigurationError(
                f"sample_budget must be at least 2, got {self.sample_budget}; "
                "a one-column sample cannot carry a useful bound"
            )
        if not 0.0 < self.epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon (sampled-objective error half-width) must be in (0, 1), "
                f"got {self.epsilon!r}; it bounds coverage *fractions*, not counts"
            )
        if not 0.0 < self.delta < 1.0:
            raise ConfigurationError(
                f"delta (sampled-objective failure probability) must be in (0, 1), "
                f"got {self.delta!r}"
            )
        if self.sample_threshold < 0:
            raise ConfigurationError(
                f"sample_threshold must be non-negative, got {self.sample_threshold}; "
                "graphs at or below it always run the exact objective"
            )
        if not isinstance(self.default_bound, CoverageBound):
            raise ConfigurationError(
                f"default_bound must be a CoverageBound, got "
                f"{type(self.default_bound).__name__}; build one with "
                "CoverageBound(lower, upper) or use with_default_bound(lower, upper)"
            )
        for label, bound in self.coverage_bounds.items():
            if not isinstance(bound, CoverageBound):
                raise ConfigurationError(
                    f"coverage_bounds[{label!r}] must be a CoverageBound, got "
                    f"{type(bound).__name__}; use with_bound(label, lower, upper)"
                )

    # ------------------------------------------------------------------
    # coverage bounds
    # ------------------------------------------------------------------
    def bound_for(self, label: int) -> CoverageBound:
        """The coverage bound ``[b_l, u_l]`` applying to ``label``."""
        return self.coverage_bounds.get(label, self.default_bound)

    def with_bound(self, label: int, lower: int, upper: int) -> "Configuration":
        """A copy of the configuration with one label's bound replaced."""
        bounds = dict(self.coverage_bounds)
        bounds[label] = CoverageBound(lower, upper)
        return replace(self, coverage_bounds=bounds)

    def with_default_bound(self, lower: int, upper: int) -> "Configuration":
        """A copy with a new default coverage bound."""
        return replace(self, default_bound=CoverageBound(lower, upper))

    def with_max_nodes(self, max_nodes: int) -> "Configuration":
        """A copy whose default upper coverage bound is ``max_nodes``.

        The single size knob shared by every explainer in the comparison
        experiments; the lower bound is clamped so the result is always a
        valid :class:`CoverageBound`.  This is *the* folding rule used by
        both the registry and ``ExplainRequest`` — keep it in one place.
        """
        if max_nodes < 1:
            raise ConfigurationError(
                f"max_nodes must be at least 1, got {max_nodes}; it becomes the "
                "upper coverage bound u_l"
            )
        return self.with_default_bound(
            min(self.default_bound.lower, max_nodes), max_nodes
        )

    def describe(self) -> dict[str, object]:
        """Human-readable summary used in experiment logs."""
        return {
            "theta": self.theta,
            "radius": self.radius,
            "gamma": self.gamma,
            "default_bound": (self.default_bound.lower, self.default_bound.upper),
            "coverage_bounds": {
                label: (bound.lower, bound.upper)
                for label, bound in sorted(self.coverage_bounds.items())
            },
            "influence_method": self.influence_method,
            "verification_mode": self.verification_mode,
            "selection_strategy": self.selection_strategy,
            "stream_batching": self.stream_batching,
            "label_probability_cache_size": self.label_probability_cache_size,
            "match_cache_size": self.match_cache_size,
            "seed": self.seed,
        } | self._sampling_dict()

    def _sampling_dict(self) -> dict[str, object]:
        """The sampling knobs, present only when they can matter.

        Folded into :meth:`describe` / :meth:`canonical_dict` *additively* —
        an ``objective="exact"`` configuration serialises exactly as it did
        before the sampled layer existed, so every previously persisted
        fingerprint (result caches, golden artifacts, cross-process keys)
        stays byte-stable, while ``objective="sampled"`` gets a distinct
        fingerprint that also varies with every estimator knob.
        """
        if self.objective == "exact":
            return {}
        return {
            "objective": self.objective,
            "sample_budget": self.sample_budget,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "sample_threshold": self.sample_threshold,
        }

    def canonical_dict(self) -> dict[str, object]:
        """Every knob of the configuration, in a stable JSON-friendly shape.

        Unlike :meth:`describe` (a human-oriented log summary), this includes
        *all* fields so that two configurations hash equal exactly when every
        explainer-visible parameter matches.  The operational knobs
        (``degraded_reads``, ``fault_plan``) are deliberately excluded: they
        never change what a healthy explainer computes, so they must not
        split the result cache or the cross-process fingerprint.
        """
        return self.describe() | {
            "min_check_size": self.min_check_size,
            "max_pattern_size": self.max_pattern_size,
            "max_pattern_candidates": self.max_pattern_candidates,
            "diversity_hops": self.diversity_hops,
        }

    def fingerprint(self) -> str:
        """A stable 16-hex-digit hash of the full configuration.

        Used as (part of) the key of the result cache in
        :mod:`repro.api.service`: two runs with identical configurations can
        share cached explanation views, and any parameter change invalidates
        them.  Stable across processes and Python versions (no reliance on
        ``hash()``), since the key may be persisted to disk.
        """
        payload = json.dumps(self.canonical_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
