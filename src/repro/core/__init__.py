"""GVEX core: configuration, quality measures, view generation algorithms.

The algorithm classes (``ApproxGVEX``, ``StreamGVEX``) and the standalone
``ViewQueryEngine`` are deprecated as *package-level* re-exports — accessing
them from here emits :class:`DeprecationWarning`.  New code goes through
:mod:`repro.api` (``create_explainer`` / ``ExplanationService.query()``);
code that genuinely needs the classes imports them from their concrete
modules (:mod:`repro.core.approx`, :mod:`repro.core.streaming`,
:mod:`repro.core.views`), which stay warning-free.
"""

from repro.core.caching import LRUCache
from repro.core.config import Configuration, CoverageBound
from repro.core.explanation import ExplanationSubgraph, ExplanationView, ExplanationViewSet
from repro.core.maintenance import MaintainedExplanation, NodeStreamProcessor, ViewMaintainer
from repro.core.parallel import merge_views, parallel_explain
from repro.core.quality import CoverageState, GraphAnalysis, view_explainability
from repro.core.selection import lazy_greedy_select
from repro.core.summarize import SummarizeResult, pattern_weight, summarize_subgraphs
from repro.core.verification import EVerify, VerificationReport, verify_view
from repro.core.views import PatternOccurrence

__all__ = [
    "Configuration",
    "CoverageBound",
    "CoverageState",
    "GraphAnalysis",
    "LRUCache",
    "lazy_greedy_select",
    "view_explainability",
    "ExplanationSubgraph",
    "ExplanationView",
    "ExplanationViewSet",
    "EVerify",
    "VerificationReport",
    "verify_view",
    "SummarizeResult",
    "summarize_subgraphs",
    "pattern_weight",
    "ApproxGVEX",
    "StreamGVEX",
    "MaintainedExplanation",
    "NodeStreamProcessor",
    "ViewMaintainer",
    "parallel_explain",
    "merge_views",
    "ViewQueryEngine",
    "PatternOccurrence",
]

# Deprecated package-level re-exports; see the module docstring.
_DEPRECATED: dict[str, tuple[str, str]] = {
    "ApproxGVEX": ("repro.core.approx", 'repro.api.create_explainer("approx")'),
    "StreamGVEX": ("repro.core.streaming", 'repro.api.create_explainer("stream")'),
    "ViewQueryEngine": ("repro.core.views", "ExplanationService.query()"),
}


def __getattr__(name: str) -> object:
    try:
        module, replacement = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    import warnings

    warnings.warn(
        f"repro.core.{name} is deprecated; use {replacement} "
        f"(or, for the raw class, import it from {module})",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module), name)
