"""GVEX core: configuration, quality measures, view generation algorithms."""

from repro.core.approx import ApproxGVEX
from repro.core.caching import LRUCache
from repro.core.config import Configuration, CoverageBound
from repro.core.explanation import ExplanationSubgraph, ExplanationView, ExplanationViewSet
from repro.core.maintenance import MaintainedExplanation, NodeStreamProcessor, ViewMaintainer
from repro.core.parallel import merge_views, parallel_explain
from repro.core.quality import CoverageState, GraphAnalysis, view_explainability
from repro.core.selection import lazy_greedy_select
from repro.core.streaming import StreamGVEX
from repro.core.summarize import SummarizeResult, pattern_weight, summarize_subgraphs
from repro.core.verification import EVerify, VerificationReport, verify_view
from repro.core.views import PatternOccurrence, ViewQueryEngine

__all__ = [
    "Configuration",
    "CoverageBound",
    "CoverageState",
    "GraphAnalysis",
    "LRUCache",
    "lazy_greedy_select",
    "view_explainability",
    "ExplanationSubgraph",
    "ExplanationView",
    "ExplanationViewSet",
    "EVerify",
    "VerificationReport",
    "verify_view",
    "SummarizeResult",
    "summarize_subgraphs",
    "pattern_weight",
    "ApproxGVEX",
    "StreamGVEX",
    "MaintainedExplanation",
    "NodeStreamProcessor",
    "ViewMaintainer",
    "parallel_explain",
    "merge_views",
    "ViewQueryEngine",
    "PatternOccurrence",
]
