"""GVEX core: configuration, quality measures, view generation algorithms.

The algorithm classes (``ApproxGVEX``, ``StreamGVEX``) and the standalone
``ViewQueryEngine`` are no longer re-exported from here — the deprecation
window closed in this release.  New code goes through :mod:`repro.api`
(``create_explainer`` / ``ExplanationService.query()``); code that
genuinely needs the classes imports them from their concrete modules
(:mod:`repro.core.approx`, :mod:`repro.core.streaming`,
:mod:`repro.core.views`).
"""

from repro.core.caching import LRUCache
from repro.core.config import Configuration, CoverageBound
from repro.core.explanation import ExplanationSubgraph, ExplanationView, ExplanationViewSet
from repro.core.maintenance import MaintainedExplanation, NodeStreamProcessor, ViewMaintainer
from repro.core.parallel import merge_views, parallel_explain
from repro.core.quality import CoverageState, GraphAnalysis, view_explainability
from repro.core.selection import lazy_greedy_select
from repro.core.summarize import SummarizeResult, pattern_weight, summarize_subgraphs
from repro.core.verification import EVerify, VerificationReport, verify_view
from repro.core.views import PatternOccurrence

__all__ = [
    "Configuration",
    "CoverageBound",
    "CoverageState",
    "GraphAnalysis",
    "LRUCache",
    "lazy_greedy_select",
    "view_explainability",
    "ExplanationSubgraph",
    "ExplanationView",
    "ExplanationViewSet",
    "EVerify",
    "VerificationReport",
    "verify_view",
    "SummarizeResult",
    "summarize_subgraphs",
    "pattern_weight",
    "MaintainedExplanation",
    "NodeStreamProcessor",
    "ViewMaintainer",
    "parallel_explain",
    "merge_views",
    "PatternOccurrence",
]
