"""Parallel view generation (section 5, "Parallel Implementation").

The per-graph work of GVEX — influence analysis, greedy selection, pattern
summarisation — is independent across source graphs, so the database can be
partitioned across workers.  :func:`parallel_explain` shards the label group
over a pool of processes (or threads / a serial loop for environments where
process pools are unavailable) and merges the per-shard views.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from collections.abc import Sequence

from repro.core.approx import ApproxGVEX
from repro.core.config import Configuration
from repro.core.explanation import ExplanationView, ExplanationViewSet
from repro.core.streaming import StreamGVEX
from repro.exceptions import ExplanationError
from repro.gnn.models import GNNClassifier
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph

__all__ = ["parallel_explain", "merge_views"]


def _shard(items: Sequence, num_shards: int) -> list[list]:
    shards: list[list] = [[] for _ in range(num_shards)]
    for index, item in enumerate(items):
        shards[index % num_shards].append(item)
    return [shard for shard in shards if shard]


def merge_views(views: Sequence[ExplanationView], label: int) -> ExplanationView:
    """Merge per-shard views of the same label into one view.

    Subgraphs are concatenated; patterns are deduplicated by canonical key.
    """
    merged = ExplanationView(label=label)
    seen_patterns: set[tuple] = set()
    for view in views:
        if view.label != label:
            raise ExplanationError("cannot merge views of different labels")
        merged.subgraphs.extend(view.subgraphs)
        merged.explainability += view.explainability
        for pattern in view.patterns:
            key = pattern.canonical_key()
            if key not in seen_patterns:
                seen_patterns.add(key)
                merged.patterns.append(pattern)
    for index, pattern in enumerate(merged.patterns):
        pattern.pattern_id = index
    merged.metadata["merged_from"] = len(views)
    return merged


# Per-process state installed by the pool initializer: the model is unpickled
# once per worker process and the explainer built once, instead of shipping
# (and rebuilding) both with every shard of graphs.  Only process-pool
# workers read this — each worker process owns its private copy — so the
# serial and thread backends (which build per-shard explainers locally) stay
# re-entrant under concurrent parallel_explain calls.
_WORKER_STATE: dict = {}

# Shards per worker: more shards than workers gives the pool slack to balance
# uneven per-graph costs, while the initializer keeps the per-shard overhead
# to unpickling only the graphs themselves.
_SHARDS_PER_WORKER = 4


def _build_explainer(
    model: GNNClassifier, config: Configuration, algorithm: str, batch_size: int
) -> ApproxGVEX | StreamGVEX:
    if algorithm == "stream":
        return StreamGVEX(model, config, batch_size=batch_size)
    return ApproxGVEX(model, config)


def _init_worker(model: GNNClassifier, config: Configuration, algorithm: str, batch_size: int) -> None:
    """Process-pool initializer: build this worker's explainer exactly once.

    Each worker process owns a private match-engine memo, sized once here via
    the explainer constructor (``config.match_cache_size``).  The memo is
    identity-keyed and ``_run_shard`` rebuilds graph objects per shard, so
    entries amortise *within* a shard (where the heavy repeat queries live),
    not across shards.
    """
    _WORKER_STATE["explainer"] = _build_explainer(model, config, algorithm, batch_size)


def _run_shard(
    explainer: ApproxGVEX | StreamGVEX, graph_payloads: list[dict], labels: Sequence[int]
) -> list[dict]:
    """Explain one shard of graphs for all labels."""
    database = GraphDatabase()
    database.extend(Graph.from_dict(payload) for payload in graph_payloads)
    from repro.graphs.sparse import sparse_enabled
    from repro.matching.engine import warm_match_indices

    if sparse_enabled():
        # Prebuild the CSR views so the first probe of every graph does not
        # pay the snapshot cost inside the timed explanation loop, and the
        # match-engine indices (degree / neighbour-signature / edge tables)
        # so this worker's first coverage query backtracks immediately.
        database.warm_sparse_cache()
        warm_match_indices(database.graphs)
    results = []
    for label in labels:
        # Passing the database (a graph sequence) rather than a bare list
        # lets predict_batch reuse its memoised block-diagonal batch across
        # the per-label calls instead of restacking it for every label.
        view = explainer.explain_label(database, label)
        results.append(view.to_dict() | {"__explainability": view.explainability})
    return results


def _explain_shard(args: tuple) -> list[dict]:
    """Process-pool entry point: reuse the worker's initializer-built explainer."""
    graph_payloads, labels = args
    return _run_shard(_WORKER_STATE["explainer"], graph_payloads, labels)


def parallel_explain(
    model: GNNClassifier,
    database: GraphDatabase | Sequence[Graph],
    config: Configuration | None = None,
    labels: Sequence[int] | None = None,
    num_workers: int = 2,
    backend: str = "process",
    algorithm: str = "approx",
    batch_size: int = 8,
) -> ExplanationViewSet:
    """Generate explanation views using a pool of workers.

    ``backend`` selects ``process`` (default), ``thread`` or ``serial``.  The
    serial backend runs the exact same sharded code path in-process, which is
    what the efficiency benchmarks use as the 1-worker reference point.
    """
    config = config or Configuration()
    graphs = list(database.graphs) if isinstance(database, GraphDatabase) else list(database)
    if not graphs:
        raise ExplanationError("cannot explain an empty graph collection")
    if labels is None:
        labels = sorted({model.predict(graph) for graph in graphs})
    if num_workers < 1:
        raise ExplanationError("num_workers must be at least 1")

    # Chunked sharding: several shards per worker balance uneven per-graph
    # costs; the worker initializer unpickles the model once per *worker*
    # rather than once per shard.
    num_shards = num_workers if num_workers == 1 else num_workers * _SHARDS_PER_WORKER
    shards = _shard(graphs, num_shards)
    jobs = [
        ([graph.to_dict() for graph in shard], list(labels))
        for shard in shards
    ]
    init_args = (model, config, algorithm, batch_size)

    def run_local(job: tuple) -> list[dict]:
        # In-process shards get their own explainer (no pickling to save),
        # keeping concurrent parallel_explain calls fully isolated.
        return _run_shard(_build_explainer(*init_args), *job)

    if backend == "serial" or num_workers == 1 or len(jobs) == 1:
        shard_results = [run_local(job) for job in jobs]
    elif backend == "thread":
        with ThreadPoolExecutor(max_workers=num_workers) as pool:
            shard_results = list(pool.map(run_local, jobs))
    elif backend == "process":
        try:
            with ProcessPoolExecutor(
                max_workers=num_workers, initializer=_init_worker, initargs=init_args
            ) as pool:
                shard_results = list(pool.map(_explain_shard, jobs))
        except (OSError, PermissionError):
            # Sandboxed environments may forbid new processes; fall back.
            shard_results = [run_local(job) for job in jobs]
    else:
        raise ExplanationError(f"unknown backend '{backend}'")

    # Rebuild views from the serialised shard results and merge per label.
    from repro.core.explanation import ExplanationSubgraph  # local import to avoid cycle at module load
    from repro.graphs.pattern import GraphPattern

    views = ExplanationViewSet()
    graph_by_id = {graph.graph_id: graph for graph in graphs}
    for label_index, label in enumerate(labels):
        per_shard_views = []
        for shard_result in shard_results:
            payload = shard_result[label_index]
            view = ExplanationView(
                label=label,
                patterns=[GraphPattern.from_dict(p) for p in payload["patterns"]],
                explainability=payload["__explainability"],
            )
            for sub_payload in payload["subgraphs"]:
                source = graph_by_id.get(sub_payload["source_graph_id"])
                if source is None:
                    continue
                view.subgraphs.append(
                    ExplanationSubgraph(
                        source_graph=source,
                        nodes=set(sub_payload["nodes"]),
                        label=label,
                        explainability=sub_payload["explainability"],
                        consistent=sub_payload["consistent"],
                        counterfactual=sub_payload["counterfactual"],
                    )
                )
            per_shard_views.append(view)
        views.add(merge_views(per_shard_views, label))
    return views
