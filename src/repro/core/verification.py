"""View verification: the ``EVerify`` / ``PMatch`` primitive operators.

Section 3.3 defines view verification as three constraints on a candidate
two-tier structure ``(P, Gs)``:

* **C1** — it is a graph view: the patterns cover every node of the
  subgraphs (graph-view property via node-induced matching);
* **C2** — each subgraph is an explanation subgraph: consistent
  (``M(Gs) = M(G)``) and counterfactual (``M(G \\ Gs) != M(G)``);
* **C3** — the view properly covers the label group under the configured
  coverage bounds ``[b_l, u_l]``.

The full decision problem is NP-complete; these operators implement the
practical verifiers GVEX uses (exact GNN inference for C2, bounded
isomorphism search for C1/C3).
"""

from __future__ import annotations

import weakref
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.config import Configuration
from repro.core.explanation import ExplanationSubgraph, ExplanationView
from repro.gnn.models import GNNClassifier
from repro.graphs.graph import Graph
from repro.graphs.sparse import sparse_enabled
from repro.graphs.subgraph import induced_subgraph, remove_subgraph
from repro.matching.coverage import pattern_set_covered_nodes

__all__ = ["EVerify", "VerificationReport", "prime_vp_extend_probes", "verify_view"]


def prime_vp_extend_probes(
    everify: "EVerify",
    graph: Graph,
    nodes: Sequence[int],
    selected: set[int],
    label: int,
    config: Configuration,
    upper: int | None = None,
) -> None:
    """Warm ``EVerify``'s memo for a whole ``VpExtend`` frontier at once.

    Primes the consistency probes of ``selected | {node}`` for every
    candidate (restricted to candidates within the ``upper`` size bound when
    given — the ApproxGVEX contract; StreamGVEX passes ``None`` because its
    full cache is handled by the swapping rule), and, under strict
    verification, the residual probes of the consistent candidates.  The
    subsequent per-node ``VpExtend`` calls then hit the cache instead of
    running one inference each.
    """
    if config.verification_mode == "none":
        return
    probes = []
    for node in nodes:
        extended = frozenset(selected | {node})
        if (upper is None or len(extended) <= upper) and len(extended) >= config.min_check_size:
            probes.append(extended)
    everify.prime(graph, probes)
    if config.verification_mode == "strict" and probes:
        all_nodes = set(graph.nodes)
        residuals = [
            frozenset(all_nodes - extended)
            for extended in probes
            if everify.is_consistent(graph, extended, label)
        ]
        everify.prime(graph, residuals)


class EVerify:
    """GNN inference operator with memoisation (constraint C2).

    ``EVerify`` answers the two model queries GVEX needs — "is this candidate
    subgraph still assigned the source label?" and "does removing it flip the
    label?" — caching predictions by (graph id, node set) so repeated greedy
    probes of the same candidate are free.
    """

    def __init__(self, model: GNNClassifier) -> None:
        self.model = model
        # Per graph object: (graph version when cached, {node set: label}).
        # A version bump drops that graph's entries wholesale, so probes on
        # mutating graphs neither read stale labels nor accumulate dead
        # entries from superseded versions.  Keyed by weak reference — not
        # ``id()`` — so a long-lived EVerify (worker pools reuse one
        # explainer across shards) can never serve another graph's labels
        # after CPython recycles a freed graph's address, and entries die
        # with their graphs instead of accumulating.
        self._cache: weakref.WeakKeyDictionary[Graph, tuple[int, dict[frozenset[int], int]]] = (
            weakref.WeakKeyDictionary()
        )
        self.inference_calls = 0

    def _predict_nodes(self, graph: Graph, nodes: frozenset[int]) -> int:
        entry = self._cache.get(graph)
        if entry is None or entry[0] != graph.version:
            entry = (graph.version, {})
            self._cache[graph] = entry
        labels = entry[1]
        cached = labels.get(nodes)
        if cached is not None:
            return cached
        if sparse_enabled():
            # Vectorized path: slice the candidate's feature/adjacency
            # matrices straight out of the source graph's CSR cache instead
            # of materialising an induced subgraph per probe.
            label = self.model.predict_node_subset(graph, nodes)
        else:
            candidate = induced_subgraph(graph, nodes)
            label = self.model.predict(candidate)
        labels[nodes] = label
        self.inference_calls += 1
        return label

    def predict(self, graph: Graph) -> int:
        """Label of a full graph (cached)."""
        return self._predict_nodes(graph, frozenset(graph.nodes))

    def prime(self, graph: Graph, node_sets: Sequence[frozenset[int]]) -> int:
        """Batch-compute and cache the labels of many candidate node sets.

        All uncached sets are classified in a single block-diagonal
        message-passing pass (``GNNClassifier.predict_subsets``), so a
        greedy round that is about to probe a whole frontier pays one
        inference instead of one per candidate.  Subsequent
        :meth:`is_consistent` / :meth:`is_counterfactual` calls hit the
        cache.  Returns the number of sets actually classified; a no-op
        (sequential probes stay bit-faithful) when the sparse backend is
        off or fewer than two sets are missing.
        """
        if not sparse_enabled():
            return 0
        entry = self._cache.get(graph)
        if entry is None or entry[0] != graph.version:
            entry = (graph.version, {})
            self._cache[graph] = entry
        labels = entry[1]
        missing = [nodes for nodes in dict.fromkeys(node_sets) if nodes and nodes not in labels]
        if len(missing) < 2:
            return 0
        for nodes, label in zip(missing, self.model.predict_subsets(graph, missing)):
            labels[nodes] = label
        self.inference_calls += len(missing)
        return len(missing)

    def is_consistent(self, graph: Graph, nodes: set[int], label: int) -> bool:
        """C2 first half: ``M(G[nodes]) == label``."""
        if not nodes:
            return False
        return self._predict_nodes(graph, frozenset(nodes)) == label

    def is_counterfactual(self, graph: Graph, nodes: set[int], label: int) -> bool:
        """C2 second half: ``M(G \\ G[nodes]) != label``."""
        remaining = frozenset(set(graph.nodes) - set(nodes))
        if not remaining:
            # Removing everything certainly removes the evidence for the label.
            return True
        return self._predict_nodes(graph, remaining) != label

    def annotate(self, subgraph: ExplanationSubgraph) -> ExplanationSubgraph:
        """Fill in the consistent/counterfactual flags of a subgraph."""
        subgraph.consistent = self.is_consistent(
            subgraph.source_graph, subgraph.nodes, subgraph.label
        )
        subgraph.counterfactual = self.is_counterfactual(
            subgraph.source_graph, subgraph.nodes, subgraph.label
        )
        return subgraph

    def stats(self) -> dict[str, int]:
        entries = sum(len(labels) for _, labels in self._cache.values())
        return {"inference_calls": self.inference_calls, "cache_entries": entries}


@dataclass
class VerificationReport:
    """Outcome of the three-constraint view verification."""

    is_graph_view: bool
    is_explanation_view: bool
    properly_covers: bool
    uncovered_nodes: int
    total_subgraph_nodes: int
    inconsistent_subgraphs: int
    non_counterfactual_subgraphs: int

    @property
    def satisfied(self) -> bool:
        """True when all three constraints C1-C3 hold."""
        return self.is_graph_view and self.is_explanation_view and self.properly_covers


def verify_view(
    view: ExplanationView,
    model: GNNClassifier,
    config: Configuration,
    max_matchings: int | None = 64,
) -> VerificationReport:
    """Check constraints C1-C3 for an explanation view.

    The coverage constraint (C3) is interpreted per source graph: every
    explanation subgraph must contain between ``b_l`` and ``u_l`` nodes, the
    reading used by the paper's experiments when sweeping ``u_l``.
    """
    everify = EVerify(model)
    subgraph_objects = [subgraph.subgraph() for subgraph in view.subgraphs]

    # C1: the patterns must cover every node of every explanation subgraph.
    coverage = pattern_set_covered_nodes(view.patterns, subgraph_objects, max_matchings=max_matchings)
    uncovered = 0
    for index, graph in enumerate(subgraph_objects):
        uncovered += graph.num_nodes() - len(coverage[index])
    is_graph_view = uncovered == 0

    # C2: every subgraph must be consistent and counterfactual.
    inconsistent = 0
    non_counterfactual = 0
    for subgraph in view.subgraphs:
        if not everify.is_consistent(subgraph.source_graph, subgraph.nodes, subgraph.label):
            inconsistent += 1
        if not everify.is_counterfactual(subgraph.source_graph, subgraph.nodes, subgraph.label):
            non_counterfactual += 1
    is_explanation_view = inconsistent == 0 and non_counterfactual == 0

    # C3: coverage bounds.
    bound = config.bound_for(view.label)
    properly_covers = all(bound.contains(subgraph.num_nodes()) for subgraph in view.subgraphs)

    return VerificationReport(
        is_graph_view=is_graph_view,
        is_explanation_view=is_explanation_view,
        properly_covers=properly_covers,
        uncovered_nodes=uncovered,
        total_subgraph_nodes=sum(graph.num_nodes() for graph in subgraph_objects),
        inconsistent_subgraphs=inconsistent,
        non_counterfactual_subgraphs=non_counterfactual,
    )


def residual_prediction(model: GNNClassifier, graph: Graph, nodes: set[int]) -> int:
    """Label assigned to ``G \\ G[nodes]`` (convenience wrapper for metrics)."""
    return model.predict(remove_subgraph(graph, nodes))
