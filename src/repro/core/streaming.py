"""StreamGVEX: single-pass, anytime view maintenance (section 5, Algorithm 3).

The streaming algorithm consumes the nodes of each source graph as a stream
(in batches) and incrementally maintains

* ``Vs`` — a node cache of size at most ``u_l`` holding the current
  explanation node set, updated with the greedy *swapping* rule of
  ``IncUpdateVS`` (a new node replaces the weakest cached node only when its
  gain is at least twice the loss, which preserves the 1/4-approximation of
  streaming submodular maximisation), and
* ``Pc`` — the current pattern set, updated by ``IncUpdateP``: newly selected
  nodes that are not yet covered trigger local pattern generation
  (``IncPGen`` on the r-hop neighbourhood) and patterns that stopped
  contributing coverage are swapped out.

The influence/diversity structures are refreshed per batch on the seen
fraction of the graph (``IncEVerify``), so the maintained view always has an
anytime quality guarantee *relative to the processed fraction*.
"""

from __future__ import annotations

import random
import time
from collections.abc import Sequence

from repro.core.config import Configuration
from repro.core.explanation import ExplanationSubgraph, ExplanationView, ExplanationViewSet
from repro.core.quality import GraphAnalysis
from repro.core.selection import lazy_greedy_select
from repro.core.verification import EVerify, prime_vp_extend_probes
from repro.exceptions import ExplanationError
from repro.gnn.models import GNNClassifier
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.pattern import GraphPattern
from repro.graphs.sparse import sparse_enabled
from repro.graphs.subgraph import induced_subgraph
from repro.matching.engine import apply_config_cache_size
from repro.matching.incremental import IncrementalMatcher
from repro.mining.candidates import PatternGenerator

__all__ = ["StreamGVEX"]


class StreamGVEX:
    """Streaming, anytime generation of explanation views (Algorithm 3)."""

    def __init__(
        self,
        model: GNNClassifier,
        config: Configuration | None = None,
        pattern_generator: PatternGenerator | None = None,
        batch_size: int = 8,
        seed: int | None = None,
    ) -> None:
        if batch_size < 1:
            raise ExplanationError("batch_size must be at least 1")
        self.model = model
        self.config = config or Configuration()
        self.pattern_generator = pattern_generator or PatternGenerator(
            max_pattern_size=self.config.max_pattern_size,
            max_candidates=self.config.max_pattern_candidates,
        )
        self.batch_size = batch_size
        # The node-arrival shuffle must be reproducible (Fig. 12 sweeps
        # shuffled orders): default to the configuration's seed so two runs
        # with the same Configuration see identical streams.
        self.seed = self.config.seed if seed is None else seed
        self.everify = EVerify(model)
        # The match memo is process-wide; apply this configuration's cap
        # (a REPRO_MATCH_CACHE_SIZE operator override takes precedence).
        apply_config_cache_size(self.config.match_cache_size)

    # ------------------------------------------------------------------
    # VpExtend (same contract as in ApproxGVEX)
    # ------------------------------------------------------------------
    def _vp_extend(self, candidate: int, selected: set[int], graph: Graph, label: int) -> bool:
        bound = self.config.bound_for(label)
        extended = selected | {candidate}
        if len(extended) > bound.upper and candidate not in selected:
            # A full cache is handled by the swapping rule, not by rejection.
            pass
        if self.config.verification_mode == "none":
            return True
        if len(extended) < self.config.min_check_size:
            return True
        if not self.everify.is_consistent(graph, extended, label):
            return False
        if self.config.verification_mode == "strict":
            if not self.everify.is_counterfactual(graph, extended, label):
                return False
        return True

    def _vp_extend_many(
        self,
        nodes: Sequence[int],
        selected: set[int],
        graph: Graph,
        label: int,
    ) -> list[bool]:
        """Batched ``VpExtend`` (no upper-bound filter: a full node cache is
        handled by the swapping rule, not by rejection)."""
        prime_vp_extend_probes(self.everify, graph, nodes, selected, label, self.config)
        return [self._vp_extend(node, selected, graph, label) for node in nodes]

    # ------------------------------------------------------------------
    # IncUpdateVS (Procedure 4)
    # ------------------------------------------------------------------
    def _inc_update_vs(
        self,
        candidate: int,
        selected: set[int],
        analysis: GraphAnalysis,
        patterns: list[GraphPattern],
        matcher: IncrementalMatcher,
        seen_graph: Graph,
        upper_bound: int,
    ) -> set[int]:
        """Apply the greedy swapping rule; returns the (possibly new) node cache."""
        if candidate in selected:
            return selected
        if len(selected) < upper_bound:
            return selected | {candidate}
        # Case (b): skip nodes the pattern set already summarises and nodes
        # that would not contribute any new pattern.
        if patterns:
            covered = matcher.covered_by_set(patterns, seen_graph)
            if candidate in covered:
                new_patterns = self.pattern_generator.generate_incremental(
                    seen_graph, candidate, patterns, hops=self.config.diversity_hops
                )
                if not new_patterns:
                    return selected
        # Case (c): swap against the weakest cached node when the gain is at
        # least twice the loss.
        weakest = min(selected, key=lambda node: (analysis.loss_of_removal(selected, node), node))
        reduced = selected - {weakest}
        gain_new = analysis.explainability(reduced | {candidate}) - analysis.explainability(reduced)
        gain_old = analysis.explainability(selected) - analysis.explainability(reduced)
        if gain_new >= 2.0 * gain_old:
            return reduced | {candidate}
        return selected

    # ------------------------------------------------------------------
    # IncUpdateP (Procedure 5)
    # ------------------------------------------------------------------
    def _inc_update_p(
        self,
        new_node: int,
        selected: set[int],
        patterns: list[GraphPattern],
        graph: Graph,
        matcher: IncrementalMatcher,
    ) -> list[GraphPattern]:
        """Maintain node coverage of the current explanation nodes by patterns."""
        current = induced_subgraph(graph, selected)
        covered = matcher.covered_by_set(patterns, current)
        uncovered = set(current.nodes) - covered
        updated = list(patterns)
        if uncovered:
            fresh = self.pattern_generator.generate_incremental(
                current,
                new_node if new_node in selected else next(iter(uncovered)),
                updated,
                hops=max(1, self.config.diversity_hops),
            )
            known = {pattern.canonical_key() for pattern in updated}
            for pattern in fresh:
                if pattern.canonical_key() not in known:
                    updated.append(pattern)
                    known.add(pattern.canonical_key())
            # Guarantee coverage with singleton patterns for anything left.
            matcher.invalidate()
            still_uncovered = set(current.nodes) - matcher.covered_by_set(updated, current)
            for node_type in sorted({current.node_type(node) for node in still_uncovered}):
                singleton = GraphPattern()
                singleton.add_node(0, node_type)
                if singleton.canonical_key() not in known:
                    updated.append(singleton)
                    known.add(singleton.canonical_key())
        # Swap out patterns that no longer contribute coverage (largest first).
        matcher.invalidate()
        pruned: list[GraphPattern] = []
        covered_so_far: set[int] = set()
        for pattern in sorted(updated, key=lambda p: -p.size()):
            contribution = matcher.covered_nodes(pattern, current) - covered_so_far
            if contribution:
                pruned.append(pattern)
                covered_so_far |= contribution
        matcher.invalidate()
        for index, pattern in enumerate(pruned):
            pattern.pattern_id = index
        return pruned

    # ------------------------------------------------------------------
    # per-graph streaming pass
    # ------------------------------------------------------------------
    def explain_graph(
        self,
        graph: Graph,
        label: int | None = None,
        node_order: Sequence[int] | None = None,
        record_history: bool = False,
    ) -> tuple[ExplanationSubgraph | None, list[GraphPattern], list[dict]]:
        """Process one graph's node stream.

        Returns the maintained explanation subgraph (or ``None`` when the
        lower coverage bound could not be met), the maintained pattern set,
        and — when ``record_history`` is set — one snapshot per batch with the
        seen fraction and the current explainability (the anytime curve of
        Fig. 9f).
        """
        if graph.num_nodes() == 0:
            return None, [], []
        if label is None:
            label = self.model.predict(graph)
        bound = self.config.bound_for(label)

        order = list(node_order) if node_order is not None else list(graph.nodes)
        if node_order is None:
            # A fresh seeded generator per graph keeps per-graph streams
            # independent of database iteration order.
            random.Random(self.seed).shuffle(order)

        selected: set[int] = set()
        backup: set[int] = set()
        patterns: list[GraphPattern] = []
        matcher = IncrementalMatcher()
        history: list[dict] = []
        seen: list[int] = []
        analysis: GraphAnalysis | None = None

        for start in range(0, len(order), self.batch_size):
            batch = order[start : start + self.batch_size]
            seen.extend(batch)
            seen_graph = induced_subgraph(graph, seen)
            # IncEVerify: refresh influence/diversity on the seen fraction.
            analysis = GraphAnalysis(self.model, seen_graph, self.config)
            for node in batch:
                backup.add(node)
                if not self._vp_extend(node, selected, seen_graph, label):
                    continue
                updated = self._inc_update_vs(
                    node, selected, analysis, patterns, matcher, seen_graph, bound.upper
                )
                if updated != selected:
                    selected = updated
                    if node in selected:
                        patterns = self._inc_update_p(node, selected, patterns, graph, matcher)
            if record_history:
                history.append(
                    {
                        "seen_fraction": len(seen) / graph.num_nodes(),
                        "selected_nodes": len(selected),
                        "explainability": analysis.explainability(selected),
                        "num_patterns": len(patterns),
                    }
                )

        # Post-processing: meet the lower bound from the backup set.  The
        # lazy (CELF) top-up picks node sets identical to the eager loop; the
        # eager loop stays as the A/B efficiency baseline.
        if analysis is not None:
            if self.config.selection_strategy == "lazy":
                if len(selected) < bound.lower and backup - selected:
                    selected = lazy_greedy_select(
                        analysis,
                        sorted(backup - selected),
                        selected,
                        bound.lower,
                        lambda nodes, current: self._vp_extend_many(nodes, current, graph, label),
                        lambda tied, current: min(tied),
                    )
            else:
                while len(selected) < bound.lower and backup - selected:
                    usable = [
                        node
                        for node in backup - selected
                        if self._vp_extend(node, selected, graph, label)
                    ]
                    if not usable:
                        break
                    gains = analysis.marginal_gains(selected, usable)
                    best = max(
                        range(len(usable)), key=lambda slot: (float(gains[slot]), -usable[slot])
                    )
                    selected.add(usable[best])
            if selected:
                patterns = self._inc_update_p(
                    next(iter(selected)), selected, patterns, graph, matcher
                )

        if not selected or len(selected) < bound.lower:
            return None, patterns, history

        final_analysis = GraphAnalysis(self.model, graph, self.config)
        subgraph = ExplanationSubgraph(
            source_graph=graph,
            nodes=selected,
            label=label,
            explainability=final_analysis.explainability(selected),
        )
        self.everify.annotate(subgraph)
        return subgraph, patterns, history

    # ------------------------------------------------------------------
    # per-label and full drivers (same shape as ApproxGVEX)
    # ------------------------------------------------------------------
    def _predicted_labels(self, graphs: Sequence[Graph]) -> list[int]:
        """Predicted label per graph (batched under the lazy strategy)."""
        if self.config.selection_strategy == "lazy" and sparse_enabled() and len(graphs) > 1:
            return self.model.predict_batch(graphs)
        return [self.model.predict(graph) for graph in graphs]

    def explain_label(
        self,
        graphs: Sequence[Graph],
        label: int,
        record_history: bool = False,
    ) -> ExplanationView:
        """Streamed explanation view for one label group."""
        start = time.perf_counter()
        subgraphs: list[ExplanationSubgraph] = []
        patterns: dict[tuple, GraphPattern] = {}
        histories: list[list[dict]] = []
        for graph, predicted in zip(graphs, self._predicted_labels(graphs)):
            if predicted != label:
                continue
            subgraph, graph_patterns, history = self.explain_graph(
                graph, label, record_history=record_history
            )
            if subgraph is not None:
                subgraphs.append(subgraph)
            for pattern in graph_patterns:
                patterns.setdefault(pattern.canonical_key(), pattern)
            if record_history:
                histories.append(history)
        pattern_list = list(patterns.values())
        for index, pattern in enumerate(pattern_list):
            pattern.pattern_id = index
        view = ExplanationView(
            label=label,
            patterns=pattern_list,
            subgraphs=subgraphs,
            explainability=float(sum(subgraph.explainability for subgraph in subgraphs)),
            metadata={
                "algorithm": "StreamGVEX",
                "batch_size": self.batch_size,
                "runtime_seconds": time.perf_counter() - start,
                "histories": histories,
            },
        )
        return view

    def explain(
        self,
        database: GraphDatabase | Sequence[Graph],
        labels: Sequence[int] | None = None,
    ) -> ExplanationViewSet:
        """Streamed explanation views for every label of interest."""
        graphs = list(database.graphs) if isinstance(database, GraphDatabase) else list(database)
        if not graphs:
            raise ExplanationError("cannot explain an empty graph collection")
        if labels is None:
            labels = sorted(set(self._predicted_labels(graphs)))
        views = ExplanationViewSet()
        for label in labels:
            views.add(self.explain_label(graphs, label))
        return views

    def explain_instance(self, graph: Graph) -> ExplanationSubgraph:
        """Single-graph explanation (baseline-comparison convenience)."""
        label = self.model.predict(graph)
        subgraph, _, _ = self.explain_graph(graph, label)
        if subgraph is None:
            analysis = GraphAnalysis(self.model, graph, self.config)
            best = max(graph.nodes, key=lambda node: analysis.explainability({node}))
            subgraph = ExplanationSubgraph(
                source_graph=graph,
                nodes={best},
                label=label,
                explainability=analysis.explainability({best}),
            )
            self.everify.annotate(subgraph)
        return subgraph
