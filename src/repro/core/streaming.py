"""StreamGVEX: single-pass, anytime view maintenance (section 5, Algorithm 3).

The streaming algorithm consumes the nodes of each source graph as a stream
(in batches) and incrementally maintains the node cache ``Vs`` and pattern
set ``Pc`` with the ``IncUpdateVS`` / ``IncUpdateP`` swap rules, refreshing
the influence/diversity structures per batch (``IncEVerify``) so the
maintained view always has an anytime quality guarantee *relative to the
processed fraction*.

The per-graph machinery lives in
:class:`~repro.core.maintenance.NodeStreamProcessor` (one shared
implementation), and the label-level pass *is* a replay of add-deltas
through a :class:`~repro.core.maintenance.ViewMaintainer`: each graph of the
label group arrives as one delta, is streamed once, and the view is
assembled from the maintainer's rows — exactly the machinery that keeps
views live over a mutable :class:`~repro.graphs.database.GraphDatabase`.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.core.explanation import ExplanationSubgraph, ExplanationView, ExplanationViewSet
from repro.core.maintenance import NodeStreamProcessor, ViewMaintainer
from repro.core.sampling import build_analysis
from repro.exceptions import ExplanationError
from repro.graphs.database import GraphDatabase
from repro.graphs.graph import Graph

__all__ = ["StreamGVEX"]


class StreamGVEX(NodeStreamProcessor):
    """Streaming, anytime generation of explanation views (Algorithm 3).

    Inherits the whole per-graph pass (``VpExtend``, ``IncUpdateVS``,
    ``IncUpdateP``, :meth:`explain_graph`) from
    :class:`~repro.core.maintenance.NodeStreamProcessor` and adds the
    per-label / full-database driver surface.
    """

    # ------------------------------------------------------------------
    # per-label and full drivers (same shape as ApproxGVEX)
    # ------------------------------------------------------------------
    def explain_label(
        self,
        graphs: Sequence[Graph],
        label: int,
        record_history: bool = False,
    ) -> ExplanationView:
        """Streamed explanation view for one label group.

        Implemented as a replay of add-deltas through a transient
        :class:`ViewMaintainer` bound to this explainer (so a warm
        ``EVerify`` memo and any subclass policy overrides carry through):
        one ingest per graph, then one view assembly.
        """
        start = time.perf_counter()
        maintainer = ViewMaintainer(
            processor=self, labels=(label,), record_history=record_history
        )
        for graph, predicted in zip(graphs, self._predicted_labels(graphs)):
            maintainer.ingest(graph, predicted=predicted)
        view = maintainer.view_for(label)
        view.metadata["runtime_seconds"] = time.perf_counter() - start
        return view

    def explain(
        self,
        database: GraphDatabase | Sequence[Graph],
        labels: Sequence[int] | None = None,
    ) -> ExplanationViewSet:
        """Streamed explanation views for every label of interest."""
        graphs = list(database.graphs) if isinstance(database, GraphDatabase) else list(database)
        if not graphs:
            raise ExplanationError("cannot explain an empty graph collection")
        if labels is None:
            labels = sorted(set(self._predicted_labels(graphs)))
        views = ExplanationViewSet()
        for label in labels:
            views.add(self.explain_label(graphs, label))
        return views

    def explain_instance(self, graph: Graph) -> ExplanationSubgraph:
        """Single-graph explanation (baseline-comparison convenience)."""
        label = self.model.predict(graph)
        subgraph, _, _ = self.explain_graph(graph, label)
        if subgraph is None:
            analysis = build_analysis(self.model, graph, self.config)
            best = max(graph.nodes, key=lambda node: analysis.explainability({node}))
            subgraph = ExplanationSubgraph(
                source_graph=graph,
                nodes={best},
                label=label,
                explainability=analysis.explainability({best}),
            )
            self.everify.annotate(subgraph)
        return subgraph
