"""Lazy-greedy (CELF) selection engine shared by the GVEX explainers.

The Eq.-2 objective is monotone submodular, so a candidate's marginal gain
can only shrink as the selected set grows.  The classic CELF observation is
that a *stale* gain — one computed against an earlier, smaller selection —
is therefore a valid upper bound: the greedy argmax can keep candidates in a
max-heap of stale gains and re-evaluate only the entries whose bound still
competes with the best exact gain seen this round, instead of re-scoring
(and re-verifying) every unselected node on every iteration the way the
eager reference loop does.

The engine is written to be *output-identical* to the eager loops in
:mod:`repro.core.approx` / :mod:`repro.core.streaming`:

* exact gains come from :class:`~repro.core.quality.CoverageState`, whose
  float expression matches the eager ``marginal_gains`` bit for bit;
* comparisons happen on the same (possibly rounded) key the eager loop
  uses, and rounding is monotone, so a stale bound that loses rounded also
  loses exactly;
* every candidate whose exact key ties the round maximum is collected and
  handed to the caller's tie-breaker — the same candidates the eager
  ``max`` would have compared — so the expensive model-probe tie-breakers
  (counterfactual gain) run only on the ties that actually surface;
* a candidate that fails ``VpExtend`` this round is set aside and retried
  next round with its stale bound intact, mirroring the eager loop's
  per-round re-verification.

Sampled objectives (``Configuration(objective="sampled")``) plug into the
same engine through two optional attributes of the coverage state:
``gain_tolerance`` widens every gain comparison — two estimates within the
tolerance are statistically indistinguishable, so both are treated as tied
— and ``reverify_gains`` re-scores a tie set against fresh (holdout)
samples before the deterministic tie-breaker runs.  Exact states carry
neither attribute (tolerance 0), for which every widened comparison
reduces to the strict one — the exact path's output-identity guarantee is
untouched.

When the caller needs the eager loop's *backup* bookkeeping (the
lower-coverage-bound top-up consumes every node that ever passed
verification), ``track_backup`` verifies the full frontier each round —
through the caller's *batched* verifier, so the model probes still amortise
— while the gain evaluations stay lazy.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Sequence

from repro.core.quality import GraphAnalysis

__all__ = ["lazy_greedy_select"]

# Verification results are cheap to batch but the first pop of a round has no
# exact-gain threshold yet; seed it one candidate at a time so laziness is
# preserved when the heap top is an immediate winner (the common case).
VpExtendMany = Callable[[Sequence[int], set[int]], Sequence[bool]]
ChooseTied = Callable[[Sequence[int], set[int]], int]


def lazy_greedy_select(
    analysis: GraphAnalysis,
    candidates: Iterable[int],
    selected: set[int],
    budget: int,
    vp_extend_many: VpExtendMany,
    choose_tied: ChooseTied,
    gain_key: Callable[[float], float] = lambda gain: gain,
    backup: set[int] | None = None,
) -> set[int]:
    """Grow ``selected`` greedily up to ``budget`` nodes, CELF-style.

    Parameters
    ----------
    analysis:
        The per-graph influence/diversity structures; the engine seeds a
        fresh incremental :class:`CoverageState` from ``selected``.
    candidates:
        The candidate pool (nodes already selected are ignored).
    selected:
        Starting node set; a *copy* is grown and returned.
    budget:
        Maximum size of the returned set (the eager loops' ``u_l`` or
        ``b_l`` bound).
    vp_extend_many:
        Batched verification: ``vp_extend_many(nodes, selected)`` returns
        one boolean per node, with the same semantics as the eager loops'
        per-node ``VpExtend``.
    choose_tied:
        Tie-breaker over the exact-gain ties of one round (called only when
        more than one candidate ties; receives the tied nodes and the
        current selection).
    gain_key:
        Monotone key applied to gains before comparison — ``round(g, 9)``
        for the main growth loop, identity for the top-up loop — matching
        the eager comparison exactly.
    backup:
        When given, every candidate that passes verification in any round is
        added (the eager loops' backup bookkeeping); this forces the whole
        frontier through ``vp_extend_many`` each round, but the calls are
        batched and the gain evaluations stay lazy.
    """
    selected = set(selected)
    state = analysis.reset_coverage(selected)
    # Sampled coverage states report the confidence-interval width within
    # which two estimated gains cannot be told apart; exact states have none
    # (tolerance 0 keeps every comparison strict and the engine bit-identical
    # to the eager reference).
    tolerance = float(getattr(state, "gain_tolerance", 0.0) or 0.0)
    reverify = getattr(state, "reverify_gains", None)
    pool = [node for node in dict.fromkeys(candidates) if node not in selected]
    if not pool:
        return selected
    gains = state.batch_gains(pool)
    heap: list[tuple[float, int]] = [(-float(gains[i]), node) for i, node in enumerate(pool)]
    heapq.heapify(heap)

    while len(selected) < budget and heap:
        passed: dict[int, bool] | None = None
        if backup is not None:
            frontier = [node for _, node in heap]
            passed = dict(zip(frontier, vp_extend_many(frontier, selected)))
            backup.update(node for node, ok in passed.items() if ok)

        best_key: float | None = None
        evaluated: list[tuple[int, float]] = []
        deferred: list[tuple[float, int]] = []
        while heap:
            stale = -heap[0][0]
            if best_key is not None and gain_key(stale) < best_key - tolerance:
                break
            # Pop the whole qualifying prefix at once so verification probes
            # batch; before the first exact gain there is no threshold, so
            # seed with a single pop.
            chunk: list[tuple[float, int]] = [heapq.heappop(heap)]
            if best_key is not None:
                while heap and gain_key(-heap[0][0]) >= best_key - tolerance:
                    chunk.append(heapq.heappop(heap))
            nodes = [node for _, node in chunk]
            if passed is not None:
                results: Sequence[bool] = [passed[node] for node in nodes]
            else:
                results = vp_extend_many(nodes, selected)
            ok_nodes: list[int] = []
            for (neg_stale, node), ok in zip(chunk, results):
                if not ok:
                    deferred.append((-neg_stale, node))
                    continue
                ok_nodes.append(node)
            if not ok_nodes:
                continue
            if tolerance > 0.0 and len(ok_nodes) > 1:
                # Sampled states widen the qualifying prefix to whole
                # confidence intervals, so chunks run to hundreds of nodes;
                # one vectorized pass beats that many scalar gain calls.
                # (Exact states keep the scalar path: their chunk gains
                # must stay bit-identical to the eager reference's.)
                fresh = state.batch_gains(ok_nodes)
            else:
                fresh = [state.gain(node) for node in ok_nodes]
            for node, exact in zip(ok_nodes, fresh):
                exact = float(exact)
                evaluated.append((node, exact))
                key = gain_key(exact)
                if best_key is None or key > best_key:
                    best_key = key

        if best_key is None:
            # Every remaining candidate failed verification this round; the
            # eager loop's candidate list is empty and it stops growing.
            break

        tied = [node for node, exact in evaluated if gain_key(exact) >= best_key - tolerance]
        if len(tied) > 1 and tolerance > 0.0 and reverify is not None:
            # Statistical ties: re-score against fresh (holdout) samples and
            # keep only the candidates that still achieve the pooled maximum;
            # any residual exact tie falls through to the deterministic
            # tie-breaker below.
            pooled = reverify(tied)
            best_pooled = max(gain_key(pooled[node]) for node in tied)
            tied = [node for node in tied if gain_key(pooled[node]) == best_pooled]
        winner = tied[0] if len(tied) == 1 else choose_tied(tied, selected)
        state.commit(winner)
        selected.add(winner)
        for node, exact in evaluated:
            if node != winner:
                heapq.heappush(heap, (-exact, node))
        for stale, node in deferred:
            heapq.heappush(heap, (-stale, node))

    return selected
